"""Quickstart: a tolerant range query over a synthetic stream population.

Builds the paper's Section 6.2 workload, registers a standing range query
with a fraction-based tolerance, and compares the communication cost of
three protocols: no filtering, exact filtering (ZT-NRP), and tolerant
filtering (FT-NRP).  Tolerance correctness is verified continuously
against ground truth while the simulation runs.

Run:  python examples/quickstart.py
"""

from repro import (
    FractionTolerance,
    FractionToleranceRangeProtocol,
    NoFilterProtocol,
    RangeQuery,
    RunConfig,
    ZeroToleranceRangeProtocol,
    format_table,
    generate_synthetic_trace,
    run_protocol,
)


def main() -> None:
    # 1. A workload: 500 streams, values starting uniform in [0, 1000],
    #    evolving as Gaussian random walks (the paper's synthetic model).
    trace = generate_synthetic_trace(n_streams=500, horizon=400.0, seed=42)
    print(
        f"workload: {trace.n_streams} streams, "
        f"{trace.n_records} updates over {trace.horizon:g} time units"
    )

    # 2. A standing entity-based query: "which streams are in [400, 600]?"
    query = RangeQuery(400.0, 600.0)

    # 3. The user tolerates up to 20% false positives and false negatives.
    tolerance = FractionTolerance(eps_plus=0.2, eps_minus=0.2)

    # 4. Compare protocols on the identical trace, with the tolerance
    #    checked against ground truth after every single update.
    checked = RunConfig(check_every=1)
    rows = []
    for protocol, tol in (
        (NoFilterProtocol(query), None),
        (ZeroToleranceRangeProtocol(query), None),
        (FractionToleranceRangeProtocol(query, tolerance), tolerance),
    ):
        result = run_protocol(trace, protocol, tolerance=tol, config=checked)
        rows.append(
            {
                "protocol": result.protocol,
                "maintenance messages": result.maintenance_messages,
                "vs no-filter": f"{result.maintenance_messages / trace.n_records:.1%}",
                "tolerance held": result.tolerance_ok,
            }
        )

    print()
    print(format_table(rows, title="Communication cost per protocol"))
    print()
    print(
        "FT-NRP answers within the 20% error budget at a fraction of the\n"
        "messages — the paper's core trade of accuracy for communication."
    )


if __name__ == "__main__":
    main()
