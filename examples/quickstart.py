"""Quickstart: a tolerant range query over a synthetic stream population.

Builds the paper's Section 6.2 workload, registers a standing range query
with a fraction-based tolerance, and compares the communication cost of
three protocols: no filtering, exact filtering (ZT-NRP), and tolerant
filtering (FT-NRP).  Tolerance correctness is verified continuously
against ground truth while the simulation runs, and the whole comparison
is then repeated unchanged on a 4-shard deployment to show the ledgers
do not move.

Run:  python examples/quickstart.py
"""

from repro import (
    Deployment,
    Engine,
    FractionTolerance,
    QuerySpec,
    RangeQuery,
    Workload,
    format_table,
)


def main() -> None:
    # 1. A workload value: 500 streams, values starting uniform in
    #    [0, 1000], evolving as Gaussian random walks (the paper's
    #    synthetic model).  Materialized once, replayed identically by
    #    every run below.
    workload = Workload.synthetic(n_streams=500, horizon=400.0, seed=42)
    trace = workload.materialize()
    print(
        f"workload: {trace.n_streams} streams, "
        f"{trace.n_records} updates over {trace.horizon:g} time units"
    )

    # 2. A standing entity-based query: "which streams are in [400, 600]?"
    #    The user tolerates up to 20% false positives and negatives.
    query = RangeQuery(400.0, 600.0)
    tolerance = FractionTolerance(eps_plus=0.2, eps_minus=0.2)
    specs = [
        QuerySpec(protocol="no-filter", query=query),
        QuerySpec(protocol="zt-nrp", query=query),
        QuerySpec(protocol="ft-nrp", query=query, tolerance=tolerance),
    ]

    # 3. One engine, one deployment: a single server with the tolerance
    #    checked against ground truth after every single update.
    engine = Engine(Deployment.single(check_every=1))
    rows = []
    for spec in specs:
        report = engine.run(spec, workload)
        rows.append(
            {
                "protocol": report.protocol,
                "maintenance messages": report.maintenance_messages,
                "vs no-filter": f"{report.maintenance_messages / trace.n_records:.1%}",
                "tolerance held": report.tolerance_ok,
            }
        )

    print()
    print(format_table(rows, title="Communication cost per protocol"))
    print()
    print(
        "FT-NRP answers within the 20% error budget at a fraction of the\n"
        "messages — the paper's core trade of accuracy for communication."
    )

    # 4. Scale-out is one argument change: the same specs on a 4-shard
    #    topology produce byte-identical message ledgers.
    sharded = Engine(Deployment.sharded(4))
    plain = Engine(Deployment.single())
    for spec in specs:
        assert sharded.run(spec, workload).ledger == plain.run(spec, workload).ledger
    print()
    print("sharded(4) ledgers identical to single-server: yes")


if __name__ == "__main__":
    main()
