"""A monitoring dashboard: many standing queries over one sensor field.

The Section-7 extension in action: an operations dashboard keeps four
standing queries alive against the same 400 sensors —

* three alert tiers (nested range queries with increasing tolerance),
* plus a top-10 hottest-sensors ranking with rank slack.

Every sensor carries one filter slot per query; a reading that crosses
several deployed boundaries at once costs a single radio message.

Run:  python examples/multi_query_dashboard.py
"""

from repro import (
    Deployment,
    Engine,
    FractionTolerance,
    QuerySpec,
    RangeQuery,
    RankTolerance,
    TopKQuery,
    Workload,
    format_table,
)
from repro.streams.generators import BoundedRandomWalk
from repro.streams.synthetic import generate_synthetic_trace

N_SENSORS = 400


def build_specs() -> dict[str, QuerySpec]:
    """The dashboard's standing queries, as declarative specs.

    The two operators watch the *same* warn tier with different error
    budgets — their filter boundaries coincide, so their violations ride
    the same physical updates.  The danger tier has its own boundary and
    shares only when a reading jumps across both at once.
    """
    specs = {}
    tiers = {
        "ops-A warn [700, 1000]": (RangeQuery(700.0, 1000.0), 0.20),
        "ops-B warn [700, 1000]": (RangeQuery(700.0, 1000.0), 0.10),
        "danger     [850, 1000]": (RangeQuery(850.0, 1000.0), 0.10),
    }
    for name, (query, eps) in tiers.items():
        specs[name] = QuerySpec(
            protocol="ft-nrp",
            query=query,
            tolerance=FractionTolerance(eps, eps),
        )
    specs["top-10 hottest"] = QuerySpec(
        protocol="rtp",
        query=TopKQuery(k=10),
        tolerance=RankTolerance(k=10, r=5),
    )
    return specs


def main() -> None:
    trace = generate_synthetic_trace(
        n_streams=N_SENSORS,
        horizon=400.0,
        seed=21,
        process=BoundedRandomWalk(sigma=30.0, low=0.0, high=1000.0),
    )
    workload = Workload.from_trace(trace)
    print(f"{N_SENSORS} sensors, {trace.n_records} readings")

    specs = build_specs()
    engine = Engine()
    shared = engine.run_queries(
        specs, workload, Deployment.single(check_every=10)
    )
    independent = sum(
        engine.run(spec, workload).maintenance_messages
        for spec in specs.values()
    )

    rows = [
        {
            "deployment": "four independent systems",
            "messages": independent,
            "sharing factor": "1.00",
        },
        {
            "deployment": "shared multi-query sources",
            "messages": shared.maintenance_messages,
            "sharing factor": f"{shared.extras['sharing_factor']:.2f}",
        },
    ]
    print()
    print(format_table(rows, title="Dashboard communication cost"))
    print()
    print("current answers:")
    for name, answer in shared.answers.items():
        preview = sorted(answer)[:6]
        suffix = " ..." if len(answer) > 6 else ""
        print(f"  {name:<22} {len(answer):>3} sensors  {preview}{suffix}")
    print()
    print(
        f"all tolerances held: {shared.tolerance_ok} "
        f"({shared.checks} ground-truth checks)"
    )
    print(
        "\nSharing pays exactly where filter boundaries coincide (the two\n"
        "warn-tier operators); queries with disjoint boundaries ride their\n"
        "own crossings and gain nothing — the deployment is never worse."
    )


if __name__ == "__main__":
    main()
