"""Sensor danger-zone alerts: fraction tolerance as a battery budget.

The paper's Section 3.4 example: warning messages are sent to soldiers
(here: environmental sensors) whose readings enter a danger zone, and the
operator accepts a bounded fraction of false alerts.  FT-NRP turns that
tolerance into *silenced* sensors — filters ``[-inf, inf]`` / ``[inf, inf]``
mean those radios never transmit, "potentially beneficial for sensors
with limited battery power".

This example measures both the message savings and the silencing
(battery) effect, and contrasts the two placement heuristics of
Figure 14.

Run:  python examples/sensor_alert.py
"""

from repro import (
    BoundaryNearestSelection,
    FractionTolerance,
    FractionToleranceRangeProtocol,
    RandomSelection,
    RangeQuery,
    ZeroToleranceRangeProtocol,
    format_table,
    generate_synthetic_trace,
)
from repro import Deployment, Engine
from repro.streams.generators import BoundedRandomWalk

N_SENSORS = 600
DANGER_ZONE = RangeQuery(700.0, 850.0)  # e.g. temperature band


def main() -> None:
    # Readings bounded to a physical scale so selectivity stays stable.
    trace = generate_synthetic_trace(
        n_streams=N_SENSORS,
        horizon=500.0,
        seed=2,
        process=BoundedRandomWalk(sigma=25.0, low=0.0, high=1000.0),
    )
    in_zone = int(
        (
            (trace.initial_values >= DANGER_ZONE.lower)
            & (trace.initial_values <= DANGER_ZONE.upper)
        ).sum()
    )
    print(
        f"{N_SENSORS} sensors, {trace.n_records} readings; "
        f"{in_zone} initially inside the danger zone "
        f"[{DANGER_ZONE.lower:g}, {DANGER_ZONE.upper:g}]"
    )

    engine = Engine(Deployment.single(check_every=1))
    exact = engine.run_protocol(trace, ZeroToleranceRangeProtocol(DANGER_ZONE))

    rows = [
        {
            "configuration": "ZT-NRP (exact)",
            "messages": exact.maintenance_messages,
            "sensors silenced": 0,
            "tolerance held": exact.tolerance_ok,
        }
    ]
    tolerance = FractionTolerance(eps_plus=0.3, eps_minus=0.3)
    for heuristic in (RandomSelection(seed=2), BoundaryNearestSelection()):
        protocol = FractionToleranceRangeProtocol(
            DANGER_ZONE, tolerance, selection=heuristic
        )
        result = engine.run_protocol(trace, protocol, tolerance=tolerance)
        rows.append(
            {
                "configuration": f"FT-NRP / {heuristic.name}",
                "messages": result.maintenance_messages,
                "sensors silenced": protocol.n_plus + protocol.n_minus,
                "tolerance held": result.tolerance_ok,
            }
        )

    print()
    print(
        format_table(
            rows, title="Danger-zone alerting under a 30%/30% error budget"
        )
    )
    print()
    print(
        "Silenced sensors transmit nothing at all — the tolerance budget\n"
        "converts directly into radio sleep time.  Placing the silencers\n"
        "on boundary-nearest sensors suppresses the chattiest radios,\n"
        "which is exactly Figure 14's finding."
    )


if __name__ == "__main__":
    main()
