"""Location monitoring: continuous k-NN over moving objects (Section 3.2).

Models the paper's location-based-services motivation: a dispatcher
continuously tracks the k vehicles nearest a depot on a highway
(one-dimensional positions, as in the paper's protocols).  Vehicle
positions evolve as bounded random walks; each vehicle carries an
adaptive filter so it only transmits when it crosses the currently
deployed bound R.

Fraction-based tolerance fits the dispatcher's needs — "at most 20% of
the vehicles I see may be wrong, and at most 20% of the truly nearest may
be missing" — and is far more intuitive than guessing a tolerance in
metres.  The example compares exact k-NN maintenance (ZT-RP) with FT-RP
under that tolerance.

Run:  python examples/location_tracking.py
"""

import numpy as np

from repro import (
    Deployment,
    Engine,
    FractionTolerance,
    FractionToleranceKnnProtocol,
    KnnQuery,
    StreamTrace,
    ZeroToleranceKnnProtocol,
    format_table,
)
from repro.sim.rng import RandomStreams
from repro.streams.generators import BoundedRandomWalk

N_VEHICLES = 250
HIGHWAY_KM = 100.0
DEPOT_KM = 42.0
K = 15


def build_fleet_trace(seed: int = 0, horizon: float = 300.0) -> StreamTrace:
    """Vehicles moving along a 100 km highway, reporting every ~2 units."""
    rng = RandomStreams(seed)
    positions_rng = rng.get("initial-positions")
    arrivals_rng = rng.get("report-times")
    motion_rng = rng.get("motion")
    walk = BoundedRandomWalk(sigma=0.8, low=0.0, high=HIGHWAY_KM)

    initial = positions_rng.uniform(0.0, HIGHWAY_KM, size=N_VEHICLES)
    times, ids, values = [], [], []
    for vehicle in range(N_VEHICLES):
        t = 0.0
        position = float(initial[vehicle])
        while True:
            t += arrivals_rng.exponential(2.0)
            if t > horizon:
                break
            position = walk.step(position, motion_rng)
            times.append(t)
            ids.append(vehicle)
            values.append(position)
    order = np.argsort(times, kind="stable")
    return StreamTrace(
        initial_values=initial,
        times=np.asarray(times)[order],
        stream_ids=np.asarray(ids)[order],
        values=np.asarray(values)[order],
        horizon=horizon,
        metadata={"workload": "fleet"},
    )


def main() -> None:
    trace = build_fleet_trace()
    print(
        f"fleet: {trace.n_streams} vehicles, {trace.n_records} position "
        f"updates; depot at km {DEPOT_KM:g}, tracking the {K} nearest"
    )

    tolerance = FractionTolerance(eps_plus=0.2, eps_minus=0.2)
    rows = []

    engine = Engine(Deployment.single(check_every=25))
    exact = engine.run_protocol(
        trace, ZeroToleranceKnnProtocol(KnnQuery(DEPOT_KM, K))
    )
    rows.append(
        {
            "protocol": "ZT-RP (exact)",
            "messages": exact.maintenance_messages,
            "recomputations of R": exact.extras.get("recomputations", 0),
            "tolerance held": exact.tolerance_ok,
        }
    )

    tolerant_protocol = FractionToleranceKnnProtocol(
        KnnQuery(DEPOT_KM, K), tolerance
    )
    tolerant = engine.run_protocol(
        trace, tolerant_protocol, tolerance=tolerance
    )
    rows.append(
        {
            "protocol": "FT-RP (20%/20%)",
            "messages": tolerant.maintenance_messages,
            "recomputations of R": tolerant.extras.get("recomputations", 0),
            "tolerance held": tolerant.tolerance_ok,
        }
    )

    print()
    print(format_table(rows, title=f"Continuous {K}-NN around the depot"))
    nearest = sorted(tolerant_protocol.answer)[:8]
    print()
    print(f"final answer (first vehicles by id): {nearest} ...")
    ratio = exact.maintenance_messages / max(1, tolerant.maintenance_messages)
    print(
        f"\nFT-RP delivers the dispatcher's view with {ratio:.0f}x fewer "
        "messages than exact maintenance."
    )


if __name__ == "__main__":
    main()
