"""2-D dispatch: the Section-7 multi-dimensional extension in action.

A city dispatcher tracks couriers moving on a 1000x1000 grid with two
standing queries:

* a **geofence** (box range query) around a restricted district, with a
  25%/25% fraction tolerance — the danger-zone scenario in 2-D;
* the **8 couriers nearest the depot** (Euclidean k-NN) with a rank
  slack of 4 — any courier truly among the 12 closest is acceptable.

Filters are now *regions*: each courier's radio stays silent while its
position remains on the same side of the deployed box/ball boundary.

Run:  python examples/spatial_dispatch.py
"""

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.harness.reporting import format_table
from repro.spatial import (
    BoxRegion,
    MovingObjectsConfig,
    SpatialKnnQuery,
    SpatialRangeQuery,
    generate_moving_objects_trace,
)
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance

N_COURIERS = 300
DEPOT = [500.0, 500.0]
RESTRICTED = BoxRegion([600.0, 600.0], [900.0, 900.0])


def main() -> None:
    trace = generate_moving_objects_trace(
        MovingObjectsConfig(
            n_objects=N_COURIERS, dimension=2, horizon=400.0, sigma=25.0, seed=5
        )
    )
    print(
        f"{N_COURIERS} couriers, {trace.n_records} position reports, "
        f"2-D grid 1000x1000"
    )

    rows = []

    engine = Engine()
    workload = Workload.from_trace(trace)
    baseline = engine.run(
        QuerySpec(
            protocol="no-filter-2d", query=SpatialRangeQuery(RESTRICTED)
        ),
        workload,
    )
    rows.append(
        {
            "standing query": "(any) — no filters",
            "protocol": "no-filter",
            "messages": baseline.maintenance_messages,
            "tolerance held": "exact",
        }
    )

    geofence_tolerance = FractionTolerance(0.25, 0.25)
    geofence = engine.run(
        QuerySpec(
            protocol="ft-nrp-2d",
            query=SpatialRangeQuery(RESTRICTED),
            tolerance=geofence_tolerance,
        ),
        workload,
        Deployment.single(check_every=1),
    )
    rows.append(
        {
            "standing query": "geofence (box range)",
            "protocol": "FT-NRP-2d",
            "messages": geofence.maintenance_messages,
            "tolerance held": geofence.tolerance_ok,
        }
    )

    knn_tolerance = RankTolerance(k=8, r=4)
    nearest = engine.run(
        QuerySpec(
            protocol="rtp-2d",
            query=SpatialKnnQuery(DEPOT, 8),
            tolerance=knn_tolerance,
        ),
        workload,
        Deployment.single(check_every=5),
    )
    rows.append(
        {
            "standing query": "8 nearest the depot (ball k-NN)",
            "protocol": "RTP-2d",
            "messages": nearest.maintenance_messages,
            "tolerance held": nearest.tolerance_ok,
        }
    )

    # The same k-NN query on a sharded fleet: four shard servers behind
    # a merging coordinator, batched AABB replay — ledger byte-identical
    # to the single-server run above (minus its checking overhead).
    sharded = engine.run(
        QuerySpec(
            protocol="rtp-2d",
            query=SpatialKnnQuery(DEPOT, 8),
            tolerance=knn_tolerance,
        ),
        workload,
        Deployment.sharded(4),
    )
    rows.append(
        {
            "standing query": "8 nearest, sharded(4) + batched",
            "protocol": "RTP-2d",
            "messages": sharded.maintenance_messages,
            "tolerance held": sharded.final_answer == nearest.final_answer,
        }
    )

    print()
    print(format_table(rows, title="2-D dispatch over one shared fleet"))
    print()
    print(f"couriers near depot right now: {sorted(nearest.final_answer)}")
    print(
        "\nThe 1-D protocols carry over verbatim: intervals become boxes\n"
        "and balls, membership flips still gate every transmission — and\n"
        "the geometric quiescence planes shard and batch the 2-D stack\n"
        "exactly like the scalar one."
    )


if __name__ == "__main__":
    main()
