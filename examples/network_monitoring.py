"""Network monitoring: continuous top-k heavy-hitter subnets (Section 6.1).

Models the paper's remote-network-monitoring application: a central
console watches 800 subnets (one stream per 16-bit prefix) and maintains
a standing top-k query over per-connection bytes-sent — the pattern used
to flag potential DoS sources ("addresses from and to which packet
frequencies rank among the top few might signal alerts").

Rank-based tolerance is the natural error model here: the operator is
happy with any subnet that truly ranks in the top k + r, and has no idea
how many *bytes* of slack would encode that.  The example sweeps r and
shows the message savings RTP buys, with the rank guarantee verified
against ground truth throughout.

Run:  python examples/network_monitoring.py
"""

from repro import (
    Deployment,
    Engine,
    NoFilterProtocol,
    RankTolerance,
    RankToleranceProtocol,
    TcpTraceConfig,
    TopKQuery,
    format_table,
    generate_tcp_trace,
)

K = 20  # monitor the top-20 heaviest subnets


def main() -> None:
    trace = generate_tcp_trace(
        TcpTraceConfig(n_subnets=800, n_connections=20_000, days=30.0, seed=0)
    )
    print(
        f"trace: {trace.metadata['n_connections']} connections across "
        f"{trace.n_streams} subnets over {trace.metadata['days']:g} days"
    )

    engine = Engine()
    baseline = engine.run_protocol(trace, NoFilterProtocol(TopKQuery(k=K)))
    rows = [
        {
            "protocol": "no filter",
            "r": "-",
            "messages": baseline.maintenance_messages,
            "savings": "-",
            "rank guarantee held": "exact",
        }
    ]

    for r in (0, 5, 10, 15):
        tolerance = RankTolerance(k=K, r=r)
        protocol = RankToleranceProtocol(TopKQuery(k=K), tolerance)
        result = engine.run_protocol(
            trace,
            protocol,
            tolerance=tolerance,
            # Rank checks cost O(n log n); sample every 20th update.
            deployment=Deployment.single(check_every=20),
        )
        savings = 1 - result.maintenance_messages / baseline.maintenance_messages
        rows.append(
            {
                "protocol": "RTP",
                "r": r,
                "messages": result.maintenance_messages,
                "savings": f"{savings:+.1%}",
                "rank guarantee held": result.tolerance_ok,
            }
        )

    print()
    print(
        format_table(
            rows, title=f"Top-{K} heavy-hitter monitoring, varying rank slack"
        )
    )
    print()
    print(
        "r = 0 can cost MORE than shipping every update (the bound R is\n"
        "recomputed and re-broadcast on every boundary crossing); a little\n"
        "rank slack collapses the cost — Figure 9's story."
    )


if __name__ == "__main__":
    main()
