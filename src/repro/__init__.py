"""Adaptive stream filters for entity-based queries with non-value tolerance.

A from-scratch reproduction of Cheng, Kao, Prabhakar, Kwan and Tu,
"Adaptive Stream Filters for Entity-based Queries with Non-Value
Tolerance", VLDB 2005.

All four execution stacks — the paper's scalar filters
(``repro.streams``), the spatial generalization (``repro.spatial``), the
Olston-style value windows (``repro.valuebased``) and the shared
multi-query engine (``repro.multiquery``) — run on one runtime kernel,
``repro.runtime``: a generic membership-flip source
(:class:`~repro.runtime.source.FilteredSource` parameterized by a
:class:`~repro.runtime.membership.MembershipStrategy`) and a single
assembly/replay core (:class:`~repro.runtime.session.ExecutionSession`)
with a vectorized batched fast path for runs without correctness
checking.  Parameter sweeps (:func:`run_grid`, :func:`sweep_values`)
optionally fan out over a process pool.

Quickstart
----------
>>> from repro import (
...     FractionTolerance, FractionToleranceRangeProtocol, RangeQuery,
...     RunConfig, generate_synthetic_trace, run_protocol,
... )
>>> trace = generate_synthetic_trace(n_streams=100, horizon=200.0, seed=7)
>>> query = RangeQuery(400.0, 600.0)
>>> tolerance = FractionTolerance(eps_plus=0.2, eps_minus=0.2)
>>> protocol = FractionToleranceRangeProtocol(query, tolerance)
>>> result = run_protocol(
...     trace, protocol, tolerance=tolerance,
...     config=RunConfig(check_every=1),
... )
>>> result.tolerance_ok
True

See ``examples/`` for richer scenarios and ``repro.experiments`` for the
paper's figures.
"""

from repro.correctness import Oracle, ToleranceChecker
from repro.harness import (
    RunConfig,
    RunResult,
    format_series,
    format_table,
    run_grid,
    run_protocol,
    sweep_values,
)
from repro.network import MessageKind, MessageLedger
from repro.protocols import (
    BoundaryNearestSelection,
    FilterProtocol,
    FractionToleranceKnnProtocol,
    FractionToleranceRangeProtocol,
    NoFilterProtocol,
    RandomSelection,
    RankToleranceProtocol,
    ZeroToleranceKnnProtocol,
    ZeroToleranceRangeProtocol,
)
from repro.queries import (
    KMinQuery,
    KnnQuery,
    RangeQuery,
    TopKQuery,
)
from repro.runtime import (
    ExecutionSession,
    FilteredSource,
    MembershipStrategy,
)
from repro.sim import SimulationEngine
from repro.state import RankView, SilencerPools, StreamStateTable
from repro.streams import (
    FilterConstraint,
    StreamSource,
    StreamTrace,
    SyntheticConfig,
    TcpTraceConfig,
    TraceRecord,
    generate_synthetic_trace,
    generate_tcp_trace,
)
from repro.tolerance import (
    FractionTolerance,
    RankTolerance,
    RhoPolicy,
    answer_size_bounds,
    derive_rho,
)

__version__ = "1.0.0"

__all__ = [
    "BoundaryNearestSelection",
    "ExecutionSession",
    "FilterConstraint",
    "FilterProtocol",
    "FilteredSource",
    "FractionTolerance",
    "FractionToleranceKnnProtocol",
    "FractionToleranceRangeProtocol",
    "KMinQuery",
    "KnnQuery",
    "MembershipStrategy",
    "MessageKind",
    "MessageLedger",
    "NoFilterProtocol",
    "Oracle",
    "RandomSelection",
    "RangeQuery",
    "RankTolerance",
    "RankToleranceProtocol",
    "RankView",
    "RhoPolicy",
    "RunConfig",
    "RunResult",
    "SilencerPools",
    "SimulationEngine",
    "StreamSource",
    "StreamStateTable",
    "StreamTrace",
    "SyntheticConfig",
    "TcpTraceConfig",
    "ToleranceChecker",
    "TopKQuery",
    "TraceRecord",
    "ZeroToleranceKnnProtocol",
    "ZeroToleranceRangeProtocol",
    "answer_size_bounds",
    "derive_rho",
    "format_series",
    "format_table",
    "generate_synthetic_trace",
    "generate_tcp_trace",
    "run_grid",
    "run_protocol",
    "sweep_values",
    "__version__",
]
