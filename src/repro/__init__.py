"""Adaptive stream filters for entity-based queries with non-value tolerance.

A from-scratch reproduction of Cheng, Kao, Prabhakar, Kwan and Tu,
"Adaptive Stream Filters for Entity-based Queries with Non-Value
Tolerance", VLDB 2005.

All four execution stacks — the paper's scalar filters
(``repro.streams``), the spatial generalization (``repro.spatial``), the
Olston-style value windows (``repro.valuebased``) and the shared
multi-query engine (``repro.multiquery``) — run on one runtime kernel,
``repro.runtime``: a generic membership-flip source
(:class:`~repro.runtime.source.FilteredSource` parameterized by a
:class:`~repro.runtime.membership.MembershipStrategy`) and a single
assembly/replay core (:class:`~repro.runtime.session.ExecutionSession`)
with a vectorized batched fast path for runs without correctness
checking.  Parameter sweeps (:func:`run_grid`, :func:`sweep_values`)
optionally fan out over a process pool.

Execution entry is the declarative facade ``repro.api``: a run is a
value — :class:`~repro.api.QuerySpec` (query + tolerance + protocol),
:class:`~repro.api.Workload` (trace parameters) and
:class:`~repro.api.Deployment` (topology, replay mode, checking) —
compiled by an :class:`~repro.api.Engine` into an executable plan and
returning one unified :class:`~repro.api.RunReport`.  The deployment
axis includes a sharded topology (``Deployment.sharded(n)``: per-shard
state tables and servers behind a k-way-merge coordinator) whose
message ledgers are byte-identical to the single-server run.

Quickstart
----------
>>> from repro import (
...     Deployment, Engine, FractionTolerance, QuerySpec, RangeQuery,
...     Workload,
... )
>>> report = Engine().run(
...     QuerySpec(
...         protocol="ft-nrp",
...         query=RangeQuery(400.0, 600.0),
...         tolerance=FractionTolerance(eps_plus=0.2, eps_minus=0.2),
...     ),
...     Workload.synthetic(n_streams=100, horizon=200.0, seed=7),
...     Deployment.single(check_every=1),
... )
>>> report.tolerance_ok
True

Scaling out is one argument change: ``Deployment.sharded(4)``.

See ``examples/`` for richer scenarios and ``repro.experiments`` for the
paper's figures.
"""

from repro.api import (
    Deployment,
    Engine,
    QuerySpec,
    RunReport,
    Workload,
    run_grid,
    sweep_values,
)
from repro.correctness import Oracle, ToleranceChecker
from repro.harness import (
    RunConfig,
    RunResult,
    format_series,
    format_table,
    run_protocol,
)
from repro.network import (
    ExponentialLatency,
    FixedLatency,
    LatencyChannel,
    MessageKind,
    MessageLedger,
    SynchronousChannel,
    UniformLatency,
)
from repro.protocols import (
    BoundaryNearestSelection,
    FilterProtocol,
    FractionToleranceKnnProtocol,
    FractionToleranceRangeProtocol,
    NoFilterProtocol,
    RandomSelection,
    RankToleranceProtocol,
    ZeroToleranceKnnProtocol,
    ZeroToleranceRangeProtocol,
)
from repro.queries import (
    KMinQuery,
    KnnQuery,
    RangeQuery,
    TopKQuery,
)
from repro.runtime import (
    ExecutionSession,
    FilteredSource,
    MembershipStrategy,
)
from repro.server import Server, ShardedServer
from repro.sim import SimulationEngine
from repro.state import (
    RankView,
    ShardedRankView,
    SilencerPools,
    StateShardView,
    StreamStateTable,
)
from repro.streams import (
    FilterConstraint,
    StreamSource,
    StreamTrace,
    SyntheticConfig,
    TcpTraceConfig,
    TraceRecord,
    generate_synthetic_trace,
    generate_tcp_trace,
)
from repro.tolerance import (
    FractionTolerance,
    RankTolerance,
    RhoPolicy,
    answer_size_bounds,
    derive_rho,
)

__version__ = "1.3.0"

__all__ = [
    "__version__",
    "answer_size_bounds",
    "BoundaryNearestSelection",
    "Deployment",
    "derive_rho",
    "Engine",
    "ExecutionSession",
    "ExponentialLatency",
    "FilterConstraint",
    "FilteredSource",
    "FilterProtocol",
    "FixedLatency",
    "format_series",
    "format_table",
    "FractionTolerance",
    "FractionToleranceKnnProtocol",
    "FractionToleranceRangeProtocol",
    "generate_synthetic_trace",
    "generate_tcp_trace",
    "KMinQuery",
    "KnnQuery",
    "LatencyChannel",
    "MembershipStrategy",
    "MessageKind",
    "MessageLedger",
    "NoFilterProtocol",
    "Oracle",
    "QuerySpec",
    "RandomSelection",
    "RangeQuery",
    "RankTolerance",
    "RankToleranceProtocol",
    "RankView",
    "RhoPolicy",
    "run_grid",
    "run_protocol",
    "RunConfig",
    "RunReport",
    "RunResult",
    "Server",
    "ShardedRankView",
    "ShardedServer",
    "SilencerPools",
    "SimulationEngine",
    "StateShardView",
    "StreamSource",
    "StreamStateTable",
    "StreamTrace",
    "sweep_values",
    "SynchronousChannel",
    "SyntheticConfig",
    "TcpTraceConfig",
    "ToleranceChecker",
    "TopKQuery",
    "TraceRecord",
    "UniformLatency",
    "Workload",
    "ZeroToleranceKnnProtocol",
    "ZeroToleranceRangeProtocol",
]
