"""Crash recovery: snapshot restore + journal replay = the same run.

:func:`recover_run` reconstructs a crashed durable run from its run
directory alone, in two steps:

1. **Restore a consistent cut.**  Prefer the latest snapshot the
   journal *marks* (a mark is only appended after the snapshot file is
   durably on disk, so a marked snapshot always loads); fall back mark
   by mark; with no usable snapshot, rebuild from the manifest — a
   pristine pre-init protocol clone plus the initial values — and rerun
   initialization, which is deterministic and therefore re-charges the
   exact initialization ledger.
2. **Replay the journaled suffix.**  Every event at or past the cut is
   in the journal (write-ahead: segments are journaled before they are
   applied), so replaying ``events[position:]`` through the ordinary
   session machinery *recomputes* the maintenance messages rather than
   trusting the journal's message frames.  The journal stays detached
   during this replay — recovery recomputes, it never re-journals.

Why the recovered ledger is byte-identical to the uninterrupted run's:
replay is deterministic (same sources, same protocol state, same event
order), batched replay is ledger-identical to per-event replay
(DESIGN.md §9), and segmentation cannot change a ledger (each segment's
event path drains the engine queue completely before the next begins).
The journal's own message frames double as an audit stream of what the
crashed process had charged, but the proof never leans on them.

Restored state tables are always RAM-backed — ``storage="mmap"`` plane
files reflect the instant of the crash (possibly *ahead* of the
journal's durable prefix, since memmap pages flush on the OS's
schedule), so reusing them could double-apply events.  The snapshot
pickles planes by value instead; a resumed mmap run therefore continues
on RAM planes.
"""

from __future__ import annotations

import dataclasses
import os
import pickle

from repro.durability.journal import (
    Journal,
    JournalContents,
    JournaledLedger,
    load_journal,
)
from repro.durability.policy import DurabilityPolicy
from repro.durability.runner import (
    _build_result,
    _durability_extras,
    _merge_segment_stats,
    _replay_segments,
    build_durable_session,
)
from repro.harness.results import RunResult
from repro.runtime.session import ExecutionSession
from repro.sim.engine import SimulationEngine


@dataclasses.dataclass
class RecoveredRun:
    """A reconstructed session, caught up to the journal's last event.

    ``position`` is the number of trace records already applied (and
    durably journaled); :func:`resume_run` continues the trace from
    there.  ``snapshot_file`` names the snapshot the restore used,
    ``None`` when recovery rebuilt from the manifest.
    """

    session: ExecutionSession
    position: int
    manifest: dict
    policy: DurabilityPolicy
    snapshot_file: str | None
    scan_reason: str


def _load_manifest(run_dir: str) -> dict:
    path = os.path.join(run_dir, "manifest.pkl")
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"{run_dir} has no manifest.pkl: not a durable run directory"
        )
    with open(path, "rb") as handle:
        return pickle.load(handle)


def _stub_trace(manifest: dict):
    """An event-less trace carrying only the initial values.

    The manifest path re-assembles the session exactly as the original
    run did — same builders, same initial values — then replays the
    journaled events instead of trace arrays.
    """
    import numpy as np

    from repro.streams.trace import StreamTrace

    return StreamTrace(
        initial_values=manifest["initial_values"],
        times=np.empty(0, dtype=np.float64),
        stream_ids=np.empty(0, dtype=np.int64),
        values=np.empty(0, dtype=np.float64),
        horizon=manifest["horizon"],
    )


def _restore_from_snapshot(
    policy: DurabilityPolicy, mark: dict
) -> tuple[ExecutionSession, int] | None:
    path = os.path.join(policy.snapshot_dir, mark["file"])
    try:
        with open(path, "rb") as handle:
            blob = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError):
        return None
    engine = SimulationEngine()
    if blob["engine_now"] > 0.0:
        # Empty queue: run() just advances the clock to the cut's time.
        engine.run(until=blob["engine_now"])
    channels = blob["channels"]
    session = ExecutionSession(
        sources=blob["sources"],
        ledger=blob["ledger"],
        engine=engine,
        channel=channels[0] if len(channels) == 1 else None,
        channels=channels,
        host=blob["host"],
    )
    return session, int(blob["position"])


def recover_run(run_dir: str) -> RecoveredRun:
    """Reconstruct the crashed run under *run_dir*; see module docs."""
    manifest = _load_manifest(run_dir)
    policy: DurabilityPolicy = manifest["policy"]
    contents: JournalContents = load_journal(policy.journal_path)

    session: ExecutionSession | None = None
    position = 0
    snapshot_file: str | None = None
    for mark in reversed(contents.snapshots):
        restored = _restore_from_snapshot(policy, mark)
        if restored is not None:
            session, position = restored
            snapshot_file = mark["file"]
            break
    if session is None:
        # Manifest path: deterministic re-initialization re-charges the
        # initialization ledger exactly; RAM planes always (see module
        # docs for why crashed mmap planes are never reopened).
        ram_policy = dataclasses.replace(policy, storage="ram")
        ledger = JournaledLedger()
        session = build_durable_session(
            _stub_trace(manifest),
            manifest["protocol"],
            manifest,
            ram_policy,
            ledger,
        )
        session.initialize(time=0.0)

    # Replay the journaled suffix with the journal detached: recovery
    # recomputes messages, it never re-journals them.
    if position < len(contents.times):
        session.replay(
            contents.times[position:],
            contents.stream_ids[position:],
            contents.values[position:],
            horizon=None,
            mode=manifest["replay_mode"],
            batch_size=manifest["batch_size"],
            min_chunk=manifest["min_chunk"],
        )
    scan_reason = contents.scan.reason if contents.scan is not None else "clean"
    return RecoveredRun(
        session=session,
        position=len(contents.times),
        manifest=manifest,
        policy=policy,
        snapshot_file=snapshot_file,
        scan_reason=scan_reason,
    )


def resume_run(run_dir: str, trace, progress=None) -> RunResult:
    """Recover the run under *run_dir* and finish it against *trace*.

    *trace* must be the original run's trace (the journal holds the
    applied prefix, the trace supplies the rest).  The journal reopens
    for append — its torn tail, if any, is physically truncated first —
    and the remaining records flow through the same WAL segment loop as
    an uninterrupted run, so the final ledger, answer, and journal are
    those of a run that never crashed.
    """
    rec = recover_run(run_dir)
    policy = rec.policy
    manifest = rec.manifest
    if trace.n_records < rec.position:
        raise ValueError(
            f"trace has {trace.n_records} records but the journal already "
            f"holds {rec.position}: wrong trace for this run directory"
        )

    journal = Journal.open(
        policy.journal_path,
        fsync=policy.fsync,
        fsync_interval=policy.fsync_interval,
    )
    ledger = rec.session.ledger
    ledger.attach_journal(journal)
    try:
        loop = _replay_segments(
            rec.session,
            journal,
            policy,
            trace,
            rec.position,
            manifest,
            progress=progress,
        )
    except BaseException:
        journal.simulate_crash()
        raise
    journal.close()
    ledger.detach_journal()

    durability = _durability_extras(policy, journal, loop, True)
    durability["recovery"] = {
        "position": rec.position,
        "snapshot_file": rec.snapshot_file,
        "scan_reason": rec.scan_reason,
    }
    extras = {"durability": durability}
    if loop["replay_parts"]:
        extras["replay"] = _merge_segment_stats(loop["replay_parts"])
    return _build_result(
        rec.session, trace, manifest.get("label", ""), extras
    )
