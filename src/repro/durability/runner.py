"""The durable scalar runner: WAL segments, periodic snapshots.

:func:`execute_durable_streams` is what the api engine compiles
``Deployment(durable=DurabilityPolicy(...))`` down to for the scalar
single and sharded stacks.  The loop is the write-ahead discipline in
miniature:

1. append the next trace segment to the journal (``REC_EVENTS``),
2. replay it through the ordinary :class:`ExecutionSession` machinery —
   every ledger charge is mirrored into the journal by the
   :class:`~repro.durability.journal.JournaledLedger`,
3. every ``snapshot_every`` records, pickle the quiescent object graph
   (host, sources, ledger, channels, engine clock) and mark it in the
   journal only once the snapshot file is durably on disk.

Between ``replay()`` calls the system is *quiescent* — the engine's
event queue is drained (``horizon=None`` event replay runs the queue
dry), the deferred-write taps are detached, and the batched kernels'
staging buffers are flushed — which is exactly what makes the pickled
graph a consistent cut and the journal position an exact resume point.
"""

from __future__ import annotations

import os
import pickle

from repro.durability.journal import Journal, JournaledLedger
from repro.durability.policy import DurabilityPolicy
from repro.harness.results import RunResult
from repro.runtime.session import ExecutionSession
from repro.state.table import StateTableFactory

#: Snapshot pickle protocol.  Pinned to 4: protocol 5 reconstructs
#: numpy planes as views over the pickled buffer, and numpy's
#: base-chain collapsing then reports a re-sliced shard view's ``base``
#: as that buffer instead of the parent plane — same memory, but it
#: breaks the strict ``shard.values.base is parent.values`` invariant
#: ``validate_shard_alignment`` guards.
_PICKLE_PROTOCOL = 4


def _merge_segment_stats(parts: list[dict]) -> dict:
    """Fold per-segment replay stats into one run-level dict."""
    from repro.api.engine import _merge_replay_stats

    merged = _merge_replay_stats(parts)
    merged.pop("workers", None)
    return merged


def _write_snapshot(
    session: ExecutionSession, position: int, policy: DurabilityPolicy
) -> tuple[str, int]:
    """Pickle the quiescent object graph; returns ``(file name, bytes)``.

    The engine itself is excluded (its queue is empty between segments
    and its closures do not pickle); only the clock value rides along.
    Written atomically — tmp file, flush, fsync, rename — so a crash
    mid-snapshot leaves no partially-written ``.pkl`` behind.
    """
    os.makedirs(policy.snapshot_dir, exist_ok=True)
    name = f"snapshot_{position:012d}.pkl"
    path = os.path.join(policy.snapshot_dir, name)
    blob = {
        "host": session.host,
        "sources": session.sources,
        "ledger": session.ledger,
        "channels": session.channels,
        "engine_now": float(session.engine.now),
        "position": int(position),
    }
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        pickle.dump(blob, handle, protocol=_PICKLE_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return name, os.path.getsize(path)


def _replay_segments(
    session: ExecutionSession,
    journal: Journal,
    policy: DurabilityPolicy,
    trace,
    start: int,
    manifest: dict,
    progress=None,
) -> dict:
    """The WAL loop: journal a segment, replay it, maybe snapshot.

    Returns the run-level durability counters.  On any exception the
    journal *simulates a crash* — buffered bytes are dropped, durable
    bytes survive — so in-process kill tests model a real process death
    faithfully before the exception propagates.
    """
    times, stream_ids, values = trace.times, trace.stream_ids, trace.values
    n = len(times)
    position = int(start)
    last_snapshot = position
    segments = 0
    snapshot_count = 0
    snapshot_bytes = 0
    stats_parts: list[dict] = []
    try:
        while position < n:
            end = min(position + policy.segment_records, n)
            # Write-ahead: the segment is durable (to the policy's
            # level) before any of it is applied.
            journal.append_events(
                times[position:end],
                stream_ids[position:end],
                values[position:end],
            )
            session.replay(
                times[position:end],
                stream_ids[position:end],
                values[position:end],
                horizon=None,
                mode=manifest["replay_mode"],
                batch_size=manifest["batch_size"],
                min_chunk=manifest["min_chunk"],
            )
            if session.last_replay_stats is not None:
                stats_parts.append(dict(session.last_replay_stats))
            position = end
            segments += 1
            if (
                policy.snapshot_every
                and position < n
                and position - last_snapshot >= policy.snapshot_every
            ):
                name, size = _write_snapshot(session, position, policy)
                journal.append_snapshot_mark(position, name)
                last_snapshot = position
                snapshot_count += 1
                snapshot_bytes += size
            if progress is not None:
                progress(position)
    except BaseException:
        journal.simulate_crash()
        raise
    if trace.horizon is not None and trace.horizon > session.engine.now:
        session.engine.run(until=trace.horizon)
    return {
        "segments": segments,
        "snapshots": {"count": snapshot_count, "bytes": snapshot_bytes},
        "replay_parts": stats_parts,
    }


def _durability_extras(
    policy: DurabilityPolicy, journal: Journal, loop: dict, recovered: bool
) -> dict:
    return {
        "fsync": policy.fsync,
        "fsync_interval": policy.fsync_interval,
        "storage": policy.storage,
        "snapshot_every": policy.snapshot_every,
        "segment_records": policy.segment_records,
        "run_dir": policy.run_dir,
        "journal": dict(journal.stats),
        "snapshots": dict(loop["snapshots"]),
        "segments": loop["segments"],
        "recovered": recovered,
    }


def _build_result(
    session: ExecutionSession, trace, label: str, extras: dict
) -> RunResult:
    protocol = session.host.protocol
    return RunResult(
        protocol=protocol.name,
        ledger=session.snapshot(),
        checker=None,
        n_streams=trace.n_streams,
        n_records=trace.n_records,
        final_answer=protocol.answer,
        label=label,
        extras=extras,
    )


def build_durable_session(
    trace, protocol, manifest: dict, policy: DurabilityPolicy, ledger
) -> ExecutionSession:
    """Assemble the scalar session the manifest describes."""
    state_factory = None
    if policy.storage == "mmap":
        os.makedirs(policy.planes_dir, exist_ok=True)
        state_factory = StateTableFactory(
            storage="mmap", plane_dir=policy.planes_dir
        )
    if manifest["topology"] == "sharded":
        return ExecutionSession.for_streams_sharded(
            trace,
            protocol,
            manifest["n_shards"],
            ledger=ledger,
            state_factory=state_factory,
        )
    return ExecutionSession.for_streams(
        trace, protocol, ledger=ledger, state_factory=state_factory
    )


def execute_durable_streams(
    trace, protocol, deployment, label: str = "", progress=None
) -> RunResult:
    """Run *trace* against *protocol* with a write-ahead journal.

    *deployment* must carry a :class:`DurabilityPolicy` (validated at
    ``Deployment`` construction); *progress*, if given, is called with
    the record position after every segment — the kill-and-recover
    suite injects its crash there.
    """
    policy: DurabilityPolicy = deployment.durable
    if policy is None:
        raise ValueError("deployment has no durability policy")
    os.makedirs(policy.run_dir, exist_ok=True)
    if os.path.exists(policy.journal_path):
        raise FileExistsError(
            f"{policy.journal_path} already exists: this run directory "
            "holds a (possibly crashed) run — recover it with "
            "repro.durability.resume_run, or point the policy at a "
            "fresh directory"
        )

    # The manifest is the recovery bootstrap: a pristine (pre-init)
    # protocol clone plus everything needed to re-assemble the session.
    # Durable before the first event is applied.
    import copy

    manifest = {
        "topology": deployment.topology,
        "n_shards": deployment.n_shards,
        "replay_mode": deployment.replay_mode,
        "batch_size": deployment.batch_size,
        "min_chunk": deployment.min_chunk,
        "policy": policy,
        "protocol": copy.deepcopy(protocol),
        "initial_values": trace.initial_values.copy(),
        "horizon": trace.horizon,
        "label": label,
    }
    tmp = policy.manifest_path + ".tmp"
    with open(tmp, "wb") as handle:
        pickle.dump(manifest, handle, protocol=_PICKLE_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, policy.manifest_path)

    journal = Journal.open(
        policy.journal_path,
        fsync=policy.fsync,
        fsync_interval=policy.fsync_interval,
    )
    journal.append_meta(
        {
            "topology": deployment.topology,
            "n_shards": deployment.n_shards,
            "n_streams": int(trace.n_streams),
            "n_records": int(trace.n_records),
            "storage": policy.storage,
        }
    )

    ledger = JournaledLedger()
    ledger.attach_journal(journal)
    session = build_durable_session(trace, protocol, manifest, policy, ledger)
    try:
        session.initialize(time=0.0)
        loop = _replay_segments(
            session, journal, policy, trace, 0, manifest, progress=progress
        )
    except BaseException:
        # _replay_segments already crashed the journal; initialize()
        # failures crash it here so nothing half-buffered lingers.
        journal.simulate_crash()
        raise
    journal.close()
    ledger.detach_journal()

    extras = {
        "durability": _durability_extras(policy, journal, loop, False)
    }
    if loop["replay_parts"]:
        extras["replay"] = _merge_segment_stats(loop["replay_parts"])
    return _build_result(session, trace, label, extras)
