"""The durability knob set: one frozen policy object per run directory.

A :class:`DurabilityPolicy` is carried by
:class:`~repro.api.spec.Deployment` (which is itself frozen and
hashable), so every field here must stay hashable — ``run_dir`` is a
plain string, never a ``Path``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: When to push journal bytes to stable storage.
FSYNC_POLICIES = ("never", "interval", "every")

#: Plane backings understood by the state table.
STORAGE_BACKINGS = ("ram", "mmap")


@dataclass(frozen=True)
class DurabilityPolicy:
    """How (and how hard) a run persists itself.

    Parameters
    ----------
    run_dir:
        Directory owning the run's journal, snapshots and (under
        ``storage="mmap"``) plane files.  Created on demand.
    fsync:
        ``"never"`` flushes to the OS only when the journal's buffer
        fills, ``"interval"`` fsyncs every ``fsync_interval`` appends,
        ``"every"`` fsyncs after each append (the classical WAL
        discipline; also the slowest).
    fsync_interval:
        Append count between fsyncs under ``fsync="interval"``.
    snapshot_every:
        Snapshot the full object graph every this-many trace records.
        ``0`` disables snapshots: recovery then rebuilds from the
        manifest and replays the whole journal.
    segment_records:
        Trace records journaled (then replayed) per segment.  Smaller
        segments bound the byte window a crash can lose under
        ``fsync="never"``; larger ones amortize framing overhead.
    storage:
        ``"ram"`` | ``"mmap"`` backing for the server's state planes.
    """

    run_dir: str
    fsync: str = "never"
    fsync_interval: int = 64
    snapshot_every: int = 0
    segment_records: int = 1024
    storage: str = "ram"

    def __post_init__(self) -> None:
        object.__setattr__(self, "run_dir", os.fspath(self.run_dir))
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {self.fsync!r}"
            )
        if self.storage not in STORAGE_BACKINGS:
            raise ValueError(
                f"storage must be one of {STORAGE_BACKINGS}, "
                f"got {self.storage!r}"
            )
        if self.fsync_interval < 1:
            raise ValueError("fsync_interval must be >= 1")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")
        if self.segment_records < 1:
            raise ValueError("segment_records must be >= 1")

    # -- run-directory layout ------------------------------------------
    @property
    def journal_path(self) -> str:
        return os.path.join(self.run_dir, "journal.bin")

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.run_dir, "manifest.pkl")

    @property
    def snapshot_dir(self) -> str:
        return os.path.join(self.run_dir, "snapshots")

    @property
    def planes_dir(self) -> str:
        return os.path.join(self.run_dir, "planes")

    def describe(self) -> str:
        parts = [f"fsync={self.fsync}", f"storage={self.storage}"]
        if self.snapshot_every:
            parts.append(f"snapshot_every={self.snapshot_every}")
        return ", ".join(parts)
