"""Durability tier: journal, disk-backed planes, crash recovery.

Three cooperating parts (DESIGN.md §11):

* :mod:`repro.durability.journal` — an append-only, CRC-framed binary
  log of trace events and protocol messages, charged at exactly the
  points the :class:`~repro.network.accounting.MessageLedger` is.
* ``StreamStateTable(storage="mmap")`` — dense planes as ``np.memmap``
  files under a run directory (:mod:`repro.state.table`), so n=1M+
  populations fit without RAM-resident planes.
* :mod:`repro.durability.recovery` — periodic plane snapshots plus
  journal replay through the existing batched-replay machinery
  reconstruct a crashed run with a byte-identical message ledger.

Nothing here imports :mod:`repro.api`; the api layer compiles
``Deployment(durable=DurabilityPolicy(...))`` down to
:func:`execute_durable_streams` / :func:`resume_run`.
"""

from repro.durability.journal import (
    Journal,
    JournaledLedger,
    JournalScan,
    load_journal,
    scan_journal,
)
from repro.durability.policy import DurabilityPolicy
from repro.durability.recovery import RecoveredRun, recover_run, resume_run
from repro.durability.runner import execute_durable_streams

__all__ = [
    "DurabilityPolicy",
    "Journal",
    "JournaledLedger",
    "JournalScan",
    "RecoveredRun",
    "execute_durable_streams",
    "load_journal",
    "recover_run",
    "resume_run",
    "scan_journal",
]
