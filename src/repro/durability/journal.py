"""The append-only run journal: CRC-framed, torn-tail-tolerant.

File layout::

    magic  b"REPROJL1"                                  (8 bytes)
    frame* <u32 payload_len LE> <u32 crc32(payload) LE> <payload>

``payload[0]`` is the record type; the rest is type-specific:

* ``REC_META`` — UTF-8 JSON: run parameters, written once at open.
* ``REC_EVENTS`` — one trace segment, journaled *before* it is applied
  (write-ahead): ``<u32 count>`` then the ``times`` (f64), ``ids``
  (i64) and ``values`` (f64) arrays as raw little-endian bytes.
* ``REC_MESSAGES`` — one ledger charge: ``<u8 phase> <u8 kind>
  <u32 count>``, appended by :class:`JournaledLedger` at exactly the
  points the in-RAM ledger is charged.
* ``REC_SNAPSHOT`` — UTF-8 JSON ``{"position": ..., "file": ...}``,
  appended *after* the snapshot file is durably on disk, so a mark in
  the journal is a promise the snapshot loads.

Torn-tail discipline: :meth:`Journal.open` scans the file, keeps the
longest valid prefix of whole frames, and *physically truncates* the
rest — a crash mid-append (torn length/CRC/payload) costs at most the
unflushed suffix, never a parse error on recovery.  A CRC mismatch
anywhere ends the valid prefix the same way (corruption is detected,
not silently replayed).

Buffering is explicit: the journal owns a ``bytearray`` over a raw fd,
so :meth:`simulate_crash` can model a process kill faithfully — bytes
handed to the OS survive, bytes still in the Python buffer do not.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.network.accounting import MessageLedger, Phase
from repro.network.messages import Message, MessageKind

MAGIC = b"REPROJL1"

REC_META = 1
REC_EVENTS = 2
REC_MESSAGES = 3
REC_SNAPSHOT = 4

_HEADER = struct.Struct("<II")  # payload_len, crc32(payload)
_U32 = struct.Struct("<I")
_MSG = struct.Struct("<BBI")  # phase code, kind code, count

#: Stable wire codes — append-only; never renumber.
PHASE_CODES = {Phase.INITIALIZATION: 0, Phase.MAINTENANCE: 1}
PHASES_BY_CODE = {code: phase for phase, code in PHASE_CODES.items()}
KIND_CODES = {kind: code for code, kind in enumerate(MessageKind)}
KINDS_BY_CODE = {code: kind for kind, code in KIND_CODES.items()}

#: Flush the buffer to the OS at this many pending bytes under
#: ``fsync="never"``.
_FLUSH_THRESHOLD = 256 * 1024


@dataclass
class JournalScan:
    """Result of scanning a journal file for its valid prefix.

    ``records`` holds ``(rtype, payload_body)`` tuples — the payload
    *without* its leading type byte.  ``reason`` is ``"clean"`` (file
    ends exactly at a frame boundary), ``"torn"`` (trailing partial
    frame), ``"crc"`` (checksum mismatch ended the prefix), or
    ``"magic"`` (file too short / wrong magic; no records).
    """

    records: list[tuple[int, bytes]]
    valid_bytes: int
    total_bytes: int
    reason: str


@dataclass
class JournalContents:
    """Structured view of a journal's valid prefix."""

    meta: dict
    times: np.ndarray
    stream_ids: np.ndarray
    values: np.ndarray
    #: Per-segment record counts, in append order.
    segments: list[int]
    #: ``(phase, kind, count)`` charges, in append order.
    messages: list[tuple[Phase, MessageKind, int]]
    #: ``{"position": ..., "file": ...}`` marks, in append order.
    snapshots: list[dict] = field(default_factory=list)
    scan: JournalScan | None = None


def scan_journal(path: str) -> JournalScan:
    """The longest valid frame prefix of the file at *path*."""
    with open(path, "rb") as handle:
        blob = handle.read()
    total = len(blob)
    if total < len(MAGIC) or blob[: len(MAGIC)] != MAGIC:
        return JournalScan([], 0, total, "magic")
    records: list[tuple[int, bytes]] = []
    offset = len(MAGIC)
    reason = "clean"
    while offset < total:
        if offset + _HEADER.size > total:
            reason = "torn"
            break
        length, crc = _HEADER.unpack_from(blob, offset)
        body_start = offset + _HEADER.size
        body_end = body_start + length
        if length < 1 or body_end > total:
            reason = "torn"
            break
        payload = blob[body_start:body_end]
        if zlib.crc32(payload) != crc:
            reason = "crc"
            break
        records.append((payload[0], payload[1:]))
        offset = body_end
    return JournalScan(records, offset, total, reason)


def _decode_events(body: bytes) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    (count,) = _U32.unpack_from(body, 0)
    cursor = _U32.size
    times = np.frombuffer(body, dtype="<f8", count=count, offset=cursor)
    cursor += 8 * count
    ids = np.frombuffer(body, dtype="<i8", count=count, offset=cursor)
    cursor += 8 * count
    values = np.frombuffer(body, dtype="<f8", count=count, offset=cursor)
    return (
        times.astype(np.float64),
        ids.astype(np.int64),
        values.astype(np.float64),
    )


def load_journal(path: str) -> JournalContents:
    """Decode the valid prefix of the journal at *path*."""
    scan = scan_journal(path)
    meta: dict = {}
    segments: list[int] = []
    chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    messages: list[tuple[Phase, MessageKind, int]] = []
    snapshots: list[dict] = []
    for rtype, body in scan.records:
        if rtype == REC_META:
            meta = json.loads(body.decode("utf-8"))
        elif rtype == REC_EVENTS:
            times, ids, values = _decode_events(body)
            segments.append(len(times))
            chunks.append((times, ids, values))
        elif rtype == REC_MESSAGES:
            phase_code, kind_code, count = _MSG.unpack(body)
            messages.append(
                (PHASES_BY_CODE[phase_code], KINDS_BY_CODE[kind_code], count)
            )
        elif rtype == REC_SNAPSHOT:
            snapshots.append(json.loads(body.decode("utf-8")))
        # Unknown record types are skipped (forward compatibility).
    if chunks:
        times = np.concatenate([c[0] for c in chunks])
        stream_ids = np.concatenate([c[1] for c in chunks])
        values = np.concatenate([c[2] for c in chunks])
    else:
        times = np.empty(0, dtype=np.float64)
        stream_ids = np.empty(0, dtype=np.int64)
        values = np.empty(0, dtype=np.float64)
    return JournalContents(
        meta=meta,
        times=times,
        stream_ids=stream_ids,
        values=values,
        segments=segments,
        messages=messages,
        snapshots=snapshots,
        scan=scan,
    )


class Journal:
    """Append handle over one journal file.

    Use :meth:`Journal.open` — it creates the file with its magic, or
    scans an existing one and truncates any invalid tail before
    appending resumes.
    """

    def __init__(
        self, path: str, fd: int, *, fsync: str = "never", fsync_interval: int = 64
    ) -> None:
        if fsync not in ("never", "interval", "every"):
            raise ValueError(f"unknown fsync policy {fsync!r}")
        if fsync_interval < 1:
            raise ValueError("fsync_interval must be >= 1")
        self.path = path
        self._fd: int | None = fd
        self._fsync = fsync
        self._fsync_interval = int(fsync_interval)
        self._buffer = bytearray()
        self._since_fsync = 0
        self.stats = {
            "appends": 0,
            "bytes": 0,
            "flushes": 0,
            "fsyncs": 0,
            "events_frames": 0,
            "message_frames": 0,
            "snapshot_frames": 0,
        }

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def open(
        cls, path: str, *, fsync: str = "never", fsync_interval: int = 64
    ) -> "Journal":
        """Open *path* for appending, truncating any torn tail.

        A fresh file gets the magic; an existing file is scanned and
        physically cut back to its valid prefix (a wrong magic raises —
        the file is not a journal, refusing beats clobbering it).
        """
        if os.path.exists(path) and os.path.getsize(path) > 0:
            scan = scan_journal(path)
            if scan.reason == "magic":
                raise ValueError(f"{path} is not a journal (bad magic)")
            fd = os.open(path, os.O_RDWR)
            if scan.valid_bytes != scan.total_bytes:
                os.ftruncate(fd, scan.valid_bytes)
            os.lseek(fd, scan.valid_bytes, os.SEEK_SET)
            journal = cls(path, fd, fsync=fsync, fsync_interval=fsync_interval)
        else:
            fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o644)
            journal = cls(path, fd, fsync=fsync, fsync_interval=fsync_interval)
            journal._buffer += MAGIC
            journal._flush()
        return journal

    @property
    def closed(self) -> bool:
        return self._fd is None

    def close(self) -> None:
        if self._fd is None:
            return
        self._flush()
        os.fsync(self._fd)
        self.stats["fsyncs"] += 1
        os.close(self._fd)
        self._fd = None

    def simulate_crash(self) -> None:
        """Model a process kill: buffered bytes vanish, OS bytes survive.

        Drops the Python-side buffer without flushing and closes the fd.
        Bytes already handed to the OS are assumed durable — faithful
        for a process kill (the kernel page cache survives), optimistic
        for a power cut (only ``fsync="every"`` bounds that case).
        """
        if self._fd is None:
            return
        self._buffer.clear()
        os.close(self._fd)
        self._fd = None

    # -- append API ----------------------------------------------------
    def append_meta(self, meta: dict) -> None:
        body = json.dumps(meta, sort_keys=True).encode("utf-8")
        self._append(REC_META, body)

    def append_events(
        self, times: np.ndarray, stream_ids: np.ndarray, values: np.ndarray
    ) -> None:
        """Write-ahead one trace segment (call *before* applying it)."""
        count = len(times)
        body = b"".join(
            (
                _U32.pack(count),
                np.ascontiguousarray(times, dtype="<f8").tobytes(),
                np.ascontiguousarray(stream_ids, dtype="<i8").tobytes(),
                np.ascontiguousarray(values, dtype="<f8").tobytes(),
            )
        )
        self._append(REC_EVENTS, body)
        self.stats["events_frames"] += 1

    def append_message(self, phase: Phase, kind: MessageKind, count: int) -> None:
        self._append(
            REC_MESSAGES, _MSG.pack(PHASE_CODES[phase], KIND_CODES[kind], count)
        )
        self.stats["message_frames"] += 1

    def append_snapshot_mark(self, position: int, file: str) -> None:
        """Promise that the snapshot at *file* is durable.  Call only
        after the snapshot file itself has been fsynced into place."""
        body = json.dumps({"position": int(position), "file": file}).encode(
            "utf-8"
        )
        self._append(REC_SNAPSHOT, body)
        # The mark must not sit in the buffer while recovery could need
        # it: a snapshot without its mark is merely unused, but a run
        # continuing past an unflushed mark could lose the pointer.
        self._flush()
        self.stats["snapshot_frames"] += 1

    def flush(self) -> None:
        self._flush()

    def sync(self) -> None:
        """Flush and fsync regardless of policy."""
        self._flush()
        if self._fd is not None:
            os.fsync(self._fd)
            self.stats["fsyncs"] += 1
            self._since_fsync = 0

    # -- internals -----------------------------------------------------
    def _append(self, rtype: int, body: bytes) -> None:
        if self._fd is None:
            raise ValueError("journal is closed")
        payload = bytes((rtype,)) + body
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._buffer += frame
        self.stats["appends"] += 1
        self.stats["bytes"] += len(frame)
        if self._fsync == "every":
            self.sync()
        elif self._fsync == "interval":
            self._since_fsync += 1
            if self._since_fsync >= self._fsync_interval:
                self.sync()
        elif len(self._buffer) >= _FLUSH_THRESHOLD:
            self._flush()

    def _flush(self) -> None:
        if self._fd is None or not self._buffer:
            return
        # The memoryview pins the bytearray (clear() would raise
        # BufferError while any export lives), so release it first.
        with memoryview(self._buffer) as view:
            written = 0
            while written < len(view):
                written += os.write(self._fd, view[written:])
        self._buffer.clear()
        self.stats["flushes"] += 1


class JournaledLedger(MessageLedger):
    """A message ledger that also journals every charge.

    The charge points are unchanged — ``record``/``record_kind`` are the
    exact hooks the channel and the columnar kernel already call — so
    the journal's message stream is definitionally byte-equivalent to
    the ledger's tallies.  Detach the journal to recompute (recovery
    replays journaled events *without* re-journaling their charges);
    snapshots pickle the ledger with the handle dropped.
    """

    def __init__(self) -> None:
        super().__init__()
        self._journal: Journal | None = None

    def attach_journal(self, journal: Journal) -> None:
        self._journal = journal

    def detach_journal(self) -> None:
        self._journal = None

    def record(self, message: Message) -> None:
        super().record(message)
        if self._journal is not None:
            self._journal.append_message(self.phase, message.kind, 1)

    def record_kind(self, kind: MessageKind, count: int = 1) -> None:
        super().record_kind(kind, count)
        if self._journal is not None:
            self._journal.append_message(self.phase, kind, count)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_journal"] = None
        return state
