"""Multiple standing queries over one stream population (Section 7).

The paper's future work: "We plan to extend the protocols to support
multiple queries."  The natural win is on the uplink — when several
queries install filters at the same source, one physical update message
can serve every query whose filter it violates.

Design: each source keeps one *filter slot per query*.  A value change
that flips membership in at least one non-silenced slot costs **one**
physical update; the coordinator forwards it only to the protocols whose
slot actually flipped, so every protocol observes exactly the message
sequence it would have seen running alone (its correctness argument is
untouched), while the ledger records the shared physical cost.
Control-plane messages (probes, constraint deployments) remain
per-query.

Run shared deployments through the facade —
:meth:`repro.api.Engine.run_queries` with one :class:`~repro.api.
QuerySpec` per standing query — or, with pre-built protocol instances,
:func:`~repro.multiquery.runner.execute_multi_query` (the deprecated
:func:`~repro.multiquery.runner.run_multi_query` shim delegates to it);
``benchmarks/bench_extension_multiquery.py`` quantifies the sharing
gain against independent deployments.
"""

from repro.multiquery.coordinator import MultiQueryCoordinator, QueryContext
from repro.multiquery.runner import (
    MultiQueryResult,
    execute_multi_query,
    run_multi_query,
)
from repro.multiquery.source import MultiQuerySource

__all__ = [
    "MultiQueryCoordinator",
    "MultiQueryResult",
    "MultiQuerySource",
    "QueryContext",
    "execute_multi_query",
    "run_multi_query",
]
