"""Replay a trace against several standing queries at once."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.correctness.oracle import Oracle
from repro.harness.config import RunConfig
from repro.multiquery.coordinator import MultiQueryCoordinator
from repro.network.accounting import LedgerSnapshot, Phase
from repro.protocols.base import FilterProtocol
from repro.queries.base import EntityQuery, RankBasedQuery
from repro.queries.range_query import RangeQuery
from repro.streams.trace import StreamTrace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance

Tolerance = RankTolerance | FractionTolerance | None


@dataclass
class MultiQueryResult:
    """Outcome of a shared multi-query run."""

    ledger: LedgerSnapshot
    shared_updates: int
    logical_deliveries: int
    answers: dict[str, frozenset[int]]
    checks: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def maintenance_messages(self) -> int:
        return self.ledger.maintenance_total

    @property
    def tolerance_ok(self) -> bool:
        return not self.violations

    @property
    def sharing_factor(self) -> float:
        """Average queries served per physical update (>= 1)."""
        if self.shared_updates == 0:
            return 1.0
        return self.logical_deliveries / self.shared_updates


def run_multi_query(
    trace: StreamTrace,
    queries: dict[str, tuple[FilterProtocol, EntityQuery, Tolerance]],
    config: RunConfig | None = None,
) -> MultiQueryResult:
    """Run every registered query's protocol over one shared population.

    Parameters
    ----------
    trace:
        The shared workload.
    queries:
        ``query_id -> (protocol, query, tolerance)``.  The protocol is a
        normal single-query protocol instance; the query/tolerance pair
        is used for the optional correctness checking.
    config:
        ``check_every`` / ``strict`` as in the single-query runner.
    """
    config = config or RunConfig()
    coordinator = MultiQueryCoordinator()
    coordinator.attach_sources(trace.initial_values)
    for query_id, (protocol, _, _) in queries.items():
        coordinator.register(query_id, protocol)

    oracle: Oracle | None = None
    if config.check_every > 0:
        oracle = Oracle(trace.initial_values)
        for _, (_, query, _) in queries.items():
            if isinstance(query, RangeQuery):
                oracle.register_range_query(query)

    coordinator.ledger.phase = Phase.INITIALIZATION
    coordinator.initialize_all(time=0.0)
    coordinator.ledger.phase = Phase.MAINTENANCE

    result = MultiQueryResult(
        ledger=coordinator.ledger.snapshot(),
        shared_updates=0,
        logical_deliveries=0,
        answers={},
    )

    def check(time: float) -> None:
        assert oracle is not None
        result.checks += 1
        for query_id, (protocol, query, tolerance) in queries.items():
            reason = _evaluate(protocol, oracle, query, tolerance)
            if reason is not None:
                note = f"t={time} [{query_id}]: {reason}"
                if len(result.violations) < 100:
                    result.violations.append(note)
                if config.strict:
                    raise AssertionError(note)

    if oracle is not None:
        check(0.0)

    tick = 0
    for record in trace:
        if oracle is not None:
            oracle.apply(record.stream_id, record.value)
        coordinator.sources[record.stream_id].apply_value(
            record.value, record.time
        )
        if oracle is not None:
            tick += 1
            if tick % config.check_every == 0:
                check(record.time)

    result.ledger = coordinator.ledger.snapshot()
    result.shared_updates = coordinator.shared_updates
    result.logical_deliveries = coordinator.logical_deliveries
    result.answers = {
        query_id: coordinator.answer(query_id) for query_id in queries
    }
    return result


def _evaluate(
    protocol: FilterProtocol,
    oracle: Oracle,
    query: EntityQuery,
    tolerance: Tolerance,
) -> str | None:
    answer = set(protocol.answer)
    if isinstance(tolerance, RankTolerance):
        assert isinstance(query, RankBasedQuery)
        return tolerance.violation(answer, query, oracle.values)
    true_set = oracle.true_answer(query)
    if isinstance(tolerance, FractionTolerance):
        return tolerance.violation(answer, true_set)
    if answer != true_set:
        return (
            f"exact answer required: {len(answer - true_set)} spurious, "
            f"{len(true_set - answer)} missing"
        )
    return None
