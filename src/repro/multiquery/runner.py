"""Replay a trace against several standing queries at once.

Assembly and replay are the runtime kernel's
:class:`~repro.runtime.session.ExecutionSession` (the multi-query
coordinator is the session host); with checking disabled the batched
fast path pre-scans records against every query's slot bounds at once.
:func:`execute_multi_query` is the mechanism
:meth:`repro.api.Engine.run_queries` compiles onto; the old
:func:`run_multi_query` name survives as a deprecation shim returning
identical results.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.correctness.oracle import Oracle
from repro.harness.config import RunConfig
from repro.network.accounting import LedgerSnapshot
from repro.protocols.base import FilterProtocol
from repro.queries.base import EntityQuery, RankBasedQuery
from repro.runtime.session import ExecutionSession
from repro.streams.trace import StreamTrace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance

Tolerance = RankTolerance | FractionTolerance | None


@dataclass
class MultiQueryResult:
    """Outcome of a shared multi-query run."""

    ledger: LedgerSnapshot
    shared_updates: int
    logical_deliveries: int
    answers: dict[str, frozenset[int]]
    checks: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def maintenance_messages(self) -> int:
        return self.ledger.maintenance_total

    @property
    def tolerance_ok(self) -> bool:
        return not self.violations

    @property
    def sharing_factor(self) -> float:
        """Average queries served per physical update (>= 1)."""
        if self.shared_updates == 0:
            return 1.0
        return self.logical_deliveries / self.shared_updates


def run_multi_query(
    trace: StreamTrace,
    queries: dict[str, tuple[FilterProtocol, EntityQuery, Tolerance]],
    config: RunConfig | None = None,
) -> MultiQueryResult:
    """Deprecated: use :meth:`repro.api.Engine.run_queries`."""
    warnings.warn(
        "repro.multiquery.runner.run_multi_query is deprecated; use "
        "repro.api.Engine().run_queries({'q1': QuerySpec(...), ...}, "
        "Workload.from_trace(trace))",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute_multi_query(trace, queries, config=config)


def execute_multi_query(
    trace: StreamTrace,
    queries: dict[str, tuple[FilterProtocol, EntityQuery, Tolerance]],
    config: RunConfig | None = None,
) -> MultiQueryResult:
    """Run every registered query's protocol over one shared population.

    Parameters
    ----------
    trace:
        The shared workload.
    queries:
        ``query_id -> (protocol, query, tolerance)``.  The protocol is a
        normal single-query protocol instance; the query/tolerance pair
        is used for the optional correctness checking.
    config:
        ``check_every`` / ``strict`` as in the single-query runner.
    """
    config = config or RunConfig()
    session = ExecutionSession.for_multiquery(trace.initial_values)
    coordinator = session.host
    for query_id, (protocol, _, _) in queries.items():
        coordinator.register(query_id, protocol)

    oracle: Oracle | None = None
    if config.check_every > 0:
        oracle = Oracle(trace.initial_values)
        for _, (_, query, _) in queries.items():
            oracle.register_query(query)

    session.initialize(time=0.0)

    result = MultiQueryResult(
        ledger=session.snapshot(),
        shared_updates=0,
        logical_deliveries=0,
        answers={},
    )

    def check(time: float) -> None:
        assert oracle is not None
        result.checks += 1
        for query_id, (protocol, query, tolerance) in queries.items():
            reason = _evaluate(protocol, oracle, query, tolerance)
            if reason is not None:
                note = f"t={time} [{query_id}]: {reason}"
                if len(result.violations) < 100:
                    result.violations.append(note)
                if config.strict:
                    raise AssertionError(note)

    oracle_apply = None
    after_apply = None
    if oracle is not None:
        check(0.0)
        oracle_apply = oracle.apply
        tick = 0

        def after_apply(time: float) -> None:
            nonlocal tick
            tick += 1
            if tick % config.check_every == 0:
                check(time)

    session.replay_trace(
        trace,
        oracle_apply=oracle_apply,
        after_apply=after_apply,
        mode=config.replay_mode,
        batch_size=config.batch_size,
        min_chunk=config.min_chunk,
    )

    result.ledger = session.snapshot()
    result.shared_updates = coordinator.shared_updates
    result.logical_deliveries = coordinator.logical_deliveries
    result.answers = {
        query_id: coordinator.answer(query_id) for query_id in queries
    }
    return result


def _evaluate(
    protocol: FilterProtocol,
    oracle: Oracle,
    query: EntityQuery,
    tolerance: Tolerance,
) -> str | None:
    answer = set(protocol.answer)
    if isinstance(tolerance, RankTolerance):
        assert isinstance(query, RankBasedQuery)
        return tolerance.violation(answer, query, oracle.values)
    true_set = oracle.true_answer(query)
    if isinstance(tolerance, FractionTolerance):
        return tolerance.violation(answer, true_set)
    if answer != true_set:
        return (
            f"exact answer required: {len(answer - true_set)} spurious, "
            f"{len(true_set - answer)} missing"
        )
    return None
