"""Sources carrying one filter slot per standing query.

On the runtime kernel this stack is :class:`repro.runtime.membership.
SlottedMembership` with the coordinator as transport: a value change
produces at most one physical update — sent iff at least one
non-silenced slot's membership flips — tagged with the set of flipped
query ids so the coordinator can forward it precisely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.membership import REPORT, SlottedMembership
from repro.runtime.source import FilteredSource
from repro.streams.filters import FilterConstraint

if TYPE_CHECKING:
    from repro.multiquery.coordinator import MultiQueryCoordinator


class MultiQuerySource(FilteredSource):
    """A stream source shared by several standing queries.

    Each query owns a *slot*: the constraint it deployed plus the
    membership the query's server-side protocol believes.  With no slots
    installed at all the source behaves like a bare stream and every
    query is notified.
    """

    def __init__(
        self,
        stream_id: int,
        initial_value: float,
        coordinator: "MultiQueryCoordinator",
    ) -> None:
        super().__init__(stream_id, initial_value, SlottedMembership())
        self.coordinator = coordinator

    def _coerce(self, payload) -> float:
        return float(payload)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def apply_value(self, value: float, time: float) -> None:
        """Install a new value; send one shared update if any slot flips."""
        self.apply(value, time)

    def _emit(self, time: float, tags) -> None:
        # REPORT means "no filters at all": notify every query (None).
        flipped = None if tags is REPORT else tags
        self.coordinator.receive_update(
            self.stream_id, self.value, time, flipped=flipped
        )

    # ------------------------------------------------------------------
    # Control plane (invoked by the coordinator)
    # ------------------------------------------------------------------
    def install(
        self,
        query_id: str,
        constraint: FilterConstraint,
        assumed_inside: bool | None,
        time: float,
    ) -> None:
        """Install *constraint* into this source's slot for *query_id*.

        Mirrors the single-query self-correction rule: a stale belief
        triggers one update (physically shared like any other).
        """
        if self.membership.install_slot(
            query_id, constraint, assumed_inside, self.value
        ):
            self._emit(time, [query_id])

    def probe(self, query_id: str) -> float:
        """Answer a probe for *query_id*; resync that query's slot."""
        self.membership.resync_slot(query_id, self.value)
        return self.value

    def slot(self, query_id: str) -> FilterConstraint | None:
        """The constraint currently installed for *query_id*."""
        return self.membership.slot(query_id)

    # ------------------------------------------------------------------
    # Legacy aliases (pre-kernel attribute names)
    # ------------------------------------------------------------------
    @property
    def _constraints(self) -> dict[str, FilterConstraint]:
        return self.membership.constraints

    @property
    def _reported_inside(self) -> dict[str, bool]:
        return self.membership.reported_inside
