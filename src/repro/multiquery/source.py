"""Sources carrying one filter slot per standing query."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.streams.filters import FilterConstraint

if TYPE_CHECKING:
    from repro.multiquery.coordinator import MultiQueryCoordinator


class MultiQuerySource:
    """A stream source shared by several standing queries.

    Each query owns a *slot*: the constraint it deployed plus the
    membership the query's server-side protocol believes.  A value change
    produces at most one physical update — sent iff at least one
    non-silenced slot's membership flips — tagged with the set of flipped
    query ids so the coordinator can forward it precisely.
    """

    def __init__(
        self,
        stream_id: int,
        initial_value: float,
        coordinator: "MultiQueryCoordinator",
    ) -> None:
        self.stream_id = stream_id
        self.value = float(initial_value)
        self.coordinator = coordinator
        self._constraints: dict[str, FilterConstraint] = {}
        self._reported_inside: dict[str, bool] = {}

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def apply_value(self, value: float, time: float) -> None:
        """Install a new value; send one shared update if any slot flips."""
        self.value = float(value)
        if not self._constraints:
            # No filters installed at all: behave like a bare stream.
            self.coordinator.receive_update(
                self.stream_id, self.value, time, flipped=None
            )
            return
        flipped = []
        for query_id, constraint in self._constraints.items():
            if constraint.is_silencing:
                continue
            inside = constraint.contains(self.value)
            if inside != self._reported_inside[query_id]:
                self._reported_inside[query_id] = inside
                flipped.append(query_id)
        if flipped:
            self.coordinator.receive_update(
                self.stream_id, self.value, time, flipped=flipped
            )

    # ------------------------------------------------------------------
    # Control plane (invoked by the coordinator)
    # ------------------------------------------------------------------
    def install(
        self,
        query_id: str,
        constraint: FilterConstraint,
        assumed_inside: bool | None,
        time: float,
    ) -> None:
        """Install *constraint* into this source's slot for *query_id*.

        Mirrors the single-query self-correction rule: a stale belief
        triggers one update (physically shared like any other).
        """
        self._constraints[query_id] = constraint
        if constraint.is_silencing:
            self._reported_inside[query_id] = constraint.contains(self.value)
            return
        actual = constraint.contains(self.value)
        if assumed_inside is None:
            self._reported_inside[query_id] = actual
            return
        self._reported_inside[query_id] = bool(assumed_inside)
        if actual != self._reported_inside[query_id]:
            self._reported_inside[query_id] = actual
            self.coordinator.receive_update(
                self.stream_id, self.value, time, flipped=[query_id]
            )

    def probe(self, query_id: str) -> float:
        """Answer a probe for *query_id*; resync that query's slot."""
        constraint = self._constraints.get(query_id)
        if constraint is not None:
            self._reported_inside[query_id] = constraint.contains(self.value)
        return self.value

    def slot(self, query_id: str) -> FilterConstraint | None:
        """The constraint currently installed for *query_id*."""
        return self._constraints.get(query_id)
