"""The multi-query coordinator and the per-query server facade.

:class:`QueryContext` exposes the exact control-plane API of
:class:`repro.server.server.Server` (``probe``, ``probe_all``,
``deploy``, ``broadcast``, ``stream_ids``, ``n_streams``, ``now``), so
the single-query protocols run against it *unmodified*.  The
:class:`MultiQueryCoordinator` owns the shared sources and the ledger:

* a physical uplink update is charged **once** however many queries it
  serves;
* probes and constraint deployments are charged per query (they are
  genuinely per-query payloads);
* updates are forwarded only to the protocols whose slot flipped, so
  each protocol sees its solo message sequence and its correctness
  argument is untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.network.accounting import MessageLedger
from repro.network.messages import MessageKind
from repro.protocols.base import FilterProtocol
from repro.runtime.dispatch import DeferredDeliveryMixin
from repro.state.table import StreamStateTable

if TYPE_CHECKING:
    from repro.multiquery.source import MultiQuerySource


class QueryContext:
    """A Server look-alike scoped to one standing query."""

    def __init__(self, query_id: str, coordinator: "MultiQueryCoordinator") -> None:
        self.query_id = query_id
        self._coordinator = coordinator

    @property
    def now(self) -> float:
        return self._coordinator.now

    @property
    def state(self) -> StreamStateTable:
        """This query's columnar state table (Server-compatible)."""
        return self._coordinator.state_for(self.query_id)

    def rank_view(self, distance_array):
        """An incremental rank order over :attr:`state` (see
        :meth:`repro.server.server.Server.rank_view`)."""
        from repro.state.rank import RankView

        return RankView(self.state, distance_array)

    @property
    def stream_ids(self) -> list[int]:
        return list(range(len(self._coordinator.sources)))

    @property
    def n_streams(self) -> int:
        return len(self._coordinator.sources)

    def probe(self, stream_id: int) -> float:
        return self._coordinator.probe(self.query_id, stream_id)

    def probe_all(self, stream_ids: list[int] | None = None) -> dict[int, float]:
        targets = self.stream_ids if stream_ids is None else stream_ids
        return {stream_id: self.probe(stream_id) for stream_id in targets}

    def deploy(
        self,
        stream_id: int,
        lower: float,
        upper: float,
        assumed_inside: bool | None = None,
    ) -> None:
        self._coordinator.deploy(
            self.query_id, stream_id, lower, upper, assumed_inside
        )

    def broadcast(
        self,
        lower: float,
        upper: float,
        assumed_inside: dict[int, bool] | None = None,
    ) -> None:
        for stream_id in self.stream_ids:
            belief = None
            if assumed_inside is not None:
                belief = assumed_inside.get(stream_id)
            self.deploy(stream_id, lower, upper, assumed_inside=belief)


class MultiQueryCoordinator(DeferredDeliveryMixin):
    """Hosts several protocols over one shared source population."""

    def __init__(self, ledger: MessageLedger | None = None) -> None:
        self.ledger = ledger or MessageLedger()
        self.sources: list["MultiQuerySource"] = []
        self._protocols: dict[str, FilterProtocol] = {}
        self._contexts: dict[str, QueryContext] = {}
        #: One columnar state table per standing query.  The dict object
        #: is shared live with every source's slotted membership (slot
        #: write-through) and with the replay pre-scan.
        self.state_tables: dict[str, StreamStateTable] = {}
        self.now = 0.0
        self._init_delivery()
        #: Physical uplink updates (each possibly serving several queries).
        self.shared_updates = 0
        #: Query deliveries those updates fanned out to.
        self.logical_deliveries = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def attach_sources(self, initial_values) -> None:
        from repro.multiquery.source import MultiQuerySource

        self.sources = [
            MultiQuerySource(stream_id, value, self)
            for stream_id, value in enumerate(initial_values)
        ]
        for source in self.sources:
            source.membership.bind_slot_states(
                self.state_tables, source.stream_id
            )

    def state_for(self, query_id: str) -> StreamStateTable:
        """The state table of one query (created on first access)."""
        table = self.state_tables.get(query_id)
        if table is None:
            table = StreamStateTable(len(self.sources))
            self.state_tables[query_id] = table
        return table

    def register(self, query_id: str, protocol: FilterProtocol) -> QueryContext:
        """Add a standing query; returns its server facade."""
        if query_id in self._protocols:
            raise ValueError(f"duplicate query id {query_id!r}")
        self._protocols[query_id] = protocol
        context = QueryContext(query_id, self)
        self._contexts[query_id] = context
        self.state_for(query_id)
        return context

    def initialize_all(self, time: float = 0.0) -> None:
        """Run every protocol's initialization phase."""
        self.now = time
        self._guarded_call(self._initialize_protocols)

    def _initialize_protocols(self) -> None:
        for query_id, protocol in self._protocols.items():
            protocol.initialize(self._contexts[query_id])

    # ------------------------------------------------------------------
    # Control plane (invoked via QueryContext)
    # ------------------------------------------------------------------
    def probe(self, query_id: str, stream_id: int) -> float:
        self.ledger.record_kind(MessageKind.PROBE_REQUEST)
        value = self.sources[stream_id].probe(query_id)
        self.ledger.record_kind(MessageKind.PROBE_REPLY)
        self.state_for(query_id).record_report(stream_id, value, self.now)
        return value

    def deploy(
        self,
        query_id: str,
        stream_id: int,
        lower: float,
        upper: float,
        assumed_inside: bool | None,
    ) -> None:
        from repro.streams.filters import FilterConstraint

        self.ledger.record_kind(MessageKind.CONSTRAINT)
        self.state_for(query_id).record_deploy(stream_id, lower, upper)
        self.sources[stream_id].install(
            query_id,
            FilterConstraint(lower, upper),
            assumed_inside,
            self.now,
        )

    # ------------------------------------------------------------------
    # Data plane (invoked by sources)
    # ------------------------------------------------------------------
    def receive_update(
        self,
        stream_id: int,
        value: float,
        time: float,
        flipped: list[str] | None,
    ) -> None:
        """One physical update; forward to the flipped queries only.

        ``flipped=None`` means the source carries no filters at all, so
        every query is notified (the no-filter baseline).
        """
        self.ledger.record_kind(MessageKind.UPDATE)
        self.shared_updates += 1
        self.now = max(self.now, time)
        self._deliver((stream_id, value, time, flipped))

    def _handle_delivery(
        self, item: tuple[int, float, float, list[str] | None]
    ) -> None:
        self._dispatch(*item)

    def _dispatch(
        self,
        stream_id: int,
        value: float,
        time: float,
        flipped: list[str] | None,
    ) -> None:
        targets = list(self._protocols) if flipped is None else flipped
        for query_id in targets:
            protocol = self._protocols.get(query_id)
            if protocol is None:  # pragma: no cover - defensive
                continue
            self.logical_deliveries += 1
            # Refresh exactly the forwarded queries' value planes: each
            # protocol's knowledge stays identical to its solo run.
            self.state_for(query_id).record_report(stream_id, value, time)
            protocol.on_update(
                self._contexts[query_id], stream_id, value, time
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def answer(self, query_id: str) -> frozenset[int]:
        return self._protocols[query_id].answer

    @property
    def query_ids(self) -> list[str]:
        return list(self._protocols)
