"""Figure 10 — FT-NRP: effect of ``eps+``/``eps-`` (TCP data).

A range query [400, 600] over per-subnet bytes-sent values; both
tolerances swept over a grid.  The paper plots a surface; we report one
curve per ``eps-`` value with ``eps+`` on the x-axis.

Expected shape: messages decrease monotonically (modulo noise) in both
tolerances; the (0, 0) corner equals ZT-NRP's cost.
"""

from __future__ import annotations

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.experiments.base import FigureResult, Profile
from repro.queries.range_query import RangeQuery
from repro.tolerance.fraction_tolerance import FractionTolerance

#: The paper's range query for the TCP experiments.
TCP_RANGE = (400.0, 600.0)

_PROFILES = {
    Profile.SMOKE: {
        "n_subnets": 120,
        "n_connections": 2_500,
        "days": 5.0,
        "eps_values": [0.0, 0.2, 0.4],
    },
    Profile.DEFAULT: {
        "n_subnets": 800,
        "n_connections": 12_000,
        "days": 30.0,
        "eps_values": [0.0, 0.1, 0.2, 0.3, 0.4],
    },
    Profile.FULL: {
        "n_subnets": 800,
        "n_connections": 606_497,
        "days": 30.0,
        "eps_values": [0.0, 0.1, 0.2, 0.3, 0.4, 0.49],
    },
    Profile.SCALE: {
        "n_subnets": 10_000,
        "n_connections": 150_000,
        "days": 30.0,
        "eps_values": [0.0, 0.2, 0.4],
    },
}


def run(
    profile: Profile | str = Profile.DEFAULT,
    seed: int = 0,
    replay_mode: str = "auto",
    deployment: Deployment | None = None,
) -> FigureResult:
    """Reproduce Figure 10: the eps+/eps- grid on TCP data."""
    profile = Profile.coerce(profile)
    params = _PROFILES[profile]
    deployment = deployment or Deployment.single(replay_mode=replay_mode)
    engine = Engine(deployment)
    workload = Workload.tcp(
        n_subnets=params["n_subnets"],
        n_connections=params["n_connections"],
        days=params["days"],
        seed=seed,
    )
    query = RangeQuery(*TCP_RANGE)
    eps_values = list(params["eps_values"])

    series: dict[str, list[int]] = {}
    for eps_minus in eps_values:
        curve = []
        for eps_plus in eps_values:
            report = engine.run(
                QuerySpec(
                    protocol="ft-nrp",
                    query=query,
                    tolerance=FractionTolerance(eps_plus, eps_minus),
                ),
                workload,
                label=f"e+={eps_plus},e-={eps_minus}",
            )
            curve.append(report.maintenance_messages)
        series[f"eps-={eps_minus}"] = curve

    return FigureResult(
        figure="figure10",
        title="FT-NRP: Effect of eps+/eps- (TCP)",
        x_name="eps+",
        x_values=eps_values,
        series=series,
        profile=profile,
        meta={
            "workload": workload.materialize().metadata,
            "range": TCP_RANGE,
            "seed": seed,
            "topology": deployment.describe(),
        },
    )
