"""Figure 11 — FT-NRP: scalability (TCP data).

One master TCP trace is generated for the largest population, then
restricted to each smaller stream count, so every system size replays a
strict subset of the same updates.  The eps+ = eps- = 0 curve is the
ZT-NRP cost.

Expected shape: cost grows with the number of streams for every
tolerance; higher tolerance gives larger absolute savings at larger n.
"""

from __future__ import annotations

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.experiments.base import FigureResult, Profile
from repro.queries.range_query import RangeQuery
from repro.tolerance.fraction_tolerance import FractionTolerance

TCP_RANGE = (400.0, 600.0)

_PROFILES = {
    Profile.SMOKE: {
        "stream_counts": [60, 120],
        "connections_per_stream": 20,
        "days": 5.0,
        "eps_values": [0.0, 0.3],
    },
    Profile.DEFAULT: {
        "stream_counts": [200, 600, 1000, 1400, 1800],
        "connections_per_stream": 18,
        "days": 30.0,
        "eps_values": [0.0, 0.2, 0.3, 0.4],
    },
    Profile.FULL: {
        "stream_counts": list(range(200, 2001, 200)),
        "connections_per_stream": 300,
        "days": 30.0,
        "eps_values": [0.0, 0.2, 0.3, 0.4, 0.49],
    },
    # The ROADMAP's larger-n sweep: n in {10k, 100k}.
    Profile.SCALE: {
        "stream_counts": [10_000, 100_000],
        "connections_per_stream": 10,
        "days": 30.0,
        "eps_values": [0.0, 0.3],
    },
}


def run(
    profile: Profile | str = Profile.DEFAULT,
    seed: int = 0,
    replay_mode: str = "auto",
    deployment: Deployment | None = None,
) -> FigureResult:
    """Reproduce Figure 11: message cost versus number of streams."""
    profile = Profile.coerce(profile)
    params = _PROFILES[profile]
    deployment = deployment or Deployment.single(replay_mode=replay_mode)
    engine = Engine(deployment)
    counts = list(params["stream_counts"])
    n_max = max(counts)
    master = Workload.tcp(
        n_subnets=n_max,
        n_connections=n_max * params["connections_per_stream"],
        days=params["days"],
        seed=seed,
    ).materialize()
    query = RangeQuery(*TCP_RANGE)

    series: dict[str, list[int]] = {}
    for eps in params["eps_values"]:
        curve = []
        for n in counts:
            workload = Workload.from_trace(master.restrict_streams(n))
            if eps == 0.0:
                spec = QuerySpec(protocol="zt-nrp", query=query)
            else:
                spec = QuerySpec(
                    protocol="ft-nrp",
                    query=query,
                    tolerance=FractionTolerance(eps, eps),
                )
            report = engine.run(spec, workload, label=f"n={n},eps={eps}")
            curve.append(report.maintenance_messages)
        series[f"eps+=eps-={eps}"] = curve

    return FigureResult(
        figure="figure11",
        title="FT-NRP: Scalability",
        x_name="n_streams",
        x_values=counts,
        series=series,
        profile=profile,
        meta={
            "workload": master.metadata,
            "range": TCP_RANGE,
            "seed": seed,
            "topology": deployment.describe(),
        },
    )
