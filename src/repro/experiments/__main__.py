"""Command-line entry point: ``python -m repro.experiments <figure>``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import Deployment
from repro.experiments.base import Profile
from repro.experiments.registry import REGISTRY, run_all


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's evaluation figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*REGISTRY, "all"],
        help="which figure to reproduce ('all' runs every one)",
    )
    parser.add_argument(
        "--profile",
        default=Profile.DEFAULT.value,
        choices=[p.value for p in Profile],
        help="workload scale (default: %(default)s)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master random seed"
    )
    parser.add_argument(
        "--replay",
        default="auto",
        choices=["auto", "event", "batch"],
        dest="replay_mode",
        help="replay path: batched fast path, per-event, or auto",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="with 'all': run the figures concurrently on all cores",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="run on a sharded topology with N shard servers "
        "(ledgers are identical to the single server; default: 1)",
    )
    args = parser.parse_args(argv)

    deployment = None
    if args.shards > 1:
        deployment = Deployment.sharded(
            args.shards, replay_mode=args.replay_mode
        )

    if args.experiment == "all":
        started = time.perf_counter()
        results = run_all(
            profile=args.profile,
            seed=args.seed,
            replay_mode=args.replay_mode,
            parallel=args.parallel,
            deployment=deployment,
        )
        for name, result in results.items():
            print(result.format())
            print()
        print(f"(total {time.perf_counter() - started:.1f}s)")
        return 0

    runner, _ = REGISTRY[args.experiment]
    started = time.perf_counter()
    kwargs = {"profile": args.profile, "seed": args.seed,
              "replay_mode": args.replay_mode}
    if deployment is not None:
        kwargs["deployment"] = deployment
    result = runner(**kwargs)
    print(result.format())
    print(f"(ran in {time.perf_counter() - started:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
