"""Registry of the reproducible figures.

Every runner is a pure function of ``(profile, seed, replay_mode,
deployment)``; passing ``deployment=Deployment.sharded(n)`` re-runs a
figure on the sharded topology (ledgers byte-identical to single-server
— the sharded coordinator's contract).
"""

from __future__ import annotations

from typing import Callable

from repro.api import Deployment
from repro.experiments import (
    figure01,
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
)
from repro.experiments.base import FigureResult, Profile

#: Experiment id -> (runner, paper caption).
REGISTRY: dict[str, tuple[Callable[..., FigureResult], str]] = {
    "figure01": (
        figure01.run,
        "Motivation: value-based vs rank-based tolerance",
    ),
    "figure09": (figure09.run, "RTP: Effect of r (TCP)"),
    "figure10": (figure10.run, "FT-NRP: Effect of eps+/eps- (TCP)"),
    "figure11": (figure11.run, "FT-NRP: Scalability (TCP)"),
    "figure12": (figure12.run, "FT-NRP: Effect of eps+/eps- (synthetic)"),
    "figure13": (figure13.run, "FT-NRP: Data fluctuation (synthetic)"),
    "figure14": (figure14.run, "FT-NRP: Selection heuristics (synthetic)"),
    "figure15": (figure15.run, "ZT-RP/FT-RP: Effect of eps+/eps- (synthetic)"),
}


def list_experiments() -> list[str]:
    """All experiment ids, in paper order."""
    return list(REGISTRY)


def get_experiment(name: str) -> Callable[..., FigureResult]:
    """The runner for *name*; raises ``KeyError`` with suggestions."""
    if name not in REGISTRY:
        known = ", ".join(REGISTRY)
        raise KeyError(f"unknown experiment {name!r}; choose one of: {known}")
    return REGISTRY[name][0]


def run_all(
    profile: Profile | str = Profile.DEFAULT,
    seed: int = 0,
    replay_mode: str = "auto",
    parallel: bool = False,
    max_workers: int | None = None,
    deployment: Deployment | None = None,
) -> dict[str, FigureResult]:
    """Run every experiment; returns id -> result.

    With ``parallel=True`` the figures run concurrently on a process
    pool (each experiment is already a deterministic, self-contained
    function), in registry order.  *deployment* overrides
    ``replay_mode`` and selects the topology for every figure.
    """
    kwargs = {"profile": profile, "seed": seed, "replay_mode": replay_mode}
    if deployment is not None:
        kwargs["deployment"] = deployment
    if not parallel:
        return {
            name: runner(**kwargs) for name, (runner, _) in REGISTRY.items()
        }
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = {
            name: pool.submit(runner, **kwargs)
            for name, (runner, _) in REGISTRY.items()
        }
        return {name: future.result() for name, future in futures.items()}
