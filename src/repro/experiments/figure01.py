"""Figure 1 (motivation) — value-based vs rank-based tolerance, quantified.

Figure 1 of the paper is a conceptual sketch: for a maximum/top-k query,
a numeric value tolerance ``eps`` that is too small saves nothing, while
one that is too large lets the returned stream "rank far from the true
maximum".  Rank-based tolerance expresses the constraint directly.

This experiment turns the sketch into numbers.  On the synthetic
workload it runs a top-k query under

* the value-window scheme (reference [17]) for a sweep of ``eps``,
  measuring both messages *and* the worst true rank the answer reached;
* RTP with a rank tolerance ``r``, whose worst rank is bounded by
  ``k + r`` by construction.

Expected shape: the value scheme's message count falls with ``eps``
while its worst observed rank climbs without bound; no single ``eps``
matches RTP's (cost, guaranteed-rank) point.
"""

from __future__ import annotations

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.experiments.base import FigureResult, Profile
from repro.queries.knn import TopKQuery
from repro.tolerance.rank_tolerance import RankTolerance

_PROFILES = {
    Profile.SMOKE: {
        "n_streams": 100,
        "horizon": 150.0,
        "k": 5,
        "r": 3,
        "eps_values": [5.0, 50.0, 400.0],
        "check_every": 5,
    },
    Profile.DEFAULT: {
        "n_streams": 400,
        "horizon": 300.0,
        "k": 10,
        "r": 5,
        "eps_values": [2.0, 10.0, 50.0, 150.0, 400.0, 800.0],
        "check_every": 10,
    },
    Profile.FULL: {
        "n_streams": 5000,
        "horizon": 2000.0,
        "k": 10,
        "r": 5,
        "eps_values": [2.0, 10.0, 50.0, 150.0, 400.0, 800.0],
        "check_every": 20,
    },
    Profile.SCALE: {
        "n_streams": 10_000,
        "horizon": 300.0,
        "k": 10,
        "r": 5,
        "eps_values": [2.0, 10.0, 50.0, 150.0, 400.0, 800.0],
        "check_every": 50,
    },
}


def run(
    profile: Profile | str = Profile.DEFAULT,
    seed: int = 0,
    replay_mode: str = "auto",
    deployment: Deployment | None = None,
) -> FigureResult:
    """Quantify Figure 1: cost and rank quality across eps, vs. RTP."""
    profile = Profile.coerce(profile)
    params = _PROFILES[profile]
    deployment = deployment or Deployment.single(replay_mode=replay_mode)
    engine = Engine(deployment)
    workload = Workload.synthetic(
        n_streams=params["n_streams"],
        horizon=params["horizon"],
        seed=seed,
    )
    k, r = params["k"], params["r"]

    eps_values = list(params["eps_values"])
    messages, worst_ranks = [], []
    checked = deployment.with_checking(params["check_every"])
    for eps in eps_values:
        report = engine.run(
            QuerySpec(
                protocol="value-eps",
                query=TopKQuery(k=k),
                options={"eps": eps},
            ),
            workload,
            checked,
            label=f"eps={eps}",
        )
        messages.append(report.maintenance_messages)
        worst_ranks.append(report.extras["worst_rank"])

    tolerance = RankTolerance(k=k, r=r)
    rtp = engine.run(
        QuerySpec(protocol="rtp", query=TopKQuery(k=k), tolerance=tolerance),
        workload,
    )

    return FigureResult(
        figure="figure01",
        title="Motivation: value-based vs rank-based tolerance (top-k)",
        x_name="eps (value)",
        x_values=eps_values,
        series={
            "value-eps messages": messages,
            "value-eps worst rank": worst_ranks,
            f"RTP(r={r}) messages": [rtp.maintenance_messages] * len(eps_values),
            f"RTP(r={r}) rank bound": [k + r] * len(eps_values),
        },
        profile=profile,
        meta={
            "k": k,
            "r": r,
            "workload": workload.materialize().metadata,
            "seed": seed,
            "topology": deployment.describe(),
        },
    )
