"""Figure 1 (motivation) — value-based vs rank-based tolerance, quantified.

Figure 1 of the paper is a conceptual sketch: for a maximum/top-k query,
a numeric value tolerance ``eps`` that is too small saves nothing, while
one that is too large lets the returned stream "rank far from the true
maximum".  Rank-based tolerance expresses the constraint directly.

This experiment turns the sketch into numbers.  On the synthetic
workload it runs a top-k query under

* the value-window scheme (reference [17]) for a sweep of ``eps``,
  measuring both messages *and* the worst true rank the answer reached;
* RTP with a rank tolerance ``r``, whose worst rank is bounded by
  ``k + r`` by construction.

Expected shape: the value scheme's message count falls with ``eps``
while its worst observed rank climbs without bound; no single ``eps``
matches RTP's (cost, guaranteed-rank) point.
"""

from __future__ import annotations

from repro.experiments.base import FigureResult, Profile
from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.protocols.rtp import RankToleranceProtocol
from repro.queries.knn import TopKQuery
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.tolerance.rank_tolerance import RankTolerance
from repro.valuebased.protocol import run_value_tolerance

_PROFILES = {
    Profile.SMOKE: {
        "n_streams": 100,
        "horizon": 150.0,
        "k": 5,
        "r": 3,
        "eps_values": [5.0, 50.0, 400.0],
        "check_every": 5,
    },
    Profile.DEFAULT: {
        "n_streams": 400,
        "horizon": 300.0,
        "k": 10,
        "r": 5,
        "eps_values": [2.0, 10.0, 50.0, 150.0, 400.0, 800.0],
        "check_every": 10,
    },
    Profile.FULL: {
        "n_streams": 5000,
        "horizon": 2000.0,
        "k": 10,
        "r": 5,
        "eps_values": [2.0, 10.0, 50.0, 150.0, 400.0, 800.0],
        "check_every": 20,
    },
}


def run(
    profile: Profile | str = Profile.DEFAULT,
    seed: int = 0,
    replay_mode: str = "auto",
) -> FigureResult:
    """Quantify Figure 1: cost and rank quality across eps, vs. RTP."""
    profile = Profile.coerce(profile)
    params = _PROFILES[profile]
    trace = generate_synthetic_trace(
        SyntheticConfig(
            n_streams=params["n_streams"],
            horizon=params["horizon"],
            seed=seed,
        )
    )
    k, r = params["k"], params["r"]
    query_factory = lambda: TopKQuery(k=k)

    eps_values = list(params["eps_values"])
    messages, worst_ranks = [], []
    for eps in eps_values:
        result = run_value_tolerance(
            trace,
            query_factory(),
            eps,
            check_every=params["check_every"],
            replay_mode=replay_mode,
        )
        messages.append(result.maintenance_messages)
        worst_ranks.append(result.worst_rank)

    tolerance = RankTolerance(k=k, r=r)
    rtp = run_protocol(
        trace,
        RankToleranceProtocol(query_factory(), tolerance),
        tolerance=tolerance,
        config=RunConfig(replay_mode=replay_mode),
    )

    return FigureResult(
        figure="figure01",
        title="Motivation: value-based vs rank-based tolerance (top-k)",
        x_name="eps (value)",
        x_values=eps_values,
        series={
            "value-eps messages": messages,
            "value-eps worst rank": worst_ranks,
            f"RTP(r={r}) messages": [rtp.maintenance_messages] * len(eps_values),
            f"RTP(r={r}) rank bound": [k + r] * len(eps_values),
        },
        profile=profile,
        meta={"k": k, "r": r, "workload": trace.metadata, "seed": seed},
    )
