"""Figure 13 — FT-NRP: data fluctuation (synthetic data).

Sweeps the Gaussian step deviation sigma; one curve per sigma with the
common tolerance ``eps+ = eps-`` on the x-axis.

Expected shape: more fluctuation, more boundary crossings, more messages
at every tolerance level; curves are vertically ordered by sigma.
"""

from __future__ import annotations

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.experiments.base import FigureResult, Profile
from repro.queries.range_query import RangeQuery
from repro.tolerance.fraction_tolerance import FractionTolerance

SYNTHETIC_RANGE = (400.0, 600.0)

_PROFILES = {
    Profile.SMOKE: {
        "n_streams": 150,
        "horizon": 150.0,
        "sigma_values": [20.0, 80.0],
        "eps_values": [0.0, 0.3],
    },
    Profile.DEFAULT: {
        "n_streams": 800,
        "horizon": 300.0,
        "sigma_values": [20.0, 40.0, 60.0, 80.0, 100.0],
        "eps_values": [0.0, 0.1, 0.2, 0.3, 0.4],
    },
    Profile.FULL: {
        "n_streams": 5000,
        "horizon": 2000.0,
        "sigma_values": [20.0, 40.0, 60.0, 80.0, 100.0],
        "eps_values": [0.0, 0.1, 0.2, 0.3, 0.4, 0.49],
    },
    Profile.SCALE: {
        "n_streams": 10_000,
        "horizon": 300.0,
        "sigma_values": [20.0, 80.0],
        "eps_values": [0.0, 0.3],
    },
}


def run(
    profile: Profile | str = Profile.DEFAULT,
    seed: int = 0,
    replay_mode: str = "auto",
    deployment: Deployment | None = None,
) -> FigureResult:
    """Reproduce Figure 13: message cost versus data fluctuation."""
    profile = Profile.coerce(profile)
    params = _PROFILES[profile]
    deployment = deployment or Deployment.single(replay_mode=replay_mode)
    engine = Engine(deployment)
    query = RangeQuery(*SYNTHETIC_RANGE)
    eps_values = list(params["eps_values"])

    series: dict[str, list[int]] = {}
    for sigma in params["sigma_values"]:
        workload = Workload.synthetic(
            n_streams=params["n_streams"],
            horizon=params["horizon"],
            sigma=sigma,
            seed=seed,
        )
        curve = []
        for eps in eps_values:
            if eps == 0.0:
                spec = QuerySpec(protocol="zt-nrp", query=query)
            else:
                spec = QuerySpec(
                    protocol="ft-nrp",
                    query=query,
                    tolerance=FractionTolerance(eps, eps),
                )
            report = engine.run(
                spec, workload, label=f"sigma={sigma},eps={eps}"
            )
            curve.append(report.maintenance_messages)
        series[f"sigma={sigma:g}"] = curve

    return FigureResult(
        figure="figure13",
        title="FT-NRP: Data fluctuation",
        x_name="eps+/eps-",
        x_values=eps_values,
        series=series,
        profile=profile,
        meta={
            "n_streams": params["n_streams"],
            "horizon": params["horizon"],
            "range": SYNTHETIC_RANGE,
            "seed": seed,
            "topology": deployment.describe(),
        },
    )
