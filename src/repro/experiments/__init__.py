"""Reproductions of the paper's evaluation figures (Section 6).

One module per figure; each exposes ``run(profile=..., seed=...)``
returning a :class:`~repro.experiments.base.FigureResult` whose series are
the curves the paper plots.  ``profile`` selects workload scale:

* ``"smoke"`` — seconds; used by the integration tests;
* ``"default"`` — tens of seconds; used by the benchmark harness;
* ``"full"`` — approximates the paper's scale (5000 synthetic streams,
  ~600k TCP connections); minutes to hours in pure Python.

Run any figure from the command line::

    python -m repro.experiments figure09
    python -m repro.experiments all --profile smoke
"""

from repro.experiments.base import FigureResult, Profile
from repro.experiments.registry import REGISTRY, get_experiment, list_experiments

__all__ = [
    "FigureResult",
    "Profile",
    "REGISTRY",
    "get_experiment",
    "list_experiments",
]
