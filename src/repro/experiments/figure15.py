"""Figure 15 — ZT-RP / FT-RP: effect of ``eps+``/``eps-`` (synthetic data).

A k-NN query around a query point for k in {20, 60, 100}; the x-axis
sweeps the common tolerance, with eps = 0 produced by ZT-RP (to which
FT-RP degenerates).  The paper plots the y-axis in log scale because the
drop from zero tolerance is orders of magnitude.

Expected shape: a steep drop from eps = 0 to small positive tolerance for
the larger k; at k = 20 with small tolerance the protocol buys little
(few silencers, recomputations still frequent) — the paper's "FT-RP is
not suitable in this situation" regime.
"""

from __future__ import annotations

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.experiments.base import FigureResult, Profile
from repro.queries.knn import KnnQuery
from repro.tolerance.fraction_tolerance import FractionTolerance

#: Query point of the k-NN query (centre of the initial value range).
QUERY_POINT = 500.0

_PROFILES = {
    Profile.SMOKE: {
        "n_streams": 100,
        "horizon": 100.0,
        "k_values": [5, 10],
        "eps_values": [0.0, 0.2, 0.4],
    },
    Profile.DEFAULT: {
        "n_streams": 300,
        "horizon": 200.0,
        "k_values": [20, 60, 100],
        "eps_values": [0.0, 0.1, 0.2, 0.3, 0.4],
    },
    Profile.FULL: {
        "n_streams": 5000,
        "horizon": 2000.0,
        "k_values": [20, 60, 100],
        "eps_values": [0.0, 0.1, 0.2, 0.3, 0.4, 0.49],
    },
    Profile.SCALE: {
        "n_streams": 10_000,
        "horizon": 200.0,
        "k_values": [20, 100],
        "eps_values": [0.0, 0.2, 0.4],
    },
}


def run(
    profile: Profile | str = Profile.DEFAULT,
    seed: int = 0,
    replay_mode: str = "auto",
    deployment: Deployment | None = None,
) -> FigureResult:
    """Reproduce Figure 15: ZT-RP (eps=0) and FT-RP over the eps sweep."""
    profile = Profile.coerce(profile)
    params = _PROFILES[profile]
    deployment = deployment or Deployment.single(replay_mode=replay_mode)
    engine = Engine(deployment)
    workload = Workload.synthetic(
        n_streams=params["n_streams"],
        horizon=params["horizon"],
        seed=seed,
    )
    eps_values = list(params["eps_values"])

    series: dict[str, list[int]] = {}
    for k in params["k_values"]:
        query = KnnQuery(QUERY_POINT, k)
        curve = []
        for eps in eps_values:
            if eps == 0.0:
                spec = QuerySpec(protocol="zt-rp", query=query)
            else:
                spec = QuerySpec(
                    protocol="ft-rp",
                    query=query,
                    tolerance=FractionTolerance(eps, eps),
                )
            report = engine.run(spec, workload, label=f"k={k},eps={eps}")
            curve.append(report.maintenance_messages)
        series[f"k={k}"] = curve

    return FigureResult(
        figure="figure15",
        title="ZT-RP/FT-RP: Effect of eps+/eps-",
        x_name="eps+/eps-",
        x_values=eps_values,
        series=series,
        profile=profile,
        meta={
            "workload": workload.materialize().metadata,
            "query_point": QUERY_POINT,
            "seed": seed,
            "topology": deployment.describe(),
        },
    )
