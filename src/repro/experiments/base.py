"""Shared experiment scaffolding: profiles and figure results."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.harness.reporting import format_series


class Profile(str, enum.Enum):
    """Workload scale of an experiment run.

    ``SCALE`` is the ROADMAP's larger-n sweep tier: every figure defines
    a variant with n >= 10,000 streams (figure 11 sweeps n in {10k,
    100k}), sized for benchmarking the sharded deployment rather than
    for CI.
    """

    SMOKE = "smoke"
    DEFAULT = "default"
    FULL = "full"
    SCALE = "scale"

    @classmethod
    def coerce(cls, value: "Profile | str") -> "Profile":
        if isinstance(value, Profile):
            return value
        return cls(value.lower())


@dataclass
class FigureResult:
    """The reproduced data behind one paper figure.

    Attributes
    ----------
    figure:
        Identifier, e.g. ``"figure09"``.
    title:
        The paper's caption, e.g. ``"RTP: Effect of r"``.
    x_name, x_values:
        The shared x-axis of all curves.
    series:
        Curve name -> y values (message counts), aligned with x_values.
    profile:
        The workload scale that produced the data.
    meta:
        Workload parameters for provenance (seed, stream counts, ...).
    """

    figure: str
    title: str
    x_name: str
    x_values: Sequence[Any]
    series: dict[str, list[Any]]
    profile: Profile
    meta: dict = field(default_factory=dict)

    def format(self) -> str:
        """Render the figure as an aligned text table."""
        header = f"{self.figure} — {self.title} (profile={self.profile.value})"
        return format_series(
            self.x_name, self.x_values, self.series, title=header
        )

    def curve(self, name: str) -> list[Any]:
        """One named series, for assertions in tests/benches."""
        return list(self.series[name])
