"""Figure 14 — FT-NRP: silencer selection heuristics (synthetic data).

Compares random against boundary-nearest placement of the false-positive
and false-negative filters during initialization.

Expected shape: boundary-nearest at or below random everywhere, with the
gap widening as tolerance (and hence the number of silencers placed)
grows.
"""

from __future__ import annotations

from repro.experiments.base import FigureResult, Profile
from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.protocols.ft_nrp import FractionToleranceRangeProtocol
from repro.protocols.selection import BoundaryNearestSelection, RandomSelection
from repro.queries.range_query import RangeQuery
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.tolerance.fraction_tolerance import FractionTolerance

SYNTHETIC_RANGE = (400.0, 600.0)

_PROFILES = {
    Profile.SMOKE: {
        "n_streams": 200,
        "horizon": 150.0,
        "eps_values": [0.1, 0.4],
    },
    Profile.DEFAULT: {
        "n_streams": 1000,
        "horizon": 400.0,
        "eps_values": [0.0, 0.1, 0.2, 0.3, 0.4],
    },
    Profile.FULL: {
        "n_streams": 5000,
        "horizon": 2000.0,
        "eps_values": [0.0, 0.1, 0.2, 0.3, 0.4, 0.49],
    },
}


def run(
    profile: Profile | str = Profile.DEFAULT,
    seed: int = 0,
    replay_mode: str = "auto",
) -> FigureResult:
    """Reproduce Figure 14: random vs boundary-nearest selection."""
    profile = Profile.coerce(profile)
    params = _PROFILES[profile]
    trace = generate_synthetic_trace(
        SyntheticConfig(
            n_streams=params["n_streams"],
            horizon=params["horizon"],
            seed=seed,
        )
    )
    query = RangeQuery(*SYNTHETIC_RANGE)
    eps_values = list(params["eps_values"])

    heuristics = {
        "random": lambda: RandomSelection(seed=seed),
        "boundary-nearest": lambda: BoundaryNearestSelection(),
    }
    series: dict[str, list[int]] = {}
    for name, make_heuristic in heuristics.items():
        curve = []
        for eps in eps_values:
            tolerance = FractionTolerance(eps, eps)
            protocol = FractionToleranceRangeProtocol(
                query, tolerance, selection=make_heuristic()
            )
            result = run_protocol(
                trace,
                protocol,
                tolerance=tolerance,
                config=RunConfig(label=f"{name},eps={eps}", replay_mode=replay_mode),
            )
            curve.append(result.maintenance_messages)
        series[name] = curve

    return FigureResult(
        figure="figure14",
        title="FT-NRP: Selection heuristics",
        x_name="eps+/eps-",
        x_values=eps_values,
        series=series,
        profile=profile,
        meta={"workload": trace.metadata, "range": SYNTHETIC_RANGE, "seed": seed},
    )
