"""Figure 14 — FT-NRP: silencer selection heuristics (synthetic data).

Compares random against boundary-nearest placement of the false-positive
and false-negative filters during initialization.

Expected shape: boundary-nearest at or below random everywhere, with the
gap widening as tolerance (and hence the number of silencers placed)
grows.
"""

from __future__ import annotations

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.experiments.base import FigureResult, Profile
from repro.protocols.selection import BoundaryNearestSelection, RandomSelection
from repro.queries.range_query import RangeQuery
from repro.tolerance.fraction_tolerance import FractionTolerance

SYNTHETIC_RANGE = (400.0, 600.0)

_PROFILES = {
    Profile.SMOKE: {
        "n_streams": 200,
        "horizon": 150.0,
        "eps_values": [0.1, 0.4],
    },
    Profile.DEFAULT: {
        "n_streams": 1000,
        "horizon": 400.0,
        "eps_values": [0.0, 0.1, 0.2, 0.3, 0.4],
    },
    Profile.FULL: {
        "n_streams": 5000,
        "horizon": 2000.0,
        "eps_values": [0.0, 0.1, 0.2, 0.3, 0.4, 0.49],
    },
    Profile.SCALE: {
        "n_streams": 10_000,
        "horizon": 400.0,
        "eps_values": [0.1, 0.4],
    },
}


def run(
    profile: Profile | str = Profile.DEFAULT,
    seed: int = 0,
    replay_mode: str = "auto",
    deployment: Deployment | None = None,
) -> FigureResult:
    """Reproduce Figure 14: random vs boundary-nearest selection."""
    profile = Profile.coerce(profile)
    params = _PROFILES[profile]
    deployment = deployment or Deployment.single(replay_mode=replay_mode)
    engine = Engine(deployment)
    workload = Workload.synthetic(
        n_streams=params["n_streams"],
        horizon=params["horizon"],
        seed=seed,
    )
    query = RangeQuery(*SYNTHETIC_RANGE)
    eps_values = list(params["eps_values"])

    heuristics = {
        "random": lambda: RandomSelection(seed=seed),
        "boundary-nearest": lambda: BoundaryNearestSelection(),
    }
    series: dict[str, list[int]] = {}
    for name, make_heuristic in heuristics.items():
        curve = []
        for eps in eps_values:
            report = engine.run(
                QuerySpec(
                    protocol="ft-nrp",
                    query=query,
                    tolerance=FractionTolerance(eps, eps),
                    options={"selection": make_heuristic()},
                ),
                workload,
                label=f"{name},eps={eps}",
            )
            curve.append(report.maintenance_messages)
        series[name] = curve

    return FigureResult(
        figure="figure14",
        title="FT-NRP: Selection heuristics",
        x_name="eps+/eps-",
        x_values=eps_values,
        series=series,
        profile=profile,
        meta={
            "workload": workload.materialize().metadata,
            "range": SYNTHETIC_RANGE,
            "seed": seed,
            "topology": deployment.describe(),
        },
    )
