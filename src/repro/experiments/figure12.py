"""Figure 12 — FT-NRP: effect of ``eps+``/``eps-`` (synthetic data).

Same grid as Figure 10 but over the Section 6.2 synthetic model
(uniform initial values, exponential update times, Gaussian steps) with
the paper's range query [400, 600].
"""

from __future__ import annotations

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.experiments.base import FigureResult, Profile
from repro.queries.range_query import RangeQuery
from repro.tolerance.fraction_tolerance import FractionTolerance

SYNTHETIC_RANGE = (400.0, 600.0)

_PROFILES = {
    Profile.SMOKE: {
        "n_streams": 150,
        "horizon": 150.0,
        "eps_values": [0.0, 0.2, 0.4],
    },
    Profile.DEFAULT: {
        "n_streams": 1000,
        "horizon": 400.0,
        "eps_values": [0.0, 0.1, 0.2, 0.3, 0.4],
    },
    Profile.FULL: {
        "n_streams": 5000,
        "horizon": 2000.0,
        "eps_values": [0.0, 0.1, 0.2, 0.3, 0.4, 0.49],
    },
    Profile.SCALE: {
        "n_streams": 10_000,
        "horizon": 400.0,
        "eps_values": [0.0, 0.2, 0.4],
    },
}


def run(
    profile: Profile | str = Profile.DEFAULT,
    seed: int = 0,
    replay_mode: str = "auto",
    deployment: Deployment | None = None,
) -> FigureResult:
    """Reproduce Figure 12: the eps+/eps- grid on synthetic data."""
    profile = Profile.coerce(profile)
    params = _PROFILES[profile]
    deployment = deployment or Deployment.single(replay_mode=replay_mode)
    engine = Engine(deployment)
    workload = Workload.synthetic(
        n_streams=params["n_streams"],
        horizon=params["horizon"],
        seed=seed,
    )
    query = RangeQuery(*SYNTHETIC_RANGE)
    eps_values = list(params["eps_values"])

    series: dict[str, list[int]] = {}
    for eps_minus in eps_values:
        curve = []
        for eps_plus in eps_values:
            report = engine.run(
                QuerySpec(
                    protocol="ft-nrp",
                    query=query,
                    tolerance=FractionTolerance(eps_plus, eps_minus),
                ),
                workload,
                label=f"e+={eps_plus},e-={eps_minus}",
            )
            curve.append(report.maintenance_messages)
        series[f"eps-={eps_minus}"] = curve

    return FigureResult(
        figure="figure12",
        title="FT-NRP: Effect of eps+/eps- (synthetic)",
        x_name="eps+",
        x_values=eps_values,
        series=series,
        profile=profile,
        meta={
            "workload": workload.materialize().metadata,
            "range": SYNTHETIC_RANGE,
            "seed": seed,
            "topology": deployment.describe(),
        },
    )
