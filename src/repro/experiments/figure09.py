"""Figure 9 — RTP: effect of the rank tolerance ``r`` (TCP data).

A top-k query ("report continuously the subnets with the k-highest volume
of data transferred") over the TCP workload, for k in {15, 20, 25, 30}
and r swept from 0 upward, against the no-filter baseline.

Expected shape: messages fall as r grows for every k; at r = 0 and large
k, RTP is *worse* than no filtering because the bound R is recomputed and
re-broadcast constantly.
"""

from __future__ import annotations

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.experiments.base import FigureResult, Profile
from repro.queries.knn import TopKQuery
from repro.tolerance.rank_tolerance import RankTolerance

_PROFILES = {
    Profile.SMOKE: {
        "n_subnets": 120,
        "n_connections": 2_500,
        "days": 5.0,
        "k_values": [5, 10],
        "r_values": [0, 4, 8],
    },
    Profile.DEFAULT: {
        "n_subnets": 800,
        "n_connections": 12_000,
        "days": 30.0,
        "k_values": [15, 20, 25, 30],
        "r_values": [0, 2, 4, 8, 12, 16, 20],
    },
    Profile.FULL: {
        "n_subnets": 800,
        "n_connections": 606_497,
        "days": 30.0,
        "k_values": [15, 20, 25, 30],
        "r_values": list(range(0, 21, 2)),
    },
    Profile.SCALE: {
        "n_subnets": 10_000,
        "n_connections": 150_000,
        "days": 30.0,
        "k_values": [15, 30],
        "r_values": [0, 4, 8, 16],
    },
}


def run(
    profile: Profile | str = Profile.DEFAULT,
    seed: int = 0,
    replay_mode: str = "auto",
    deployment: Deployment | None = None,
) -> FigureResult:
    """Reproduce Figure 9; returns one curve per k plus the baseline."""
    profile = Profile.coerce(profile)
    params = _PROFILES[profile]
    deployment = deployment or Deployment.single(replay_mode=replay_mode)
    engine = Engine(deployment)
    workload = Workload.tcp(
        n_subnets=params["n_subnets"],
        n_connections=params["n_connections"],
        days=params["days"],
        seed=seed,
    )

    r_values = list(params["r_values"])
    series: dict[str, list[int]] = {}

    baseline = engine.run(
        QuerySpec(
            protocol="no-filter", query=TopKQuery(k=params["k_values"][0])
        ),
        workload,
    )
    series["no filter"] = [baseline.maintenance_messages] * len(r_values)

    for k in params["k_values"]:
        curve = []
        for r in r_values:
            report = engine.run(
                QuerySpec(
                    protocol="rtp",
                    query=TopKQuery(k=k),
                    tolerance=RankTolerance(k=k, r=r),
                ),
                workload,
                label=f"k={k},r={r}",
            )
            curve.append(report.maintenance_messages)
        series[f"k={k}"] = curve

    return FigureResult(
        figure="figure09",
        title="RTP: Effect of r",
        x_name="r",
        x_values=r_values,
        series=series,
        profile=profile,
        meta={
            "workload": workload.materialize().metadata,
            "seed": seed,
            "topology": deployment.describe(),
        },
    )
