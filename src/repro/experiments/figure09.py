"""Figure 9 — RTP: effect of the rank tolerance ``r`` (TCP data).

A top-k query ("report continuously the subnets with the k-highest volume
of data transferred") over the TCP workload, for k in {15, 20, 25, 30}
and r swept from 0 upward, against the no-filter baseline.

Expected shape: messages fall as r grows for every k; at r = 0 and large
k, RTP is *worse* than no filtering because the bound R is recomputed and
re-broadcast constantly.
"""

from __future__ import annotations

from repro.experiments.base import FigureResult, Profile
from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.protocols.no_filter import NoFilterProtocol
from repro.protocols.rtp import RankToleranceProtocol
from repro.queries.knn import TopKQuery
from repro.streams.tcp import TcpTraceConfig, generate_tcp_trace
from repro.tolerance.rank_tolerance import RankTolerance

_PROFILES = {
    Profile.SMOKE: {
        "n_subnets": 120,
        "n_connections": 2_500,
        "days": 5.0,
        "k_values": [5, 10],
        "r_values": [0, 4, 8],
    },
    Profile.DEFAULT: {
        "n_subnets": 800,
        "n_connections": 12_000,
        "days": 30.0,
        "k_values": [15, 20, 25, 30],
        "r_values": [0, 2, 4, 8, 12, 16, 20],
    },
    Profile.FULL: {
        "n_subnets": 800,
        "n_connections": 606_497,
        "days": 30.0,
        "k_values": [15, 20, 25, 30],
        "r_values": list(range(0, 21, 2)),
    },
}


def run(
    profile: Profile | str = Profile.DEFAULT,
    seed: int = 0,
    replay_mode: str = "auto",
) -> FigureResult:
    """Reproduce Figure 9; returns one curve per k plus the baseline."""
    profile = Profile.coerce(profile)
    params = _PROFILES[profile]
    trace = generate_tcp_trace(
        TcpTraceConfig(
            n_subnets=params["n_subnets"],
            n_connections=params["n_connections"],
            days=params["days"],
            seed=seed,
        )
    )

    r_values = list(params["r_values"])
    series: dict[str, list[int]] = {}

    baseline = run_protocol(
        trace,
        NoFilterProtocol(TopKQuery(k=params["k_values"][0])),
        config=RunConfig(replay_mode=replay_mode),
    )
    series["no filter"] = [baseline.maintenance_messages] * len(r_values)

    for k in params["k_values"]:
        curve = []
        for r in r_values:
            query = TopKQuery(k=k)
            tolerance = RankTolerance(k=k, r=r)
            result = run_protocol(
                trace,
                RankToleranceProtocol(query, tolerance),
                tolerance=tolerance,
                config=RunConfig(label=f"k={k},r={r}", replay_mode=replay_mode),
            )
            curve.append(result.maintenance_messages)
        series[f"k={k}"] = curve

    return FigureResult(
        figure="figure09",
        title="RTP: Effect of r",
        x_name="r",
        x_values=r_values,
        series=series,
        profile=profile,
        meta={"workload": trace.metadata, "seed": seed},
    )
