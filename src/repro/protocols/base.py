"""The protocol interface.

A protocol owns the server-side state of one standing query: the answer
set ``A(t)``, whatever bookkeeping its tolerance exploitation requires,
and the filter constraints installed at the sources.  The server calls
:meth:`FilterProtocol.initialize` once and then
:meth:`FilterProtocol.on_update` for every update message (including
self-correction reports triggered by stale-belief deployments — the
server serializes those, so handlers are never re-entered).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a circular import; Server imports this module
    from repro.server.server import Server


class FilterProtocol(ABC):
    """Base class of all filter-bound assignment protocols."""

    #: Short name used in results tables (e.g. "RTP", "FT-NRP").
    name: str = "abstract"

    #: True when the maintenance phase needs no server-to-source feedback
    #: and no cross-stream state (no probes, deployments, rank lookups,
    #: or shared pools): each stream's message sequence then depends only
    #: on its own records.  A sharded deployment can replay such a
    #: protocol's shards on independent workers and merge the ledgers —
    #: counts are additive and per-stream decisions identical, so the
    #: merged ledger equals the single-server one.  Exact range answering
    #: qualifies (ZT-NRP, the no-filter baseline over a range query);
    #: anything that probes, silences, or ranks does not.
    decomposable_maintenance: bool = False

    @abstractmethod
    def initialize(self, server: "Server") -> None:
        """Initialization phase: collect values, deploy constraints."""

    @abstractmethod
    def on_update(
        self, server: "Server", stream_id: int, value: float, time: float
    ) -> None:
        """Maintenance phase: react to one update message."""

    @property
    @abstractmethod
    def answer(self) -> frozenset[int]:
        """The answer set ``A(t)`` currently reported to the user."""

    def describe(self) -> str:
        """One-line human-readable description for results tables."""
        return self.name
