"""FT-RP: fraction-based tolerance for k-NN queries (Sections 5.2.2-5.2.3).

FT-RP runs FT-NRP over the range view of the k-NN query, with two twists:

1. **Internal tolerances.**  The user's ``eps+/eps-`` cannot parameterize
   FT-NRP directly: a silenced in-bound stream that drifts away creates a
   false positive *and* (by promoting another stream into the true top-k)
   a false negative, and symmetrically for silenced out-of-bound streams.
   The internal ``rho+/rho-`` must satisfy Equation 15 and are maximized
   on the Equation 16 frontier (see :mod:`repro.tolerance.knn_fraction`).
   ``k * rho+`` streams inside ``R`` get false-positive filters and
   ``k * rho-`` streams outside get false-negative filters.

2. **Answer-size bounds.**  ``R`` is only an *estimate* of the k-NN
   region; while ``|A(t)|`` stays within bounds the answer remains within
   tolerance.  When an entering object pushes ``|A|`` above the upper
   bound, ``R`` is "too loose"; when a leaving object drops it below the
   lower bound, "too tight" — either way the bound is recomputed from a
   full collection and redeployed, the only moment FT-RP pays ZT-RP's
   ``~3n`` price.

Deviation from the paper (documented in DESIGN.md): the paper keeps ``R``
while ``k(1 - eps-) <= |A| <= k/(1 - eps+)`` (Equations 7, 9).  Those
bounds ignore a coupling their own Figure 8 introduces.  Because a k-NN
query has exactly ``k`` true answers, ``E+ = |A| - k + E-`` identically;
with ``|A|`` at the paper's cap *and* an FN-silenced stream inside ``R``
unnoticed (``E- > 0``), ``F+`` overshoots ``eps+`` — our continuous
checker exhibits this for the ``FAVOR_FN`` policy.  We therefore tighten
the triggers by the *live* silencer pool sizes:

    ``|A| <= (k - n_fn) / (1 - eps+)``              (F+ safe), and
    ``|A| >= k (1 - eps-) + n_fp + n_fn``           (F- safe),

which reduce to the paper's bounds as the pools drain and never exclude
the initial state (``|A| = k`` satisfies both for any Equation-16 pair).

At ``eps+ = eps- = 0`` the silencer pools are empty and the size bounds
collapse to ``|A| = k``, so every crossing forces a recomputation: FT-RP
degenerates to ZT-RP, which is how Figure 15's ``eps = 0`` points are
produced.

The recompute path runs on the columnar state engine (shared
:class:`~repro.state.table.StreamStateTable` + vectorized
:class:`~repro.state.rank.RankView` partial selection); the FIFO
silencer pools are mirrored into the table's flag column.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.protocols.base import FilterProtocol
from repro.protocols.selection import BoundaryNearestSelection, SelectionHeuristic
from repro.queries.base import RankBasedQuery
from repro.state.pools import SilencerPools
from repro.state.rank import RankView
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.knn_fraction import RhoPolicy, answer_size_bounds, derive_rho

if TYPE_CHECKING:
    from repro.server.server import Server
    from repro.state.table import StreamStateTable


class FractionToleranceKnnProtocol(FilterProtocol):
    """The FT-RP algorithm.

    Parameters
    ----------
    query:
        A rank-based query (k-NN, top-k, or k-min).
    tolerance:
        The user's ``eps+/eps-`` fractions.
    policy:
        Which point of the Equation-16 frontier to run at (ablation
        dimension; ``BALANCED`` by default).
    selection:
        Placement heuristic for the silencing filters.
    """

    name = "FT-RP"

    def __init__(
        self,
        query: RankBasedQuery,
        tolerance: FractionTolerance,
        policy: RhoPolicy = RhoPolicy.BALANCED,
        selection: SelectionHeuristic | None = None,
    ) -> None:
        self.query = query
        self.tolerance = tolerance
        self.policy = policy
        self.selection = selection or BoundaryNearestSelection()
        self.rho_plus, self.rho_minus = derive_rho(tolerance, policy)
        # The paper's static Equations 7/9 bounds, kept for reference and
        # reporting; the live triggers below tighten them by pool sizes.
        self.size_min, self.size_max = answer_size_bounds(query.k, tolerance)
        self._state: "StreamStateTable | None" = None
        self._rank: RankView | None = None
        self._pools = SilencerPools()
        self._count = 0
        self._region: tuple[float, float] | None = None
        self.recomputations = 0

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def initialize(self, server: "Server") -> None:
        if server.n_streams <= self.query.k:
            raise ValueError(
                f"FT-RP needs more than k = {self.query.k} streams"
            )
        if self._state is not server.state:
            self._state = server.state
            self._rank = server.rank_view(self.query.distance_array)
            self._pools.bind(self._state)
        server.probe_all()
        self._resolve(server)

    def _resolve(self, server: "Server") -> None:
        """Compute R from fresh table values, pick silencers, deploy."""
        assert self._state is not None and self._rank is not None
        state, k = self._state, self.query.k
        leaders = self._rank.leaders(k + 1)
        top = leaders[:k]
        state.answer_replace(top)
        self._count = 0
        values = state.values
        d_in = self.query.distance(float(values[leaders[k - 1]]))
        d_out = self.query.distance(float(values[leaders[k]]))
        self._region = self.query.region((d_in + d_out) / 2.0)
        lower, upper = self._region

        inside = {i: float(values[i]) for i in top}
        outside_mask = state.known.copy()
        outside_mask[top] = False
        outside = {
            int(i): float(values[i]) for i in np.nonzero(outside_mask)[0]
        }
        n_fp = min(math.floor(k * self.rho_plus + 1e-9), len(inside))
        n_fn = min(math.floor(k * self.rho_minus + 1e-9), len(outside))
        fp_ids = self.selection.select(inside, n_fp, lower, upper)
        fn_ids = self.selection.select(outside, n_fn, lower, upper)
        self._pools.reset(fp_ids, fn_ids)

        fp_set = set(fp_ids)
        fn_set = set(fn_ids)
        for stream_id in server.stream_ids:
            if stream_id in fp_set:
                server.deploy(stream_id, -math.inf, math.inf)
            elif stream_id in fn_set:
                server.deploy(stream_id, math.inf, math.inf)
            else:
                server.deploy(stream_id, lower, upper)

    # ------------------------------------------------------------------
    # Live answer-size triggers (see module docstring)
    # ------------------------------------------------------------------
    @property
    def effective_size_max(self) -> int:
        """Largest ``|A|`` that keeps F+ safe given live FN silencers."""
        k = self.query.k
        budget = k - self._pools.n_minus
        return math.floor(budget / (1.0 - self.tolerance.eps_plus) + 1e-9)

    @property
    def effective_size_min(self) -> int:
        """Smallest ``|A|`` that keeps F- safe given live silencers."""
        k = self.query.k
        base = math.ceil(k * (1.0 - self.tolerance.eps_minus) - 1e-9)
        return base + self._pools.n_plus + self._pools.n_minus

    def _bounds_violated(self) -> bool:
        assert self._state is not None
        size = self._state.answer_size
        return size > self.effective_size_max or size < self.effective_size_min

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def on_update(
        self, server: "Server", stream_id: int, value: float, time: float
    ) -> None:
        assert self._region is not None, "initialize() must run first"
        assert self._state is not None
        lower, upper = self._region
        if lower <= value <= upper:
            # An object entered R.
            self._state.answer_add(stream_id)
            if self._bounds_violated():
                # R is too loose: it pretends too many objects are top-k.
                self._recompute(server)
                return
            self._count += 1
        else:
            # An object left R.
            self._state.answer_discard(stream_id)
            if self._bounds_violated():
                # R is too tight: it can no longer cover k objects.
                self._recompute(server)
                return
            if self._count > 0:
                self._count -= 1
            else:
                self._fix_error(server)
                if self._bounds_violated():
                    self._recompute(server)

    def _recompute(self, server: "Server") -> None:
        """Full collection + redeployment — the expensive path."""
        self.recomputations += 1
        server.probe_all()
        self._resolve(server)

    def _fix_error(self, server: "Server") -> None:
        """FT-NRP's Fix_Error over the R view (see ft_nrp.py)."""
        assert self._region is not None and self._state is not None
        lower, upper = self._region
        if self._pools.fp:
            candidate = self._pools.pop_fp()
            value = server.probe(candidate)
            if lower <= value <= upper:
                server.deploy(candidate, lower, upper)
                return
            self._state.answer_discard(candidate)
            self._pools.push_fn(candidate)
        if self._pools.fn:
            candidate = self._pools.pop_fn()
            value = server.probe(candidate)
            if lower <= value <= upper:
                self._state.answer_add(candidate)
            server.deploy(candidate, lower, upper)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def answer(self) -> frozenset[int]:
        if self._state is None:
            return frozenset()
        return self._state.answer_snapshot()

    @property
    def region(self) -> tuple[float, float] | None:
        """The current k-NN bound estimate ``R``."""
        return self._region

    @property
    def n_plus(self) -> int:
        return self._pools.n_plus

    @property
    def n_minus(self) -> int:
        return self._pools.n_minus

    @property
    def _fp_pool(self) -> deque[int]:
        """The FIFO false-positive pool (exposed for tests/ablations)."""
        return self._pools.fp

    @property
    def _fn_pool(self) -> deque[int]:
        return self._pools.fn
