"""RTP: the rank-based tolerance protocol (Section 4, Figure 5).

The server maintains a closed region ``R`` — an interval centred on the
query point — positioned halfway between the ``(k+r)``-th and
``(k+r+1)``-st closest objects.  Every stream's filter *is* ``R``, so the
server learns exactly when an object enters or leaves ``R``.  Server-side
state:

* ``X(t)`` — the objects currently inside ``R`` (at most ``eps = k + r``);
* ``A(t) ⊆ X(t)`` — the ``k`` objects reported to the user.

Because every member of ``A`` is inside ``R`` and at most ``eps`` objects
are inside ``R``, every member's true rank is at most ``eps`` — exactly
Definition 1.

Maintenance handles the three cases of Figure 5 and charges messages as:
one update per violation, two messages per probe, one per constraint
deployed (a broadcast of a new ``R`` costs ``n``).  This is why ``r = 0``
can be *worse* than no filtering (Figure 9): every boundary crossing then
forces a recompute-and-broadcast.

Staleness: the expanding search of Case 2 (Step 4) deploys a new ``R``
without probing every stream, so the server attaches its believed
membership to each deployment; a source whose actual membership differs
self-corrects with one update, which the server handles through the
normal Case 1-3 routing.  See ``repro.streams.source``.

Server-side state lives in the shared :class:`~repro.state.table.
StreamStateTable` — ``A(t)`` and ``X(t)`` are its membership masks, and
the "old ranking scores kept by the server" are its value column, kept
in rank order by an incremental :class:`~repro.state.rank.RankView`
(dirty-region repair) instead of a full ``sorted()`` per resolution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protocols.base import FilterProtocol
from repro.queries.base import RankBasedQuery
from repro.state.rank import RankView
from repro.tolerance.rank_tolerance import RankTolerance

if TYPE_CHECKING:
    from repro.server.server import Server
    from repro.state.table import StreamStateTable


class RankToleranceProtocol(FilterProtocol):
    """The RTP algorithm of Figure 5.

    Parameters
    ----------
    query:
        A rank-based query (k-NN, top-k, or k-min).
    tolerance:
        The rank slack ``r``; ``tolerance.k`` must equal ``query.k``.
    expand_search:
        Whether Case 2 uses the Figure-5 Step-4 expanding search before
        falling back to full re-initialization.  Disabling it (ablation)
        makes every replacement-exhausted departure cost a full
        probe-all + broadcast.
    """

    name = "RTP"

    def __init__(
        self,
        query: RankBasedQuery,
        tolerance: RankTolerance,
        expand_search: bool = True,
    ) -> None:
        if tolerance.k != query.k:
            raise ValueError(
                f"tolerance k={tolerance.k} does not match query k={query.k}"
            )
        self.query = query
        self.tolerance = tolerance
        self.expand_search = expand_search
        self._state: "StreamStateTable | None" = None
        self._rank: RankView | None = None
        self._region: tuple[float, float] | None = None
        self.reinitializations = 0
        self.expansions = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @property
    def eps(self) -> int:
        """``eps_k^r = k + r``, the worst admissible rank."""
        return self.tolerance.eps

    def _distance(self, value: float) -> float:
        return self.query.distance(value)

    def _known_value(self, stream_id: int) -> float:
        assert self._state is not None
        return float(self._state.values[stream_id])

    def _ranked_known(self) -> list[int]:
        """Stream ids sorted by (distance of last-known value, id)."""
        assert self._rank is not None
        return self._rank.order()

    def _in_region(self, value: float) -> bool:
        assert self._region is not None
        lower, upper = self._region
        return lower <= value <= upper

    # ------------------------------------------------------------------
    # Initialization (Figure 5, top)
    # ------------------------------------------------------------------
    def initialize(self, server: "Server") -> None:
        if server.n_streams <= self.eps:
            raise ValueError(
                f"RTP needs more than eps = {self.eps} streams "
                f"(got {server.n_streams}): the bound R must separate the "
                f"(k+r)-th and (k+r+1)-st ranked objects"
            )
        if self._state is not server.state:
            self._state = server.state
            self._rank = server.rank_view(self.query.distance_array)
        server.probe_all()
        order = self._ranked_known()
        self._state.answer_replace(order[: self.query.k])
        self._state.tracked_replace(order[: self.eps])
        self._deploy_bound(server, fresh_ids=set(server.stream_ids))

    def _deploy_bound(self, server: "Server", fresh_ids: set[int]) -> None:
        """Deploy_bound(t): position R halfway past the eps-th object.

        The halfway point is computed over the server's *known* values —
        exact for streams in ``fresh_ids`` (probed this resolution), the
        last report otherwise.  Deployments to non-fresh streams carry the
        believed membership so stale sources self-correct.
        """
        assert self._state is not None
        order = self._ranked_known()
        tracked = self._state.tracked_mask
        inside = [i for i in order if tracked[i]]
        outside = [i for i in order if not tracked[i]]
        if not inside or not outside:  # pragma: no cover - guarded at init
            raise RuntimeError("R must separate a non-empty in/out split")
        d_inside = self._distance(self._known_value(inside[-1]))
        d_outside = self._distance(self._known_value(outside[0]))
        # A stale outside value can appear closer than a fresh X member;
        # R must nevertheless enclose all of X.  Clamping degenerates the
        # halfway gap to zero in that rare case, and the stale stream
        # self-corrects via its believed-membership flag if it truly sits
        # inside the deployed bound.
        threshold = (d_inside + max(d_outside, d_inside)) / 2.0
        lower, upper = self.query.region(threshold)
        # R must enclose every tracked member's known value *exactly*.
        # ``region`` round-trips the threshold through ``q ± threshold``,
        # whose rounding can exclude inside[-1] by an ulp when the clamp
        # above degenerates the gap to zero (observed: value 42.6416434
        # against a computed lower bound 42.64164340000002).  The source
        # then knows it is outside a region the server believes it is
        # inside — and since its membership never flips again, no report
        # ever corrects the divergence.  Widening to the tracked values
        # closes the hole; in the non-degenerate case it moves nothing.
        for member in inside:
            value = self._known_value(member)
            lower = min(lower, value)
            upper = max(upper, value)
        self._region = (lower, upper)
        for stream_id in server.stream_ids:
            if stream_id in fresh_ids:
                server.deploy(stream_id, lower, upper)
            else:
                server.deploy(
                    stream_id,
                    lower,
                    upper,
                    assumed_inside=bool(tracked[stream_id]),
                )

    # ------------------------------------------------------------------
    # Maintenance (Figure 5, middle)
    # ------------------------------------------------------------------
    def on_update(
        self, server: "Server", stream_id: int, value: float, time: float
    ) -> None:
        # The server already refreshed the value column (and dirtied the
        # rank view) before invoking this handler.
        if self._region is None:  # pragma: no cover - defensive
            raise RuntimeError("initialize() must run before updates")
        assert self._state is not None
        entering = self._in_region(value)
        if not entering:
            if self._state.answer_contains(stream_id):
                self._case_leaves_answer(server, stream_id)
            else:
                # Case 1 — or a consistent self-correction from a stream
                # that was never tracked; discarding is a no-op then.
                self._state.tracked_discard(stream_id)
        else:
            if not self._state.tracked_contains(stream_id):
                self._case_enters(server, stream_id)
            # else: already tracked inside R; nothing to maintain.

    def _case_leaves_answer(self, server: "Server", stream_id: int) -> None:
        """Case 2: an answer member left R."""
        assert self._state is not None
        self._state.answer_discard(stream_id)
        self._state.tracked_discard(stream_id)
        replacements = self._state.tracked_not_in_answer()
        if replacements.size:
            # Step 3: promote the highest-ranked tracked non-answer object.
            best = min(
                (int(i) for i in replacements),
                key=lambda i: (self._distance(self._known_value(i)), i),
            )
            self._state.answer_add(best)
            return
        # Step 4: X = A with only k-1 members left; expand the search
        # region over the stale ranking until two candidates surface.
        if self.expand_search and self._expand_search(server):
            return
        # Step 5: nothing found anywhere — start over.
        self.reinitializations += 1
        self.initialize(server)

    def _expand_search(self, server: "Server") -> bool:
        """Case 2 Step 4: probe outward by stale rank; True on success."""
        assert self._state is not None
        self.expansions += 1
        candidates = [
            i
            for i in self._ranked_known()
            if not self._state.answer_contains(i)
        ]
        probed: dict[int, float] = {}
        for candidate in candidates:
            probed[candidate] = server.probe(candidate)
            # R' is bounded by the candidate's (now fresh) distance; U is
            # every probed stream currently within R'.
            radius = self._distance(probed[candidate])
            u_set = {
                i
                for i, v in probed.items()
                if self._distance(v) <= radius
            }
            if len(u_set) >= 2:
                ranked_u = sorted(
                    u_set, key=lambda i: (self._distance(probed[i]), i)
                )
                self._state.answer_add(ranked_u[0])
                keep = ranked_u[: self.tolerance.r + 1]
                self._state.tracked_replace(
                    set(self._state.answer_snapshot()) | set(keep)
                )
                self._deploy_bound(server, fresh_ids=set(probed))
                return True
        return False

    def _case_enters(self, server: "Server", stream_id: int) -> None:
        """Case 3: an untracked object entered R."""
        assert self._state is not None
        if self._state.tracked_size < self.eps:
            # Step 6: room to spare — track it; R still holds <= eps.
            self._state.tracked_add(stream_id)
            return
        # Step 7: R now holds eps + 1 objects — re-evaluate it from fresh
        # values of the tracked set (everyone else is provably farther).
        members = [int(i) for i in self._state.tracked_ids()]
        fresh_ids = {stream_id}
        for member in members:
            server.probe(member)
            fresh_ids.add(member)
        pool = members + [stream_id]
        ranked = sorted(
            pool, key=lambda i: (self._distance(self._known_value(i)), i)
        )
        self._state.answer_replace(ranked[: self.query.k])
        self._state.tracked_replace(ranked[: self.eps])
        self._deploy_bound(server, fresh_ids=fresh_ids)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def answer(self) -> frozenset[int]:
        if self._state is None:
            return frozenset()
        return self._state.answer_snapshot()

    @property
    def tracked(self) -> frozenset[int]:
        """The server's ``X(t)`` — objects believed inside ``R``."""
        if self._state is None:
            return frozenset()
        return self._state.tracked_snapshot()

    @property
    def region(self) -> tuple[float, float] | None:
        """The currently deployed bound ``R`` (value-space interval)."""
        return self._region
