"""The no-filter baseline.

With no filters installed, every value change travels to the server
(Section 3.1: "If no filter is installed at a stream, all updates from
the stream are reported").  The server therefore always knows every true
value and reports the exact answer; the cost is one maintenance message
per update, which is the reference line labelled "no filter" in Figure 9.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protocols.base import FilterProtocol
from repro.queries.base import EntityQuery, NonRankBasedQuery

if TYPE_CHECKING:
    from repro.server.server import Server
    from repro.state.table import StreamStateTable


class NoFilterProtocol(FilterProtocol):
    """Exact answering with zero filtering.

    The value vector is the shared state table's value column (the
    server refreshes it on every update, and with no filters every
    update arrives).  Range-query membership is maintained incrementally
    in the table's answer mask; rank-based answers are evaluated from
    the value column only when :attr:`answer` is read (the checker or
    user asks; the hot update path stays O(1)).
    """

    name = "no-filter"

    def __init__(self, query: EntityQuery) -> None:
        self.query = query
        self._state: "StreamStateTable | None" = None
        self._is_range = isinstance(query, NonRankBasedQuery)
        # Range answering is a per-stream membership flip, so shards
        # replay independently; a rank-based answer reads the *global*
        # value order and must stay on one coordinator.
        self.decomposable_maintenance = self._is_range
        self._rank_cache: frozenset[int] | None = None

    def initialize(self, server: "Server") -> None:
        # No filters are deployed; the server still needs a first snapshot
        # of every value to answer before any update arrives.
        self._state = server.state
        server.probe_all()
        if self._is_range:
            assert isinstance(self.query, NonRankBasedQuery)
            matches = self.query.matches_array(self._state.values)
            self._state.answer_set_mask(matches)
        self._rank_cache = None

    def on_update(
        self, server: "Server", stream_id: int, value: float, time: float
    ) -> None:
        assert self._state is not None, "initialize() must run first"
        if self._is_range:
            assert isinstance(self.query, NonRankBasedQuery)
            if self.query.matches(value):
                self._state.answer_add(stream_id)
            else:
                self._state.answer_discard(stream_id)
        else:
            self._rank_cache = None

    @property
    def answer(self) -> frozenset[int]:
        if self._state is None:
            return frozenset()
        if self._is_range:
            return self._state.answer_snapshot()
        if self._rank_cache is None:
            self._rank_cache = self.query.true_answer(self._state.values)
        return self._rank_cache
