"""The no-filter baseline.

With no filters installed, every value change travels to the server
(Section 3.1: "If no filter is installed at a stream, all updates from
the stream are reported").  The server therefore always knows every true
value and reports the exact answer; the cost is one maintenance message
per update, which is the reference line labelled "no filter" in Figure 9.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.protocols.base import FilterProtocol
from repro.queries.base import EntityQuery, NonRankBasedQuery

if TYPE_CHECKING:
    from repro.server.server import Server


class NoFilterProtocol(FilterProtocol):
    """Exact answering with zero filtering.

    The answer set is recomputed lazily: range-query membership is
    maintained incrementally, rank-based answers are evaluated from the
    tracked value vector only when :attr:`answer` is read (the checker or
    user asks; the hot update path stays O(1)).
    """

    name = "no-filter"

    def __init__(self, query: EntityQuery) -> None:
        self.query = query
        self._values: np.ndarray | None = None
        self._range_members: set[int] = set()
        self._is_range = isinstance(query, NonRankBasedQuery)
        self._rank_cache: frozenset[int] | None = None

    def initialize(self, server: "Server") -> None:
        # No filters are deployed; the server still needs a first snapshot
        # of every value to answer before any update arrives.
        values = server.probe_all()
        self._values = np.empty(len(values), dtype=np.float64)
        for stream_id, value in values.items():
            self._values[stream_id] = value
        if self._is_range:
            assert isinstance(self.query, NonRankBasedQuery)
            matches = self.query.matches_array(self._values)
            self._range_members = set(int(i) for i in np.nonzero(matches)[0])
        self._rank_cache = None

    def on_update(
        self, server: "Server", stream_id: int, value: float, time: float
    ) -> None:
        assert self._values is not None, "initialize() must run first"
        self._values[stream_id] = value
        if self._is_range:
            assert isinstance(self.query, NonRankBasedQuery)
            if self.query.matches(value):
                self._range_members.add(stream_id)
            else:
                self._range_members.discard(stream_id)
        else:
            self._rank_cache = None

    @property
    def answer(self) -> frozenset[int]:
        if self._values is None:
            return frozenset()
        if self._is_range:
            return frozenset(self._range_members)
        if self._rank_cache is None:
            self._rank_cache = self.query.true_answer(self._values)
        return self._rank_cache
