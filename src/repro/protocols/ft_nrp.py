"""FT-NRP: fraction-based tolerance for range queries (Section 5.1.1, Fig. 7).

Initialization probes every stream, then hands out silencing filters:

* of the ``|A(t0)|`` streams inside ``[l, u]``, ``n+ = Emax+`` get the
  false-positive filter ``[-inf, +inf]`` and go silent;
* of the streams outside, ``n- = Emax-`` get the false-negative filter
  ``[+inf, +inf]`` and likewise go silent;
* everyone else gets ``[l, u]`` itself (ZT-NRP behaviour).

Maintenance tracks the slack variable ``count`` — the surplus of
entering-range reports over leaving-range reports since the last deficit.
While ``count > 0`` the answer only ever got *better* than at the last
critical instant, so nothing need be done; when a leave-report hits
``count == 0``, ``Fix_Error`` spends silenced streams to restore the
budgets (Section 5.1.1's case analysis).

One bookkeeping deviation from Figure 7, equivalent in messages and
strictly no weaker in correctness: when ``Fix_Error`` probes a
false-positive-filtered stream and finds it *outside* the range, the paper
removes it from ``A`` and leaves it silenced in limbo (it keeps its
``[-inf, +inf]`` filter but is no longer counted anywhere).  Such a stream
is at that point *exactly* a false-negative-filtered stream — silenced and
believed outside — so we move it to the false-negative pool.  The silenced
population is identical to the paper's at every instant; the stream merely
remains reachable by later ``Fix_Error`` invocations instead of being
stranded.

A second deviation closes a soundness gap (found by the continuous
checker; documented in DESIGN.md): the paper sizes ``n-`` against
``|A(t0)|`` once, but ``F-``'s denominator is the *current* true-set
size, which shrinks as in-range streams legitimately leave.  At small
populations / high tolerance an outstanding FN silencer then pushes
``F-`` past ``eps-`` (e.g. ``E- = 1`` of ``|T| = 2`` with
``eps- = 0.45``).  After every maintenance step we therefore enforce the
worst-case budgets against the current answer:

    ``|fp_pool| <= eps+ * |A|``                                  (F+ safe)
    ``|fn_pool| * (1 - eps-) <= eps- * (|A| - |fp_pool|)``        (F- safe)

reclaiming (probing and unsilencing) silencers while either fails.  Both
inequalities hold with equality at the paper's initialization sizing, so
behaviour only diverges exactly where the paper's arithmetic breaks.

Server-side state — answer mask and silencer flags — lives in the shared
:class:`~repro.state.table.StreamStateTable`; the FIFO pool order is a
:class:`~repro.state.pools.SilencerPools` mirrored into its flag column.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING

from repro.protocols.base import FilterProtocol
from repro.protocols.selection import BoundaryNearestSelection, SelectionHeuristic
from repro.queries.range_query import RangeQuery
from repro.state.pools import SilencerPools
from repro.tolerance.fraction_tolerance import FractionTolerance

if TYPE_CHECKING:
    from repro.server.server import Server
    from repro.state.table import StreamStateTable


class FractionToleranceRangeProtocol(FilterProtocol):
    """The FT-NRP algorithm of Figure 7.

    Parameters
    ----------
    query:
        The standing range query.
    tolerance:
        Maximum false-positive / false-negative fractions (< 0.5 each).
    selection:
        Placement heuristic for the silencing filters (Fig. 14 compares
        random vs boundary-nearest; the latter is the default).
    reinitialize_when_exhausted:
        When both silencer pools are spent the protocol degenerates to
        ZT-NRP; the paper notes initialization "may be run again" to
        re-exploit the tolerance.  Off by default (matches the figures);
        the ablation bench turns it on.
    """

    name = "FT-NRP"

    def __init__(
        self,
        query: RangeQuery,
        tolerance: FractionTolerance,
        selection: SelectionHeuristic | None = None,
        reinitialize_when_exhausted: bool = False,
    ) -> None:
        self.query = query
        self.tolerance = tolerance
        self.selection = selection or BoundaryNearestSelection()
        self.reinitialize_when_exhausted = reinitialize_when_exhausted
        self._state: "StreamStateTable | None" = None
        self._pools = SilencerPools()
        self._count = 0
        self.reinitializations = 0

    # ------------------------------------------------------------------
    # Initialization phase (Figure 7, top)
    # ------------------------------------------------------------------
    def initialize(self, server: "Server") -> None:
        if self._state is not server.state:
            self._state = server.state
            self._pools.bind(self._state)
        values = server.probe_all()
        self._install(server, values)

    def _install(self, server: "Server", values: dict[int, float]) -> None:
        """Compute A, choose silencers, and deploy all filters."""
        assert self._state is not None
        inside = {
            stream_id: value
            for stream_id, value in values.items()
            if self.query.matches(value)
        }
        outside = {
            stream_id: value
            for stream_id, value in values.items()
            if stream_id not in inside
        }
        self._state.answer_replace(inside)
        self._count = 0

        n_plus = min(self.tolerance.emax_plus(len(inside)), len(inside))
        n_minus = min(self.tolerance.emax_minus(len(inside)), len(outside))
        lower, upper = self.query.lower, self.query.upper
        fp_ids = self.selection.select(inside, n_plus, lower, upper)
        fn_ids = self.selection.select(outside, n_minus, lower, upper)
        self._pools.reset(fp_ids, fn_ids)

        fp_set = set(fp_ids)
        fn_set = set(fn_ids)
        for stream_id in values:
            if stream_id in fp_set:
                server.deploy(stream_id, -math.inf, math.inf)
            elif stream_id in fn_set:
                server.deploy(stream_id, math.inf, math.inf)
            else:
                server.deploy(stream_id, lower, upper)
        self._enforce_budgets(server)

    # ------------------------------------------------------------------
    # Maintenance phase (Figure 7, middle)
    # ------------------------------------------------------------------
    def on_update(
        self, server: "Server", stream_id: int, value: float, time: float
    ) -> None:
        assert self._state is not None, "initialize() must run first"
        if self.query.matches(value):
            # Case 1: a stream entered the range — the answer improves.
            self._state.answer_add(stream_id)
            self._count += 1
        else:
            # Case 2: a stream left the range.
            self._state.answer_discard(stream_id)
            if self._count > 0:
                self._count -= 1
            else:
                self._fix_error(server)
                if (
                    self.reinitialize_when_exhausted
                    and not self._pools.fp
                    and not self._pools.fn
                ):
                    self.reinitializations += 1
                    self._install(server, server.probe_all())
                    return
            # The answer shrank: the silencer budgets may no longer fit.
            self._enforce_budgets(server)

    # ------------------------------------------------------------------
    # Fix_Error (Figure 7, bottom)
    # ------------------------------------------------------------------
    def _fix_error(self, server: "Server") -> None:
        """Spend silenced streams to restore the F+/F- budgets."""
        assert self._state is not None
        if self._pools.fp:
            candidate = self._pools.pop_fp()
            value = server.probe(candidate)
            if self.query.matches(value):
                # True positive after all: pin it with the real range
                # filter; budgets strictly improve (Section 5.1.1 case 1).
                server.deploy(candidate, self.query.lower, self.query.upper)
                return
            # True negative: drop it from the answer.  It is now silenced
            # and believed outside — i.e. a false-negative filter — so it
            # joins that pool (see module docstring).
            self._state.answer_discard(candidate)
            self._pools.push_fn(candidate)
        if self._pools.fn:
            candidate = self._pools.pop_fn()
            value = server.probe(candidate)
            if self.query.matches(value):
                self._state.answer_add(candidate)
            server.deploy(candidate, self.query.lower, self.query.upper)

    # ------------------------------------------------------------------
    # Budget enforcement (see module docstring, second deviation)
    # ------------------------------------------------------------------
    def _fp_budget_ok(self) -> bool:
        assert self._state is not None
        return self._pools.n_plus <= (
            self.tolerance.eps_plus * self._state.answer_size + 1e-9
        )

    def _fn_budget_ok(self) -> bool:
        assert self._state is not None
        in_range_floor = self._state.answer_size - self._pools.n_plus
        return self._pools.n_minus * (1.0 - self.tolerance.eps_minus) <= (
            self.tolerance.eps_minus * in_range_floor + 1e-9
        )

    def _enforce_budgets(self, server: "Server") -> None:
        """Reclaim silencers while a worst-case fraction bound would fail."""
        assert self._state is not None
        while self._pools.fp and not self._fp_budget_ok():
            self._reclaim_fp(server)
        while self._pools.fn and not self._fn_budget_ok():
            candidate = self._pools.pop_fn()
            value = server.probe(candidate)
            if self.query.matches(value):
                self._state.answer_add(candidate)
            server.deploy(candidate, self.query.lower, self.query.upper)

    def _reclaim_fp(self, server: "Server") -> None:
        assert self._state is not None
        candidate = self._pools.pop_fp()
        value = server.probe(candidate)
        if not self.query.matches(value):
            self._state.answer_discard(candidate)
        server.deploy(candidate, self.query.lower, self.query.upper)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def answer(self) -> frozenset[int]:
        if self._state is None:
            return frozenset()
        return self._state.answer_snapshot()

    @property
    def count(self) -> int:
        """The maintenance slack variable (Figure 7)."""
        return self._count

    @property
    def n_plus(self) -> int:
        """Remaining false-positive filters (paper's ``n+``)."""
        return self._pools.n_plus

    @property
    def n_minus(self) -> int:
        """Remaining false-negative filters (paper's ``n-``)."""
        return self._pools.n_minus

    @property
    def _fp_pool(self) -> deque[int]:
        """The FIFO false-positive pool (exposed for tests/ablations)."""
        return self._pools.fp

    @property
    def _fn_pool(self) -> deque[int]:
        return self._pools.fn
