"""Filter-bound assignment protocols — the paper's contribution.

Six protocols, each an Initialization phase (collect values, compute and
deploy filter constraints) plus a Maintenance phase (react to filter
violations, probing and re-deploying as needed):

* :class:`~repro.protocols.no_filter.NoFilterProtocol` — the baseline with
  no filters: every update travels to the server;
* :class:`~repro.protocols.rtp.RankToleranceProtocol` (RTP) — rank-based
  tolerance for rank-based queries (Section 4, Figure 5);
* :class:`~repro.protocols.zt_nrp.ZeroToleranceRangeProtocol` (ZT-NRP) —
  exact range queries via per-stream ``[l, u]`` filters (Section 5.1);
* :class:`~repro.protocols.ft_nrp.FractionToleranceRangeProtocol`
  (FT-NRP) — fraction-based tolerance for range queries (Figure 7);
* :class:`~repro.protocols.zt_rp.ZeroToleranceKnnProtocol` (ZT-RP) — exact
  k-NN via the range-view bound ``R`` (Section 5.2.1);
* :class:`~repro.protocols.ft_rp.FractionToleranceKnnProtocol` (FT-RP) —
  fraction-based tolerance for k-NN via FT-NRP over ``R`` with the
  ``rho+/rho-`` internal tolerances (Sections 5.2.2-5.2.3).
"""

from repro.protocols.base import FilterProtocol
from repro.protocols.ft_nrp import FractionToleranceRangeProtocol
from repro.protocols.ft_rp import FractionToleranceKnnProtocol
from repro.protocols.no_filter import NoFilterProtocol
from repro.protocols.rtp import RankToleranceProtocol
from repro.protocols.selection import (
    BoundaryNearestSelection,
    RandomSelection,
    SelectionHeuristic,
)
from repro.protocols.zt_nrp import ZeroToleranceRangeProtocol
from repro.protocols.zt_rp import ZeroToleranceKnnProtocol

__all__ = [
    "BoundaryNearestSelection",
    "FilterProtocol",
    "FractionToleranceKnnProtocol",
    "FractionToleranceRangeProtocol",
    "NoFilterProtocol",
    "RandomSelection",
    "RankToleranceProtocol",
    "SelectionHeuristic",
    "ZeroToleranceKnnProtocol",
    "ZeroToleranceRangeProtocol",
]
