"""ZT-RP: zero-tolerance k-NN via the range view (Section 5.2.1).

A k-NN query is viewed as a range query over the bound ``R`` that encloses
the k-th nearest neighbour: while no object crosses ``R``, the k objects
inside it remain the exact answer.  The protocol's weakness — and the
reason FT-RP exists — is that *any* crossing invalidates ``R``: the server
must re-collect every value, recompute ``R``, and announce it to every
stream ("it is very sensitive to the situation when an object's value
crosses R").  Each crossing therefore costs about ``3n`` messages.

The recompute path runs on the columnar state engine: the server's
probe replies land in the shared :class:`~repro.state.table.
StreamStateTable`, and the ``k+1`` leaders are extracted with one
vectorized partial selection (:class:`~repro.state.rank.RankView`)
instead of a full python ``sorted()`` scan.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protocols.base import FilterProtocol
from repro.queries.base import RankBasedQuery
from repro.state.rank import RankView

if TYPE_CHECKING:
    from repro.server.server import Server
    from repro.state.table import StreamStateTable


class ZeroToleranceKnnProtocol(FilterProtocol):
    """Exact k-NN answering with a single shared bound ``R``."""

    name = "ZT-RP"

    def __init__(self, query: RankBasedQuery) -> None:
        self.query = query
        self._state: "StreamStateTable | None" = None
        self._rank: RankView | None = None
        self._region: tuple[float, float] | None = None
        self.recomputations = 0

    def _bind(self, server: "Server") -> None:
        if self._state is not server.state:
            self._state = server.state
            self._rank = server.rank_view(self.query.distance_array)

    def initialize(self, server: "Server") -> None:
        if server.n_streams <= self.query.k:
            raise ValueError(
                f"ZT-RP needs more than k = {self.query.k} streams"
            )
        self._bind(server)
        server.probe_all()
        self._resolve(server)

    def _resolve(self, server: "Server") -> None:
        """Recompute R from fresh values and deploy it everywhere."""
        assert self._state is not None and self._rank is not None
        k = self.query.k
        leaders = self._rank.leaders(k + 1)
        self._state.answer_replace(leaders[:k])
        values = self._state.values
        d_in = self.query.distance(float(values[leaders[k - 1]]))
        d_out = self.query.distance(float(values[leaders[k]]))
        threshold = (d_in + d_out) / 2.0
        self._region = self.query.region(threshold)
        lower, upper = self._region
        for stream_id in server.stream_ids:
            server.deploy(stream_id, lower, upper)

    def on_update(
        self, server: "Server", stream_id: int, value: float, time: float
    ) -> None:
        # Any crossing invalidates R: re-collect everything and start over.
        # (The server already recorded the updater's value in the table.)
        self.recomputations += 1
        others = [i for i in server.stream_ids if i != stream_id]
        server.probe_all(others)
        self._resolve(server)

    @property
    def answer(self) -> frozenset[int]:
        if self._state is None:
            return frozenset()
        return self._state.answer_snapshot()

    @property
    def region(self) -> tuple[float, float] | None:
        return self._region
