"""ZT-RP: zero-tolerance k-NN via the range view (Section 5.2.1).

A k-NN query is viewed as a range query over the bound ``R`` that encloses
the k-th nearest neighbour: while no object crosses ``R``, the k objects
inside it remain the exact answer.  The protocol's weakness — and the
reason FT-RP exists — is that *any* crossing invalidates ``R``: the server
must re-collect every value, recompute ``R``, and announce it to every
stream ("it is very sensitive to the situation when an object's value
crosses R").  Each crossing therefore costs about ``3n`` messages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protocols.base import FilterProtocol
from repro.queries.base import RankBasedQuery
from repro.server.answers import AnswerSet

if TYPE_CHECKING:
    from repro.server.server import Server


class ZeroToleranceKnnProtocol(FilterProtocol):
    """Exact k-NN answering with a single shared bound ``R``."""

    name = "ZT-RP"

    def __init__(self, query: RankBasedQuery) -> None:
        self.query = query
        self._answer = AnswerSet()
        self._known: dict[int, float] = {}
        self._region: tuple[float, float] | None = None
        self.recomputations = 0

    def initialize(self, server: "Server") -> None:
        if server.n_streams <= self.query.k:
            raise ValueError(
                f"ZT-RP needs more than k = {self.query.k} streams"
            )
        self._known = server.probe_all()
        self._resolve(server)

    def _resolve(self, server: "Server") -> None:
        """Recompute R from fresh values and deploy it everywhere."""
        order = sorted(
            self._known,
            key=lambda i: (self.query.distance(self._known[i]), i),
        )
        k = self.query.k
        self._answer.replace(order[:k])
        d_in = self.query.distance(self._known[order[k - 1]])
        d_out = self.query.distance(self._known[order[k]])
        threshold = (d_in + d_out) / 2.0
        self._region = self.query.region(threshold)
        lower, upper = self._region
        for stream_id in server.stream_ids:
            server.deploy(stream_id, lower, upper)

    def on_update(
        self, server: "Server", stream_id: int, value: float, time: float
    ) -> None:
        # Any crossing invalidates R: re-collect everything and start over.
        self._known[stream_id] = value
        self.recomputations += 1
        others = [i for i in server.stream_ids if i != stream_id]
        fresh = server.probe_all(others)
        self._known.update(fresh)
        self._resolve(server)

    @property
    def answer(self) -> frozenset[int]:
        return self._answer.snapshot()

    @property
    def region(self) -> tuple[float, float] | None:
        return self._region
