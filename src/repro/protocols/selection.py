"""Heuristics for placing false-positive / false-negative filters.

Section 6.2 (Figure 14) compares two placements of the silencing filters
FT-NRP hands out during initialization:

* **random** — candidates drawn uniformly;
* **boundary-nearest** — candidates whose values lie closest to the query
  range's boundary, i.e. the streams most likely to cross it soon.
  Silencing exactly those streams absorbs the most would-be updates,
  which is why the paper finds it dominates random selection.

A heuristic returns candidates in *preference order*; protocols take the
first ``count`` for silencing and also use the order when ``Fix_Error``
needs "a stream with a false-positive filter".
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


def boundary_distance(value: float, lower: float, upper: float) -> float:
    """Distance from *value* to the nearest endpoint of ``[lower, upper]``."""
    if lower <= value <= upper:
        return min(value - lower, upper - value)
    if value < lower:
        return lower - value
    return value - upper


class SelectionHeuristic(ABC):
    """Orders silencing-filter candidates by preference."""

    #: Short name for results tables.
    name: str = "abstract"

    @abstractmethod
    def order(
        self,
        candidates: dict[int, float],
        lower: float,
        upper: float,
    ) -> list[int]:
        """Return candidate ids, most-preferred first.

        Parameters
        ----------
        candidates:
            Mapping of stream id to its current value.
        lower, upper:
            The query range (or the k-NN bound ``R``) the filters guard.
        """

    def select(
        self,
        candidates: dict[int, float],
        count: int,
        lower: float,
        upper: float,
    ) -> list[int]:
        """The *count* most-preferred candidates."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self.order(candidates, lower, upper)[:count]


class RandomSelection(SelectionHeuristic):
    """Uniformly random preference order (seeded, hence reproducible)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def order(
        self,
        candidates: dict[int, float],
        lower: float,
        upper: float,
    ) -> list[int]:
        ids = sorted(candidates)
        self._rng.shuffle(ids)
        return [int(i) for i in ids]


class BoundaryNearestSelection(SelectionHeuristic):
    """Prefer streams whose values sit closest to the range boundary."""

    name = "boundary-nearest"

    def order(
        self,
        candidates: dict[int, float],
        lower: float,
        upper: float,
    ) -> list[int]:
        return sorted(
            candidates,
            key=lambda i: (boundary_distance(candidates[i], lower, upper), i),
        )
