"""ZT-NRP: the zero-tolerance protocol for range queries (Section 5.1).

Every stream's filter *is* the query range ``[l, u]``, so each filter
evaluates the range predicate locally and reports exactly the membership
flips.  The answer is always exact, and — unlike the no-filter baseline —
value changes that do not cross the range boundary cost nothing.

Server-side state lives in the shared :class:`~repro.state.table.
StreamStateTable`: the answer is the table's membership mask, and the
deployed range is recorded in its constraint columns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protocols.base import FilterProtocol
from repro.queries.range_query import RangeQuery

if TYPE_CHECKING:
    from repro.server.server import Server
    from repro.state.table import StreamStateTable


class ZeroToleranceRangeProtocol(FilterProtocol):
    """Deploy ``[l, u]`` everywhere; track membership flips."""

    name = "ZT-NRP"
    # Maintenance is a pure per-stream membership flip: no probes, no
    # redeployments, no cross-stream state — shards replay independently.
    decomposable_maintenance = True
    # Stronger still: the whole maintenance reaction to an update is
    # "answer membership := deployed-interval containment of the
    # reported value" — no messages back, no constraint changes, no
    # listeners, no per-stream state outside the table.  That is the
    # contract the dispatch kernel's fully-columnar path needs to apply
    # crossings (not just quiescent prefixes) as window operations
    # (DESIGN.md §9).
    columnar_maintenance = True

    def __init__(self, query: RangeQuery) -> None:
        self.query = query
        self._state: "StreamStateTable | None" = None

    def initialize(self, server: "Server") -> None:
        state = self._state = server.state
        values = server.probe_all()
        state.answer_replace(
            stream_id
            for stream_id, value in values.items()
            if self.query.matches(value)
        )
        for stream_id in server.stream_ids:
            # Knowledge is fresh (we just probed), so no belief is attached.
            server.deploy(stream_id, self.query.lower, self.query.upper)

    def on_update(
        self, server: "Server", stream_id: int, value: float, time: float
    ) -> None:
        assert self._state is not None, "initialize() must run first"
        if self.query.matches(value):
            self._state.answer_add(stream_id)
        else:
            self._state.answer_discard(stream_id)

    @property
    def answer(self) -> frozenset[int]:
        if self._state is None:
            return frozenset()
        return self._state.answer_snapshot()
