"""ZT-NRP: the zero-tolerance protocol for range queries (Section 5.1).

Every stream's filter *is* the query range ``[l, u]``, so each filter
evaluates the range predicate locally and reports exactly the membership
flips.  The answer is always exact, and — unlike the no-filter baseline —
value changes that do not cross the range boundary cost nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protocols.base import FilterProtocol
from repro.queries.range_query import RangeQuery
from repro.server.answers import AnswerSet

if TYPE_CHECKING:
    from repro.server.server import Server


class ZeroToleranceRangeProtocol(FilterProtocol):
    """Deploy ``[l, u]`` everywhere; track membership flips."""

    name = "ZT-NRP"

    def __init__(self, query: RangeQuery) -> None:
        self.query = query
        self._answer = AnswerSet()

    def initialize(self, server: "Server") -> None:
        values = server.probe_all()
        self._answer.replace(
            stream_id
            for stream_id, value in values.items()
            if self.query.matches(value)
        )
        for stream_id in server.stream_ids:
            # Knowledge is fresh (we just probed), so no belief is attached.
            server.deploy(stream_id, self.query.lower, self.query.upper)

    def on_update(
        self, server: "Server", stream_id: int, value: float, time: float
    ) -> None:
        if self.query.matches(value):
            self._answer.add(stream_id)
        else:
            self._answer.discard(stream_id)

    @property
    def answer(self) -> frozenset[int]:
        return self._answer.snapshot()
