"""Crossing and churn profiles of a workload against a query."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.queries.base import RankBasedQuery
from repro.queries.range_query import RangeQuery
from repro.streams.trace import StreamTrace


@dataclass(frozen=True)
class CrossingProfile:
    """How a trace's updates interact with a range boundary.

    Attributes
    ----------
    total_updates:
        Number of records in the trace.
    crossings:
        Updates that flipped range membership — ZT-NRP's exact cost.
    crossing_streams:
        Number of distinct streams that crossed at least once.
    per_stream:
        ``stream_id -> crossing count`` for every crossing stream.
    initial_selectivity:
        Fraction of streams initially inside the range.
    """

    total_updates: int
    crossings: int
    crossing_streams: int
    per_stream: dict[int, int]
    initial_selectivity: float

    @property
    def crossing_rate(self) -> float:
        """Crossings per update — the fraction of traffic filters pass."""
        if self.total_updates == 0:
            return 0.0
        return self.crossings / self.total_updates

    def concentration(self, top: int) -> float:
        """Fraction of all crossings owned by the *top* busiest streams.

        High concentration is what silencer placement exploits: silencing
        `top` well-chosen streams suppresses this fraction of messages.
        """
        if self.crossings == 0:
            return 0.0
        busiest = sorted(self.per_stream.values(), reverse=True)[:top]
        return sum(busiest) / self.crossings


def range_crossing_profile(
    trace: StreamTrace, query: RangeQuery
) -> CrossingProfile:
    """Replay *trace* against *query*'s boundary and tally crossings."""
    inside = query.matches_array(trace.initial_values).copy()
    initial_selectivity = float(inside.mean()) if len(inside) else 0.0
    per_stream: Counter[int] = Counter()
    crossings = 0
    for i in range(trace.n_records):
        stream_id = int(trace.stream_ids[i])
        now_inside = query.matches(float(trace.values[i]))
        if now_inside != inside[stream_id]:
            inside[stream_id] = now_inside
            per_stream[stream_id] += 1
            crossings += 1
    return CrossingProfile(
        total_updates=trace.n_records,
        crossings=crossings,
        crossing_streams=len(per_stream),
        per_stream=dict(per_stream),
        initial_selectivity=initial_selectivity,
    )


@dataclass(frozen=True)
class RankChurnProfile:
    """Stability of a rank-based query's answer over a trace.

    ``boundary_crossings`` counts updates that moved a stream across the
    k-th/(k+1)-st rank boundary (the events ZT-RP pays ~3n for);
    ``answer_changes`` counts updates after which the true top-k set
    differs from before.
    """

    total_updates: int
    answer_changes: int
    boundary_crossings: int

    @property
    def churn_rate(self) -> float:
        if self.total_updates == 0:
            return 0.0
        return self.answer_changes / self.total_updates


def rank_churn_profile(
    trace: StreamTrace, query: RankBasedQuery, sample_every: int = 1
) -> RankChurnProfile:
    """Measure how often the true top-k answer changes along *trace*.

    ``sample_every`` thins the (O(n) per record) evaluation for large
    traces; counts are then extrapolations of the sampled records only.
    """
    if sample_every < 1:
        raise ValueError("sample_every must be >= 1")
    values = trace.initial_values.copy()
    previous = query.true_answer(values)
    answer_changes = 0
    boundary_crossings = 0
    sampled = 0
    for i in range(trace.n_records):
        stream_id = int(trace.stream_ids[i])
        values[stream_id] = trace.values[i]
        if i % sample_every != 0:
            continue
        sampled += 1
        current = query.true_answer(values)
        if current != previous:
            answer_changes += 1
            symmetric_difference = previous ^ current
            if stream_id in symmetric_difference:
                boundary_crossings += 1
        previous = current
    return RankChurnProfile(
        total_updates=sampled,
        answer_changes=answer_changes,
        boundary_crossings=boundary_crossings,
    )
