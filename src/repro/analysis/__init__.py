"""Workload analysis: the quantities that drive protocol cost.

Filter protocols pay for *boundary crossings*, not updates, so
understanding a workload means understanding its crossing structure:
how many updates cross a query's boundary, how concentrated those
crossings are on few streams (what the boundary-nearest heuristic can
exploit), and how rank churn behaves for rank-based queries.  These
utilities compute exactly that, and back the diagnostics quoted in
EXPERIMENTS.md.
"""

from repro.analysis.crossings import (
    CrossingProfile,
    range_crossing_profile,
    rank_churn_profile,
)

__all__ = [
    "CrossingProfile",
    "range_crossing_profile",
    "rank_churn_profile",
]
