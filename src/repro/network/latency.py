"""Latency-modeled delivery: the channel discipline that relaxes
correctness requirement 2.

The paper assumes constraint resolution is atomic with respect to the
data; :class:`~repro.network.channel.SynchronousChannel` models that with
zero-virtual-latency delivery.  :class:`LatencyChannel` relaxes exactly
the *data-propagation* half of the assumption: update reports (uplink)
and constraint deployments (downlink) spend a modeled delay in flight,
held in a deterministic priority queue keyed by ``(virtual delivery
time, send sequence)`` and drained through the simulation engine's event
loop.  Probe round-trips stay synchronous — they are the protocols'
resolution RPC, and requirement 2 keeps *resolution* atomic; what goes
stale under latency is the server's belief between resolutions
(DESIGN.md §8).

Determinism and ordering guarantees:

* **Deterministic replay.**  Delays come from a :class:`LatencyModel` —
  fixed, or a seeded distribution over
  :class:`repro.sim.rng.RandomStreams` — so two runs with the same seed
  deliver every message at the same virtual instant in the same order.
* **Per-stream FIFO.**  Messages of one stream and direction never
  overtake each other: a draw that would land earlier than a previously
  scheduled delivery for the same ``(direction, stream)`` is clamped to
  it (TCP-like ordering per flow).
* **Exactly-once.**  Every sent message is delivered exactly once —
  either by its engine event or by a forced
  :meth:`LatencyChannel.drain_in_flight` at end of replay.
* **Zero delay is synchronous.**  A message whose sampled delay is zero
  is delivered inline, byte-for-byte the synchronous discipline — which
  is what makes ``latency=0`` runs ledger-identical to
  ``SynchronousChannel`` runs (tests/network/test_latency_equivalence).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable

from repro.network.accounting import MessageLedger
from repro.network.channel import Channel
from repro.network.messages import Message
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RandomStreams

#: Sampler signature: ``sample(is_uplink) -> non-negative delay``.
Sampler = Callable[[bool], float]


def _require_non_negative(name: str, value: float) -> float:
    value = float(value)
    if not value >= 0.0:  # also rejects NaN
        raise ValueError(f"{name} must be non-negative, got {value}")
    if value == float("inf"):
        raise ValueError(f"{name} must be finite")
    return value


@dataclass(frozen=True)
class LatencyModel:
    """Base class of delivery-delay models.

    Models are frozen values so a :class:`repro.api.Deployment` carrying
    one stays hashable and comparable; each channel materializes its own
    sampler via :meth:`make_sampler`, passing its channel index so a
    sharded assembly's shards draw from distinct (but per-run
    deterministic) RNG streams instead of replaying one sequence.
    """

    def make_sampler(self, channel: int = 0) -> Sampler:
        raise NotImplementedError

    @property
    def is_zero(self) -> bool:
        """True when every delay this model can ever sample is ``0.0``.

        Zero models keep the :class:`LatencyChannel` code path (the
        differential-testing configuration) but are guaranteed to
        deliver inline; the shard transport uses this to accept
        ``latency=0`` while rejecting models with real in-flight time.
        Unknown subclasses conservatively answer ``False``.
        """
        return False


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """A constant per-direction delay (deterministic, no RNG).

    ``FixedLatency(0.0, 0.0)`` is the degenerate model every message of
    which is delivered synchronously.
    """

    uplink: float = 0.0
    downlink: float = 0.0

    def __post_init__(self) -> None:
        _require_non_negative("uplink latency", self.uplink)
        _require_non_negative("downlink latency", self.downlink)

    @classmethod
    def symmetric(cls, delay: float) -> "FixedLatency":
        """The same fixed *delay* in both directions."""
        return cls(uplink=float(delay), downlink=float(delay))

    def make_sampler(self, channel: int = 0) -> Sampler:
        uplink, downlink = float(self.uplink), float(self.downlink)
        return lambda is_uplink: uplink if is_uplink else downlink

    @property
    def is_zero(self) -> bool:
        return self.uplink == 0.0 and self.downlink == 0.0


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Per-message delays drawn uniformly from ``[low, high]``.

    Draws come from two named :class:`~repro.sim.rng.RandomStreams`
    generators (one per direction), so uplink draw counts never perturb
    downlink delays and runs are reproducible in *seed*.
    """

    low: float
    high: float
    seed: int = 0

    def __post_init__(self) -> None:
        _require_non_negative("low latency bound", self.low)
        _require_non_negative("high latency bound", self.high)
        if self.high < self.low:
            raise ValueError(
                f"high bound {self.high} below low bound {self.low}"
            )

    def make_sampler(self, channel: int = 0) -> Sampler:
        streams = RandomStreams(seed=self.seed)
        uplink = streams.get(f"latency-uplink-{channel}")
        downlink = streams.get(f"latency-downlink-{channel}")
        low, high = float(self.low), float(self.high)
        return lambda is_uplink: float(
            (uplink if is_uplink else downlink).uniform(low, high)
        )

    @property
    def is_zero(self) -> bool:
        return self.high == 0.0


@dataclass(frozen=True)
class ExponentialLatency(LatencyModel):
    """Per-message exponential delays with the given per-direction means.

    The memoryless model of queueing-style network delay; seeded exactly
    like :class:`UniformLatency`.
    """

    mean_uplink: float
    mean_downlink: float
    seed: int = 0

    def __post_init__(self) -> None:
        _require_non_negative("mean uplink latency", self.mean_uplink)
        _require_non_negative("mean downlink latency", self.mean_downlink)

    def make_sampler(self, channel: int = 0) -> Sampler:
        streams = RandomStreams(seed=self.seed)
        uplink = streams.get(f"latency-uplink-{channel}")
        downlink = streams.get(f"latency-downlink-{channel}")
        means = {True: float(self.mean_uplink), False: float(self.mean_downlink)}

        def sample(is_uplink: bool) -> float:
            mean = means[is_uplink]
            if mean == 0.0:
                return 0.0
            generator = uplink if is_uplink else downlink
            return float(generator.exponential(mean))

        return sample

    @property
    def is_zero(self) -> bool:
        return self.mean_uplink == 0.0 and self.mean_downlink == 0.0


def as_latency_model(latency) -> LatencyModel | None:
    """Coerce a deployment's ``latency=`` value to a model.

    ``None`` means the synchronous discipline; a bare number is a
    symmetric fixed delay (``0.0`` still selects :class:`LatencyChannel`,
    with inline delivery — the differential-testing configuration); a
    :class:`LatencyModel` passes through.
    """
    if latency is None:
        return None
    if isinstance(latency, LatencyModel):
        return latency
    if isinstance(latency, bool):
        raise TypeError("latency must be a number or LatencyModel, not bool")
    if isinstance(latency, (int, float)):
        return FixedLatency.symmetric(_require_non_negative("latency", latency))
    raise TypeError(
        f"latency must be None, a non-negative number, or a LatencyModel, "
        f"got {latency!r}"
    )


class LatencyChannel(Channel):
    """A channel whose data-plane messages spend modeled time in flight.

    Parameters
    ----------
    ledger:
        Message accounting, charged at *send* time (a message costs the
        same however long it flies; phase attribution follows the phase
        in force when the protocol emitted it).
    engine:
        The simulation engine whose event loop drains deliveries.
    model:
        The per-direction delay model.

    Probe requests/replies are always delivered inline (see the module
    docstring); updates and constraints with a positive sampled delay
    are held in the in-flight heap and delivered by an engine event at
    ``send time + delay``, clamped to per-``(direction, stream)`` FIFO.
    Taps fire at delivery, which is what keeps the batched replay's
    deferred-write flushing correct under latency.
    """

    def __init__(
        self,
        ledger: MessageLedger,
        engine: SimulationEngine,
        model: LatencyModel,
        channel_index: int = 0,
    ) -> None:
        super().__init__(ledger)
        self.engine = engine
        self.model = model
        self.channel_index = int(channel_index)
        self._sample = model.make_sampler(self.channel_index)
        #: The in-flight heap: ``(delivery time, send seq, message)``.
        self._in_flight: list[tuple[float, int, Message]] = []
        self._seq = 0
        self._route_count = 0
        #: When True the channel never self-schedules delivery events;
        #: an external stepper (the shard transport's in-flight plane)
        #: calls :meth:`deliver_due` / :meth:`extract_in_flight` /
        #: :meth:`acknowledge_extracted` to drive deliveries in the
        #: global order it alone can see.
        self.external_delivery = False
        #: Per-(is_uplink, stream) FIFO floor: no later send of the same
        #: flow may be delivered before an earlier one.
        self._fifo_floor: dict[tuple[bool, int], float] = {}
        #: Per-flow count of messages currently in flight; a zero-delay
        #: draw may only deliver inline while its flow's count is zero
        #: (otherwise it would overtake an earlier in-flight message).
        self._flow_in_flight: dict[tuple[bool, int], int] = {}
        #: Virtual time each stream last had a message delivered *late*
        #: (deferred) — the staleness window's "recently corrected"
        #: evidence.  Inline deliveries are synchronous behavior and are
        #: deliberately not evidence of staleness.
        self._last_delivery: dict[int, float] = {}
        self._delivered_count = 0
        self._deferred_delivered_count = 0

    # ------------------------------------------------------------------
    # Introspection (session drain barriers, staleness classification)
    # ------------------------------------------------------------------
    @property
    def in_flight_count(self) -> int:
        """Number of messages currently held in flight."""
        return len(self._in_flight)

    @property
    def delivered_count(self) -> int:
        """Messages delivered so far (inline and deferred)."""
        return self._delivered_count

    @property
    def deferred_delivered_count(self) -> int:
        """Deliveries that actually spent time in flight.

        Zero means the run so far is byte-identical to a synchronous
        one — the staleness classifier's provable-prefix evidence.
        """
        return self._deferred_delivered_count

    @property
    def next_delivery_time(self) -> float | None:
        """Earliest scheduled delivery, or ``None`` when nothing flies."""
        if not self._in_flight:
            return None
        return self._in_flight[0][0]

    def in_flight_stream_ids(self) -> set[int]:
        """Streams with at least one message currently in flight."""
        return {message.stream_id for _, _, message in self._in_flight}

    def last_delivery_time(self, stream_id: int) -> float | None:
        """When *stream_id* last had a *deferred* delivery, if ever."""
        return self._last_delivery.get(int(stream_id))

    def recently_delivered_streams(self, time: float, window: float) -> set[int]:
        """Streams with a deferred delivery within ``[time - window, time]``."""
        return {
            stream_id
            for stream_id, delivered in self._last_delivery.items()
            if time - delivered <= window
        }

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_to_server(self, message: Message) -> None:
        if self._server_handler is None:
            raise RuntimeError("no server bound to channel")
        self.ledger.record(message)
        self._route(message, is_uplink=True)

    def send_to_source(self, message: Message) -> None:
        if message.stream_id not in self._source_handlers:
            raise RuntimeError(f"no source {message.stream_id} bound to channel")
        self.ledger.record(message)
        self._route(message, is_uplink=False)

    def _route(self, message: Message, is_uplink: bool) -> None:
        self._route_count += 1
        if message.kind.is_probe:
            # The synchronous resolution RPC: a probe never queues, and
            # never carries flow-ordering obligations.
            self._deliver(message, self.engine.now)
            return
        delay = self._sample(is_uplink)
        if delay < 0:  # pragma: no cover - models validate already
            raise ValueError(f"latency model produced negative delay {delay}")
        key = (is_uplink, message.stream_id)
        floor = self._fifo_floor.get(key)
        if (
            delay == 0.0
            and not self._flow_in_flight.get(key)
            and (floor is None or floor <= self.engine.now)
        ):
            self._deliver(message, self.engine.now)
            return
        # A zero draw behind an in-flight flow-mate — or behind a
        # flow-mate force-delivered at a future heap time, whose FIFO
        # floor outlives it — joins the heap at the floor instead of
        # overtaking it inline.
        delivery_time = self.engine.now + delay
        if floor is not None and delivery_time < floor:
            delivery_time = floor
        self._fifo_floor[key] = delivery_time
        self._flow_in_flight[key] = self._flow_in_flight.get(key, 0) + 1
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._in_flight, (delivery_time, seq, message))
        if not self.external_delivery:
            self.engine.schedule_at(
                delivery_time, self._deliver_due, label="latency-delivery"
            )

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver(self, message: Message, time: float, deferred: bool = False) -> None:
        self._delivered_count += 1
        if deferred:
            self._deferred_delivered_count += 1
            self._settle_flow(
                (message.kind.is_uplink, message.stream_id), time
            )
        if message.kind.is_uplink:
            self._deliver_to_server(message)
        else:
            self._deliver_to_source(message)

    def _settle_flow(self, key: tuple[bool, int], time: float) -> None:
        """Book one deferred delivery against the flow's bookkeeping.

        The flow count is pruned when it reaches zero, and the FIFO
        floor with it — but only once the engine clock has caught up to
        the floor.  A floor still in the future (a forced drain just
        delivered at a future heap time) must survive so a subsequent
        zero-delay send on the flow is clamped to it instead of
        overtaking the drained flow-mate inline.
        """
        count = self._flow_in_flight.get(key, 0) - 1
        if count > 0:
            self._flow_in_flight[key] = count
        else:
            self._flow_in_flight.pop(key, None)
            floor = self._fifo_floor.get(key)
            if floor is not None and floor <= self.engine.now:
                del self._fifo_floor[key]
        previous = self._last_delivery.get(key[1])
        if previous is None or time > previous:
            self._last_delivery[key[1]] = time

    def _deliver_due(self) -> None:
        """Engine-event action: deliver everything whose time has come.

        One event is scheduled per send; later events that find their
        message already delivered (by an earlier event's loop or a
        forced drain) fire as no-ops.
        """
        now = self.engine.now
        while self._in_flight and self._in_flight[0][0] <= now:
            time, _, message = heapq.heappop(self._in_flight)
            self._deliver(message, time, deferred=True)

    def drain_in_flight(self) -> int:
        """Force-deliver every in-flight message, in heap order.

        Used at end of replay so the run's final state reflects all sent
        traffic.  Deliveries may trigger protocol steps that send more
        delayed messages; those join the heap and are drained by the
        same loop.  Returns the number of messages delivered.
        """
        drained = 0
        while self._in_flight:
            time, _, message = heapq.heappop(self._in_flight)
            self._deliver(message, time, deferred=True)
            drained += 1
        return drained

    # ------------------------------------------------------------------
    # External stepping (the shard transport's in-flight plane)
    # ------------------------------------------------------------------
    @property
    def send_seq(self) -> int:
        """Watermark: the send seq the next queued message will get.

        An external stepper snapshots this before an operation and asks
        :meth:`pending_after` for the entries the operation queued.
        """
        return self._seq

    @property
    def route_count(self) -> int:
        """Total messages routed (queued *or* delivered inline)."""
        return self._route_count

    @property
    def next_delivery_key(self) -> tuple[float, int] | None:
        """The ``(delivery time, send seq)`` key of the earliest entry."""
        if not self._in_flight:
            return None
        time, seq, _ = self._in_flight[0]
        return time, seq

    def pending_after(self, seq: int) -> list[tuple[float, int, Message]]:
        """In-flight entries with send seq > *seq*, in (time, seq) order."""
        return sorted(
            entry for entry in self._in_flight if entry[1] > seq
        )

    def extract_in_flight(
        self, uplink: bool = True
    ) -> list[tuple[float, int, Message]]:
        """Remove and return every pending entry of one direction.

        The caller assumes delivery responsibility for the extracted
        entries (the transport coordinator delivers uplinks itself from
        the merged plane).  Flow counts, FIFO floors, and delivery
        counters are *not* touched here: the flow stays "in flight"
        locally — which is what keeps zero-draw inline eligibility
        byte-identical to the single-process channel — until the caller
        books each delivery via :meth:`acknowledge_extracted`.
        """
        keep: list[tuple[float, int, Message]] = []
        extracted: list[tuple[float, int, Message]] = []
        for entry in self._in_flight:
            target = extracted if entry[2].kind.is_uplink == uplink else keep
            target.append(entry)
        if extracted:
            self._in_flight = keep
            heapq.heapify(self._in_flight)
            extracted.sort()
        return extracted

    def acknowledge_extracted(
        self, stream_id: int, time: float, is_uplink: bool = True
    ) -> None:
        """Book a delivery performed elsewhere for an extracted entry.

        Mirrors exactly the bookkeeping a local deferred delivery would
        have done — counters, flow decrement (with pruning), FIFO-floor
        retirement, last-delivery evidence — without touching any
        handler.
        """
        self._delivered_count += 1
        self._deferred_delivered_count += 1
        self._settle_flow((bool(is_uplink), int(stream_id)), float(time))

    def deliver_due(
        self,
        limit_time: float,
        limit_seq: int | None = None,
        stop_after_send: bool = False,
    ) -> tuple[int, bool]:
        """Deliver pending entries up to ``(limit_time, limit_seq)``.

        The external stepper's delivery hook: pops heap entries whose
        ``(delivery time, send seq)`` key is at or below the limit and
        delivers each as a deferred delivery, exactly as the engine
        event loop would have.  With ``stop_after_send`` the loop
        returns early as soon as a delivery routed a new message —
        giving the caller the chance to observe (and react to) that
        send before later same-batch deliveries fire, which is how the
        transport reproduces the engine's nested-reaction interleave.

        Returns ``(delivered, stopped_early)``.
        """
        limit = (
            float(limit_time),
            math.inf if limit_seq is None else limit_seq,
        )
        delivered = 0
        while self._in_flight:
            time, seq, message = self._in_flight[0]
            if (time, seq) > limit:
                break
            heapq.heappop(self._in_flight)
            routed_before = self._route_count
            self._deliver(message, time, deferred=True)
            delivered += 1
            if stop_after_send and self._route_count != routed_before:
                return delivered, True
        return delivered, False
