"""Columnar wire frames for in-flight heap entries (DESIGN.md §10).

The shard transport's in-flight plane needs a cross-process
representation of :class:`~repro.network.latency.LatencyChannel` heap
entries — messages whose delivery time falls *between* transport
epochs.  A frame packs one epoch's worth of ``(delivery time, send
seq, message)`` entries into contiguous little-endian numpy columns,
the same codec vocabulary as the spatial batch frames
(:mod:`repro.spatial.messages`), so an epoch boundary costs one recv
plus vectorized column reads instead of a per-entry pickle loop.

Two shapes share the :class:`InFlightFrame` container:

* **update frames** carry extracted uplink entries wholesale —
  delivery time, send seq, stream row, send-time stamp, and the scalar
  payload — because the coordinator delivers these itself from the
  merged plane (the spatial transport substitutes a
  :class:`~repro.spatial.messages.PointBatchFrame` for the payload
  column);
* **pending frames** carry downlink entries as metadata only
  (``values is None``) — the install stays authoritative in the
  worker's local heap, the coordinator merely needs the delivery key
  to schedule the worker's clock step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_I8 = np.dtype("<i8")
_F8 = np.dtype("<f8")


def le_column(values, dtype, shape=None) -> np.ndarray:
    """Coerce to a C-contiguous little-endian column of *dtype*."""
    column = np.ascontiguousarray(values, dtype=dtype)
    if shape is not None and column.shape != shape:
        raise ValueError(
            f"frame column has shape {column.shape}, expected {shape}"
        )
    return column


@dataclass(frozen=True)
class InFlightFrame:
    """One batch of in-flight heap entries on the wire.

    Parallel little-endian columns, one row per heap entry, rows in
    ``(delivery, seq)`` heap order: ``delivery`` (``<f8`` delivery
    times), ``seqs`` (``<i8`` channel send seqs — the FIFO tiebreaker),
    ``streams`` (``<i8`` local stream rows), ``sends`` (``<f8``
    send-time stamps, the ``message.time`` the receiver must preserve),
    and ``values`` (``<f8`` scalar payloads; ``None`` for a
    metadata-only pending frame).
    """

    delivery: np.ndarray
    seqs: np.ndarray
    streams: np.ndarray
    sends: np.ndarray
    values: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.seqs)


def _frame(delivery, seqs, streams, sends, values) -> InFlightFrame:
    seqs = le_column(seqs, _I8)
    if seqs.ndim != 1:
        raise ValueError("seqs must be a 1-D column")
    m = len(seqs)
    return InFlightFrame(
        delivery=le_column(delivery, _F8, shape=(m,)),
        seqs=seqs,
        streams=le_column(streams, _I8, shape=(m,)),
        sends=le_column(sends, _F8, shape=(m,)),
        values=(
            None if values is None else le_column(values, _F8, shape=(m,))
        ),
    )


def pack_in_flight(entries) -> InFlightFrame:
    """Frame extracted uplink entries ``[(delivery, seq, message)]``.

    Messages must carry scalar ``value`` payloads
    (:class:`~repro.network.messages.UpdateMessage`); entries are
    framed in the order given, which the channel guarantees is
    ``(delivery, seq)`` heap order.
    """
    return _frame(
        [time for time, _, _ in entries],
        [seq for _, seq, _ in entries],
        [message.stream_id for _, _, message in entries],
        [message.time for _, _, message in entries],
        [message.value for _, _, message in entries],
    )


def pack_pending(entries) -> InFlightFrame:
    """Frame pending entries as delivery metadata (no payload column)."""
    return _frame(
        [time for time, _, _ in entries],
        [seq for _, seq, _ in entries],
        [message.stream_id for _, _, message in entries],
        [message.time for _, _, message in entries],
        None,
    )


def unpack_in_flight(
    frame: InFlightFrame,
) -> list[tuple[float, int, int, float, float | None]]:
    """Decode a frame to ``(delivery, seq, stream, send_time, value)`` rows."""
    values = frame.values
    return [
        (
            float(frame.delivery[i]),
            int(frame.seqs[i]),
            int(frame.streams[i]),
            float(frame.sends[i]),
            None if values is None else float(values[i]),
        )
        for i in range(len(frame))
    ]
