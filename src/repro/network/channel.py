"""The source ↔ server communication channel.

The paper's correctness requirement 2 assumes "stream values do not change
during resolution", i.e. constraint resolution is atomic with respect to
the data.  :class:`SynchronousChannel` — the default delivery discipline —
models exactly that: a message is recorded in the ledger and handed to the
recipient within the same simulation event.

Delivery is pluggable: :class:`~repro.network.latency.LatencyChannel`
subclasses the channel and defers data-plane messages (updates and
constraint deployments) through the simulation engine's event loop to
study how stale beliefs degrade the correctness requirement (DESIGN.md
§8).  Both disciplines share the binding/tap surface defined here, and
taps always observe a message at *delivery* time — for the synchronous
channel the two instants coincide.
"""

from __future__ import annotations

from typing import Callable

from repro.network.accounting import MessageLedger
from repro.network.messages import Message


class Channel:
    """Synchronous message channel with cost accounting.

    Parameters
    ----------
    ledger:
        Every message sent through the channel is charged to this ledger.
    """

    def __init__(self, ledger: MessageLedger) -> None:
        self.ledger = ledger
        self._server_handler: Callable[[Message], None] | None = None
        self._source_handlers: dict[int, Callable[[Message], None]] = {}
        self._taps: list[Callable[[Message], None]] = []

    def bind_server(self, handler: Callable[[Message], None]) -> None:
        """Register the server's message handler."""
        self._server_handler = handler

    def bind_source(self, stream_id: int, handler: Callable[[Message], None]) -> None:
        """Register the handler of source *stream_id*."""
        self._source_handlers[stream_id] = handler

    def add_tap(self, tap: Callable[[Message], None]) -> None:
        """Observe every message without affecting delivery or accounting.

        The batched-replay quiescence table uses a tap to learn which
        sources' filter state may have changed: every membership mutation
        is caused by some message crossing the channel.  Taps fire at
        *delivery* time — identical to send time on this channel, later
        on a latency-modeled one.
        """
        self._taps.append(tap)

    def remove_tap(self, tap: Callable[[Message], None]) -> None:
        """Detach a previously added tap.

        Idempotent: detaching a tap that is not (or no longer) attached
        is a no-op, so a mid-drain bailout can always clean up
        unconditionally.
        """
        try:
            self._taps.remove(tap)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Sending (the delivery discipline; overridden by LatencyChannel)
    # ------------------------------------------------------------------
    def send_to_server(self, message: Message) -> None:
        """Deliver a source-to-server message (update or probe reply)."""
        if self._server_handler is None:
            raise RuntimeError("no server bound to channel")
        self.ledger.record(message)
        self._deliver_to_server(message)

    def send_to_source(self, message: Message) -> None:
        """Deliver a server-to-source message (probe request or constraint)."""
        if message.stream_id not in self._source_handlers:
            raise RuntimeError(f"no source {message.stream_id} bound to channel")
        self.ledger.record(message)
        self._deliver_to_source(message)

    # ------------------------------------------------------------------
    # Delivery (shared by every discipline; taps fire here)
    # ------------------------------------------------------------------
    def _deliver_to_server(self, message: Message) -> None:
        if self._taps:
            for tap in self._taps:
                tap(message)
        self._server_handler(message)

    def _deliver_to_source(self, message: Message) -> None:
        if self._taps:
            for tap in self._taps:
                tap(message)
        self._source_handlers[message.stream_id](message)

    @property
    def source_ids(self) -> list[int]:
        """Identifiers of all bound sources."""
        return sorted(self._source_handlers)


#: The default delivery discipline under its explicit name: today's
#: synchronous zero-virtual-latency channel.  ``Channel`` remains the
#: historical alias used throughout the codebase.
SynchronousChannel = Channel
