"""Message-cost accounting: the paper's performance metric.

Every message that crosses the source-server boundary is recorded here,
classified by :class:`~repro.network.messages.MessageKind` and by
:class:`Phase` (initialization vs. maintenance).  The figures in Section 6
plot *maintenance* messages only, so :meth:`MessageLedger.maintenance_total`
is the headline number; footnote 1 of the paper defines the no-filter
baseline's cost as its update messages, which falls out naturally.
"""

from __future__ import annotations

import enum
from collections import Counter as _Counter
from dataclasses import dataclass

from repro.network.messages import Message, MessageKind


class Phase(enum.Enum):
    """Protocol phase a message is charged to."""

    INITIALIZATION = "initialization"
    MAINTENANCE = "maintenance"


@dataclass(frozen=True)
class LedgerSnapshot:
    """Immutable view of a ledger, for results reporting."""

    initialization: dict[MessageKind, int]
    maintenance: dict[MessageKind, int]

    @property
    def initialization_total(self) -> int:
        return sum(self.initialization.values())

    @property
    def maintenance_total(self) -> int:
        return sum(self.maintenance.values())

    @property
    def total(self) -> int:
        return self.initialization_total + self.maintenance_total

    def maintenance_of(self, kind: MessageKind) -> int:
        return self.maintenance.get(kind, 0)


class MessageLedger:
    """Tallies messages by (phase, kind).

    Protocols flip :attr:`phase` when they enter/leave their initialization
    phase; re-initializations triggered *during* maintenance (e.g. RTP
    Case 2 Step 5, FT-RP bound recomputation) are charged to maintenance,
    matching the paper's accounting where only the one-off start-up cost is
    excluded from the figures.
    """

    def __init__(self) -> None:
        self._counts: dict[Phase, _Counter] = {
            Phase.INITIALIZATION: _Counter(),
            Phase.MAINTENANCE: _Counter(),
        }
        self.phase = Phase.INITIALIZATION

    def record(self, message: Message) -> None:
        """Charge one message of *message*'s kind to the current phase."""
        self._counts[self.phase][message.kind] += 1

    def record_kind(self, kind: MessageKind, count: int = 1) -> None:
        """Charge *count* messages of *kind* to the current phase."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._counts[self.phase][kind] += count

    def count(self, kind: MessageKind, phase: Phase | None = None) -> int:
        """Messages of *kind* in *phase* (both phases if ``None``)."""
        if phase is not None:
            return self._counts[phase][kind]
        return sum(self._counts[p][kind] for p in Phase)

    @property
    def maintenance_total(self) -> int:
        """The paper's headline metric: total maintenance messages."""
        return sum(self._counts[Phase.MAINTENANCE].values())

    @property
    def initialization_total(self) -> int:
        return sum(self._counts[Phase.INITIALIZATION].values())

    @property
    def total(self) -> int:
        return self.maintenance_total + self.initialization_total

    def snapshot(self) -> LedgerSnapshot:
        """Freeze the current tallies for reporting."""
        return LedgerSnapshot(
            initialization=dict(self._counts[Phase.INITIALIZATION]),
            maintenance=dict(self._counts[Phase.MAINTENANCE]),
        )

    def reset(self) -> None:
        for counter in self._counts.values():
            counter.clear()
        self.phase = Phase.INITIALIZATION
