"""Messaging substrate between stream sources and the central server.

The paper's cost metric is "the number of maintenance messages required
during the lifetime of the query" (Section 6).  This subpackage provides
the typed message vocabulary exchanged in Figure 3's architecture, a
zero/fixed-latency channel abstraction, and the
:class:`~repro.network.accounting.MessageLedger` that tallies every
message by kind and phase.
"""

from repro.network.accounting import MessageLedger, Phase
from repro.network.channel import Channel
from repro.network.messages import (
    ConstraintMessage,
    Message,
    MessageKind,
    ProbeReplyMessage,
    ProbeRequestMessage,
    UpdateMessage,
)

__all__ = [
    "Channel",
    "ConstraintMessage",
    "Message",
    "MessageKind",
    "MessageLedger",
    "Phase",
    "ProbeReplyMessage",
    "ProbeRequestMessage",
    "UpdateMessage",
]
