"""Messaging substrate between stream sources and the central server.

The paper's cost metric is "the number of maintenance messages required
during the lifetime of the query" (Section 6).  This subpackage provides
the typed message vocabulary exchanged in Figure 3's architecture, the
pluggable delivery disciplines (:class:`SynchronousChannel` — the
paper's atomic-resolution model — and the latency-modeled
:class:`LatencyChannel` of DESIGN.md §8), and the
:class:`~repro.network.accounting.MessageLedger` that tallies every
message by kind and phase.
"""

from repro.network.accounting import MessageLedger, Phase
from repro.network.channel import Channel, SynchronousChannel
from repro.network.latency import (
    ExponentialLatency,
    FixedLatency,
    LatencyChannel,
    LatencyModel,
    UniformLatency,
    as_latency_model,
)
from repro.network.messages import (
    ConstraintMessage,
    Message,
    MessageKind,
    ProbeReplyMessage,
    ProbeRequestMessage,
    UpdateMessage,
)

__all__ = [
    "Channel",
    "ConstraintMessage",
    "ExponentialLatency",
    "FixedLatency",
    "LatencyChannel",
    "LatencyModel",
    "Message",
    "MessageKind",
    "MessageLedger",
    "Phase",
    "ProbeReplyMessage",
    "ProbeRequestMessage",
    "SynchronousChannel",
    "UniformLatency",
    "UpdateMessage",
    "as_latency_model",
]
