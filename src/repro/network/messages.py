"""Typed messages exchanged between stream sources and the server.

Four message kinds cover every interaction in the paper's protocols:

* ``UPDATE`` — a source reports its current value after a filter violation
  (or on every change when no filter is installed);
* ``PROBE_REQUEST`` / ``PROBE_REPLY`` — the server explicitly requests a
  source's current value (RTP Step 4 / Case 3, FT-NRP ``Fix_Error``,
  initialization phases) and the source answers;
* ``CONSTRAINT`` — the server deploys a (new) filter constraint to a source;
  a broadcast of a bound ``R`` to all ``n`` sources therefore costs ``n``
  constraint messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MessageKind(enum.Enum):
    """Classification of a message for cost accounting."""

    UPDATE = "update"
    PROBE_REQUEST = "probe_request"
    PROBE_REPLY = "probe_reply"
    CONSTRAINT = "constraint"

    @property
    def is_uplink(self) -> bool:
        """True for source-to-server messages."""
        return self in (MessageKind.UPDATE, MessageKind.PROBE_REPLY)

    @property
    def is_probe(self) -> bool:
        """True for either half of the probe round-trip.

        Probes are the protocols' synchronous resolution RPC: requirement
        2 keeps resolution atomic, so even a latency-modeled channel
        delivers them within the sending simulation event (DESIGN.md §8).
        """
        return self in (MessageKind.PROBE_REQUEST, MessageKind.PROBE_REPLY)


@dataclass(frozen=True)
class Message:
    """Base class for all messages.

    Attributes
    ----------
    stream_id:
        Identifier of the source this message is from/to.
    time:
        Virtual time at which the message was sent.
    """

    stream_id: int
    time: float

    @property
    def kind(self) -> MessageKind:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class UpdateMessage(Message):
    """Source-to-server value report triggered by a filter violation."""

    value: float = 0.0

    @property
    def kind(self) -> MessageKind:
        return MessageKind.UPDATE


@dataclass(frozen=True)
class ProbeRequestMessage(Message):
    """Server-to-source request for the current value."""

    @property
    def kind(self) -> MessageKind:
        return MessageKind.PROBE_REQUEST


@dataclass(frozen=True)
class ProbeReplyMessage(Message):
    """Source-to-server reply to a probe, carrying the current value."""

    value: float = 0.0

    @property
    def kind(self) -> MessageKind:
        return MessageKind.PROBE_REPLY


@dataclass(frozen=True)
class ConstraintMessage(Message):
    """Server-to-source deployment of a filter constraint.

    ``lower``/``upper`` carry the interval; the degenerate false-positive
    filter is ``(-inf, +inf)`` and the false-negative filter ``(+inf, +inf)``.

    ``assumed_inside`` is the server's belief about which side of the bound
    the source currently sits on.  ``None`` means the server probed the
    source this round and its knowledge is fresh; a non-``None`` value asks
    the source to self-correct (report once) if the belief is stale.
    """

    lower: float = float("-inf")
    upper: float = float("inf")
    assumed_inside: bool | None = None

    @property
    def kind(self) -> MessageKind:
        return MessageKind.CONSTRAINT
