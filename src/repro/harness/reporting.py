"""Plain-text rendering of experiment output.

The paper reports line charts; we reproduce each as a table of the same
series (x-axis value per row, one column per curve) so the shape —
orderings, monotonicity, crossovers — is inspectable from a terminal.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Align *rows* (dicts) into a fixed-width text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0])
    rendered = [
        [_format_cell(row.get(column)) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(line, widths))
        for line in rendered
    )
    parts = [title, header, rule, body] if title else [header, rule, body]
    return "\n".join(parts)


def format_series(
    x_name: str,
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
    title: str = "",
) -> str:
    """Render curves sharing an x-axis, one row per x value.

    ``series`` maps curve name -> y values (aligned with *x_values*).
    """
    rows = []
    for i, x in enumerate(x_values):
        row: dict[str, Any] = {x_name: x}
        for name, ys in series.items():
            row[name] = ys[i] if i < len(ys) else ""
        rows.append(row)
    return format_table(rows, columns=[x_name, *series], title=title)


def _format_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)
