"""Experiment harness: wiring, execution, sweeps, and reporting.

:func:`~repro.harness.runner.run_protocol` is the single entry point that
turns (trace, query, protocol, tolerance) into a
:class:`~repro.harness.results.RunResult` with the paper's message-count
metric and a correctness report.  :mod:`~repro.harness.sweep` iterates it
over parameter grids; :mod:`~repro.harness.reporting` renders the rows the
paper's figures plot.
"""

from repro.harness.config import RunConfig
from repro.harness.results import RunResult
from repro.harness.runner import run_protocol
from repro.harness.sweep import run_grid, sweep_values
from repro.harness.reporting import format_series, format_table

__all__ = [
    "RunConfig",
    "RunResult",
    "format_series",
    "format_table",
    "run_grid",
    "run_protocol",
    "sweep_values",
]
