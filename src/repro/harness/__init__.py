"""Experiment harness: run config, results, reporting — and legacy shims.

Execution entry moved to the declarative facade :mod:`repro.api`
(``Engine.run(QuerySpec, Workload, Deployment)``); this package keeps
the run configuration (:class:`~repro.harness.config.RunConfig`), the
scalar result shape (:class:`~repro.harness.results.RunResult`), the
table/series renderers the figures use, and thin deprecation shims for
the old entrypoints (:func:`~repro.harness.runner.run_protocol`,
:mod:`~repro.harness.sweep`) that delegate to the engine with
ledger-identical results.
"""

from repro.harness.config import RunConfig
from repro.harness.results import RunResult
from repro.harness.runner import run_protocol
from repro.harness.sweep import run_grid, sweep_values
from repro.harness.reporting import format_series, format_table

__all__ = [
    "RunConfig",
    "RunResult",
    "format_series",
    "format_table",
    "run_grid",
    "run_protocol",
    "sweep_values",
]
