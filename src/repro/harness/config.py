"""Run configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RunConfig:
    """Knobs of a single simulation run.

    Attributes
    ----------
    check_every:
        Validate tolerance every N-th applied record; ``0`` disables
        checking entirely (benchmark mode — checking a rank query costs
        O(n) per check).  ``1`` checks after every record (test mode).
    strict:
        Raise on the first tolerance violation instead of recording it.
    label:
        Free-form tag copied into the result, e.g. the sweep coordinates.
    """

    check_every: int = 0
    strict: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if self.check_every < 0:
            raise ValueError("check_every must be >= 0")
