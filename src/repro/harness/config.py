"""Run configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.session import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_MIN_CHUNK,
    REPLAY_MODES,
)


@dataclass(frozen=True)
class RunConfig:
    """Knobs of a single simulation run.

    Attributes
    ----------
    check_every:
        Validate tolerance every N-th applied record; ``0`` disables
        checking entirely (benchmark mode — checking a rank query costs
        O(n) per check).  ``1`` checks after every record (test mode).
    strict:
        Raise on the first tolerance violation instead of recording it.
    label:
        Free-form tag copied into the result, e.g. the sweep coordinates.
    replay_mode:
        ``"auto"`` uses the vectorized batched fast path whenever no
        correctness checking is active and falls back to faithful
        per-event replay otherwise; ``"event"`` forces the per-event
        path.  ``"batch"`` requests the fast path unconditionally but
        still downgrades (silently) to per-event replay where batching
        is unsound — checking callbacks active or non-scalar payloads —
        so forcing it can never change results, only speed.  Both paths
        produce identical message ledgers: batching only skips records
        that provably cannot flip any filter.
    batch_size:
        Chunk size of the batched quiescence pre-scan.
    min_chunk:
        Floor of the batched replay's adaptive chunk heuristic: lively
        stretches shrink the scan window, but never below this many
        records per pre-scan.  ``batch_size`` still caps every scan, so
        a floor above the cap simply pins the window to ``batch_size``.
    """

    check_every: int = 0
    strict: bool = False
    label: str = ""
    replay_mode: str = "auto"
    batch_size: int = DEFAULT_BATCH_SIZE
    min_chunk: int = DEFAULT_MIN_CHUNK

    def __post_init__(self) -> None:
        # Reject wrong shapes eagerly and loudly: a malformed knob that
        # slips through here surfaces far downstream as a silently wrong
        # replay path or an opaque numpy error mid-replay.
        if isinstance(self.check_every, bool) or not isinstance(
            self.check_every, int
        ):
            raise TypeError(
                f"check_every must be an int, got "
                f"{type(self.check_every).__name__}"
            )
        if self.check_every < 0:
            raise ValueError(
                f"check_every must be >= 0 (0 disables checking), "
                f"got {self.check_every}"
            )
        if not isinstance(self.replay_mode, str):
            raise TypeError(
                f"replay_mode must be a str, got "
                f"{type(self.replay_mode).__name__}"
            )
        if self.replay_mode not in REPLAY_MODES:
            raise ValueError(
                f"replay_mode must be one of {REPLAY_MODES}, "
                f"got {self.replay_mode!r}"
            )
        if isinstance(self.batch_size, bool) or not isinstance(
            self.batch_size, int
        ):
            raise TypeError(
                f"batch_size must be an int, got "
                f"{type(self.batch_size).__name__}"
            )
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if isinstance(self.min_chunk, bool) or not isinstance(
            self.min_chunk, int
        ):
            raise TypeError(
                f"min_chunk must be an int, got "
                f"{type(self.min_chunk).__name__}"
            )
        if self.min_chunk < 1:
            raise ValueError(
                f"min_chunk must be >= 1, got {self.min_chunk}"
            )
