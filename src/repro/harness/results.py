"""Run results: the numbers the paper's figures plot."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.correctness.checker import CheckerReport
from repro.network.accounting import LedgerSnapshot
from repro.network.messages import MessageKind


@dataclass(frozen=True)
class RunResult:
    """Outcome of one protocol over one trace.

    ``maintenance_messages`` is the paper's headline metric ("number of
    maintenance messages required during the lifetime of the query").
    """

    protocol: str
    ledger: LedgerSnapshot
    checker: CheckerReport | None
    n_streams: int
    n_records: int
    final_answer: frozenset[int]
    label: str = ""
    extras: dict = field(default_factory=dict)

    @property
    def maintenance_messages(self) -> int:
        return self.ledger.maintenance_total

    @property
    def initialization_messages(self) -> int:
        return self.ledger.initialization_total

    @property
    def total_messages(self) -> int:
        return self.ledger.total

    @property
    def update_messages(self) -> int:
        """Maintenance-phase source reports (filter violations)."""
        return self.ledger.maintenance_of(MessageKind.UPDATE)

    @property
    def probe_messages(self) -> int:
        """Maintenance-phase probe round-trips (requests + replies)."""
        return self.ledger.maintenance_of(
            MessageKind.PROBE_REQUEST
        ) + self.ledger.maintenance_of(MessageKind.PROBE_REPLY)

    @property
    def constraint_messages(self) -> int:
        """Maintenance-phase filter (re)deployments."""
        return self.ledger.maintenance_of(MessageKind.CONSTRAINT)

    @property
    def tolerance_ok(self) -> bool:
        """True when every sampled check passed (or checking was off)."""
        return self.checker is None or self.checker.ok

    def row(self) -> dict:
        """Flatten into a reporting-friendly dict."""
        row = {
            "protocol": self.protocol,
            "label": self.label,
            "messages": self.maintenance_messages,
            "updates": self.update_messages,
            "probes": self.probe_messages,
            "constraints": self.constraint_messages,
            "n_streams": self.n_streams,
            "n_records": self.n_records,
            "tolerance_ok": self.tolerance_ok,
        }
        row.update(self.extras)
        return row
