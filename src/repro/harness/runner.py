"""Deprecated entry point: the scalar run loop moved to ``repro.api``.

``run_protocol`` predates the declarative facade; its body now lives in
:func:`repro.api.engine._execute_streams` (single-server deployment).
The shim keeps the exact signature and returns the identical
:class:`RunResult` — only a :class:`DeprecationWarning` is new.  New
code should describe runs declaratively::

    from repro.api import Deployment, Engine, QuerySpec, Workload

    report = Engine().run(
        QuerySpec(protocol="rtp", query=query, tolerance=tolerance),
        Workload.from_trace(trace),
        Deployment.single(check_every=1),
    )

or, with a pre-built protocol instance, ``Engine().run_protocol(...)``.
"""

from __future__ import annotations

import warnings

from repro.harness.config import RunConfig
from repro.harness.results import RunResult
from repro.protocols.base import FilterProtocol
from repro.queries.base import EntityQuery
from repro.streams.trace import StreamTrace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance


def run_protocol(
    trace: StreamTrace,
    protocol: FilterProtocol,
    query: EntityQuery | None = None,
    tolerance: RankTolerance | FractionTolerance | None = None,
    config: RunConfig | None = None,
) -> RunResult:
    """Deprecated: use :class:`repro.api.Engine` (see module docstring).

    Replays *trace* against *protocol* on a single server, exactly as
    before — the shim delegates to the engine's streams executor with a
    ``Deployment.single()`` lifted from *config*.
    """
    warnings.warn(
        "repro.harness.runner.run_protocol is deprecated; use "
        "repro.api.Engine().run(QuerySpec(...), Workload.from_trace(trace), "
        "Deployment.single(...)) — or Engine().run_protocol(...) for a "
        "pre-built protocol instance",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api.engine import _execute_streams
    from repro.api.spec import Deployment

    config = config or RunConfig()
    return _execute_streams(
        trace,
        protocol,
        query=query,
        tolerance=tolerance,
        deployment=Deployment.from_run_config(config),
        label=config.label,
    )
