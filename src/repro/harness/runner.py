"""The run loop: trace in, message counts out.

``run_protocol`` assembles the Figure-3 system through the runtime
kernel — an :class:`~repro.runtime.session.ExecutionSession` owning the
sources with adaptive filters, the channel with its ledger, and the
server hosting one protocol — replays a trace, and (optionally)
validates the tolerance constraint against the ground-truth oracle after
every applied record.  With checking disabled the session's batched
replay fast path is used automatically; it produces identical ledgers.
"""

from __future__ import annotations

from repro.correctness.checker import ToleranceChecker
from repro.correctness.oracle import Oracle
from repro.harness.config import RunConfig
from repro.harness.results import RunResult
from repro.protocols.base import FilterProtocol
from repro.queries.base import EntityQuery
from repro.runtime.session import ExecutionSession
from repro.streams.trace import StreamTrace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance


def run_protocol(
    trace: StreamTrace,
    protocol: FilterProtocol,
    query: EntityQuery | None = None,
    tolerance: RankTolerance | FractionTolerance | None = None,
    config: RunConfig | None = None,
) -> RunResult:
    """Replay *trace* against *protocol* and report message costs.

    Parameters
    ----------
    trace:
        The workload; all protocols in a comparison should receive the
        *same* trace object (or a deterministic regeneration of it).
    protocol:
        A fresh protocol instance (protocols are single-use: they carry
        per-run state).
    query:
        The standing query, needed only when correctness checking is on;
        defaults to ``protocol.query`` when the protocol exposes one.
    tolerance:
        The tolerance to validate against; ``None`` validates exactness.
    config:
        Execution knobs; see :class:`RunConfig`.
    """
    config = config or RunConfig()
    session = ExecutionSession.for_streams(trace, protocol)

    checker: ToleranceChecker | None = None
    oracle: Oracle | None = None
    if config.check_every > 0:
        if query is None:
            query = getattr(protocol, "query", None)
        if query is None:
            raise ValueError("checking requires a query")
        oracle = Oracle(trace.initial_values)
        oracle.register_query(query)
        checker = ToleranceChecker(
            oracle=oracle,
            query=query,
            tolerance=tolerance,
            answer_of=lambda: protocol.answer,
            every=config.check_every,
            strict=config.strict,
        )

    session.initialize(time=0.0)
    if checker is not None:
        checker.check_now(0.0)

    session.replay_trace(
        trace,
        oracle_apply=oracle.apply if oracle is not None else None,
        after_apply=checker.check if checker is not None else None,
        mode=config.replay_mode,
        batch_size=config.batch_size,
    )

    extras = _collect_extras(protocol)
    return RunResult(
        protocol=protocol.name,
        ledger=session.snapshot(),
        checker=checker.report if checker is not None else None,
        n_streams=trace.n_streams,
        n_records=trace.n_records,
        final_answer=protocol.answer,
        label=config.label,
        extras=extras,
    )


def _collect_extras(protocol: FilterProtocol) -> dict:
    """Harvest optional protocol-specific counters for the result row."""
    extras: dict = {}
    for attr in (
        "reinitializations",
        "recomputations",
        "expansions",
        "n_plus",
        "n_minus",
        "count",
    ):
        value = getattr(protocol, attr, None)
        if isinstance(value, (int, float)):
            extras[attr] = value
    return extras
