"""The run loop: trace in, message counts out.

``run_protocol`` assembles the Figure-3 system — sources with adaptive
filters, the channel with its ledger, the server hosting one protocol —
replays a trace through the discrete-event engine, and (optionally)
validates the tolerance constraint against the ground-truth oracle after
every applied record.
"""

from __future__ import annotations

from typing import Callable

from repro.correctness.checker import ToleranceChecker
from repro.correctness.oracle import Oracle
from repro.harness.config import RunConfig
from repro.harness.results import RunResult
from repro.network.accounting import MessageLedger, Phase
from repro.network.channel import Channel
from repro.protocols.base import FilterProtocol
from repro.queries.base import EntityQuery
from repro.queries.range_query import RangeQuery
from repro.server.server import Server
from repro.sim.engine import SimulationEngine
from repro.streams.source import StreamSource
from repro.streams.trace import StreamTrace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance


def run_protocol(
    trace: StreamTrace,
    protocol: FilterProtocol,
    query: EntityQuery | None = None,
    tolerance: RankTolerance | FractionTolerance | None = None,
    config: RunConfig | None = None,
) -> RunResult:
    """Replay *trace* against *protocol* and report message costs.

    Parameters
    ----------
    trace:
        The workload; all protocols in a comparison should receive the
        *same* trace object (or a deterministic regeneration of it).
    protocol:
        A fresh protocol instance (protocols are single-use: they carry
        per-run state).
    query:
        The standing query, needed only when correctness checking is on;
        defaults to ``protocol.query`` when the protocol exposes one.
    tolerance:
        The tolerance to validate against; ``None`` validates exactness.
    config:
        Execution knobs; see :class:`RunConfig`.
    """
    config = config or RunConfig()
    engine = SimulationEngine()
    ledger = MessageLedger()
    channel = Channel(ledger)
    sources = [
        StreamSource(stream_id, value, channel)
        for stream_id, value in enumerate(trace.initial_values)
    ]
    server = Server(channel, protocol)

    checker: ToleranceChecker | None = None
    oracle: Oracle | None = None
    if config.check_every > 0:
        if query is None:
            query = getattr(protocol, "query", None)
        if query is None:
            raise ValueError("checking requires a query")
        oracle = Oracle(trace.initial_values)
        if isinstance(query, RangeQuery):
            oracle.register_range_query(query)
        checker = ToleranceChecker(
            oracle=oracle,
            query=query,
            tolerance=tolerance,
            answer_of=lambda: protocol.answer,
            every=config.check_every,
            strict=config.strict,
        )

    ledger.phase = Phase.INITIALIZATION
    server.initialize(time=0.0)
    ledger.phase = Phase.MAINTENANCE
    if checker is not None:
        checker.check_now(0.0)

    _replay(engine, trace, sources, oracle, checker)

    extras = _collect_extras(protocol)
    return RunResult(
        protocol=protocol.name,
        ledger=ledger.snapshot(),
        checker=checker.report if checker is not None else None,
        n_streams=trace.n_streams,
        n_records=trace.n_records,
        final_answer=protocol.answer,
        label=config.label,
        extras=extras,
    )


def _replay(
    engine: SimulationEngine,
    trace: StreamTrace,
    sources: list[StreamSource],
    oracle: Oracle | None,
    checker: ToleranceChecker | None,
) -> None:
    """Feed trace records through the engine one event at a time.

    Records are pre-sorted, so each fired event schedules its successor —
    O(1) heap work per record instead of heaping the whole trace up front.
    """
    n = trace.n_records
    if n == 0:
        engine.run(until=trace.horizon)
        return
    times = trace.times
    ids = trace.stream_ids
    values = trace.values

    def fire(index: int) -> Callable[[], None]:
        def action() -> None:
            stream_id = int(ids[index])
            value = float(values[index])
            time = float(times[index])
            if oracle is not None:
                oracle.apply(stream_id, value)
            sources[stream_id].apply_value(value, time)
            if checker is not None:
                checker.check(time)
            nxt = index + 1
            if nxt < n:
                engine.schedule_at(float(times[nxt]), fire(nxt))

        return action

    engine.schedule_at(float(times[0]), fire(0))
    engine.run(until=trace.horizon)


def _collect_extras(protocol: FilterProtocol) -> dict:
    """Harvest optional protocol-specific counters for the result row."""
    extras: dict = {}
    for attr in (
        "reinitializations",
        "recomputations",
        "expansions",
        "n_plus",
        "n_minus",
        "count",
    ):
        value = getattr(protocol, attr, None)
        if isinstance(value, (int, float)):
            extras[attr] = value
    return extras
