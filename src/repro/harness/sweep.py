"""Deprecated entry points: parameter sweeps moved to ``repro.api``.

The implementations live in :mod:`repro.api.sweep`; these shims keep
the old names working (identical signatures and results) while steering
callers to the facade.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Iterable, Mapping

from repro.api import sweep as _sweep

#: Kept for backward compatibility: parallel sweeps submitted through the
#: old entry points pickled against this name.
_invoke = _sweep._invoke


def sweep_values(
    run_one: Callable[..., Any],
    parameter: str,
    values: Iterable[Any],
    *,
    parallel: bool = False,
    max_workers: int | None = None,
) -> list[Any]:
    """Deprecated: use :func:`repro.api.sweep_values`."""
    warnings.warn(
        "repro.harness.sweep.sweep_values is deprecated; use "
        "repro.api.sweep_values",
        DeprecationWarning,
        stacklevel=2,
    )
    return _sweep.sweep_values(
        run_one, parameter, values, parallel=parallel, max_workers=max_workers
    )


def run_grid(
    run_one: Callable[..., Any],
    grid: Mapping[str, Iterable[Any]],
    *,
    parallel: bool = False,
    max_workers: int | None = None,
) -> list[dict]:
    """Deprecated: use :func:`repro.api.run_grid`."""
    warnings.warn(
        "repro.harness.sweep.run_grid is deprecated; use repro.api.run_grid",
        DeprecationWarning,
        stacklevel=2,
    )
    return _sweep.run_grid(
        run_one, grid, parallel=parallel, max_workers=max_workers
    )
