"""Parameter sweeps over the run loop."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Mapping


def sweep_values(
    run_one: Callable[..., Any], parameter: str, values: Iterable[Any]
) -> list[Any]:
    """Run *run_one* once per value of a single swept *parameter*."""
    return [run_one(**{parameter: value}) for value in values]


def run_grid(
    run_one: Callable[..., Any], grid: Mapping[str, Iterable[Any]]
) -> list[dict]:
    """Run the cartesian product of *grid* through *run_one*.

    Returns one dict per combination: the grid coordinates plus a
    ``"result"`` key with whatever *run_one* returned.  Iteration order is
    the natural nested-loop order of the grid's insertion order, so rows
    come out grouped the way the paper's figures group their series.
    """
    names = list(grid)
    rows: list[dict] = []
    for combo in itertools.product(*(list(grid[name]) for name in names)):
        params = dict(zip(names, combo))
        rows.append({**params, "result": run_one(**params)})
    return rows
