"""Non-value-based tolerance semantics (Sections 3.3-3.4, 5.2.2).

* :class:`~repro.tolerance.rank_tolerance.RankTolerance` — Definition 1:
  an answer of exactly ``k`` streams, each truly ranking ``<= k + r``.
* :class:`~repro.tolerance.fraction_tolerance.FractionTolerance` —
  Definitions 2-3: bounds on the fractions of false positives and false
  negatives, with the ``Emax+`` / ``Emax-`` budgets of Equations 3-4.
* :mod:`~repro.tolerance.knn_fraction` — the k-NN specialization:
  answer-size bounds (Equations 7-10) and the ``rho+/rho-`` derivation
  (Equations 13-16) that lets FT-NRP answer a k-NN query.
"""

from repro.tolerance.fraction_tolerance import (
    FractionReport,
    FractionTolerance,
)
from repro.tolerance.knn_fraction import (
    RhoPolicy,
    answer_size_bounds,
    derive_rho,
    max_rho_minus,
)
from repro.tolerance.rank_tolerance import RankTolerance

__all__ = [
    "FractionReport",
    "FractionTolerance",
    "RankTolerance",
    "RhoPolicy",
    "answer_size_bounds",
    "derive_rho",
    "max_rho_minus",
]
