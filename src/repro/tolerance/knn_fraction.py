"""Fraction-based tolerance specialized to k-NN queries (Sections 3.4.1, 5.2.2).

Two results from the paper live here:

* **Answer-size bounds** (Equations 7-10).  Because a k-NN query has
  exactly ``k`` true answers, any answer set meeting the tolerance must
  satisfy ``k(1 - eps-) <= |A(t)| <= k / (1 - eps+)``, and with both
  tolerances below 0.5 this pins ``|A(t)|`` to ``[k/2, 2k]``.  FT-RP uses
  these bounds to decide when its estimate bound ``R`` has become "too
  loose" or "too tight".

* **The rho derivation** (Equations 13-16).  Running FT-NRP on the range
  view of a k-NN query with the user's ``eps+/eps-`` directly is unsound:
  a stream silenced by a false-positive filter can *also* create a false
  negative (its unnoticed retreat promotes someone else into the true
  top-k), and vice versa.  The internal tolerances ``rho+/rho-`` fed to
  FT-NRP must therefore satisfy

      ``rho- <= rho+ / (eps+ - 1) + min((1 - eps-) * eps+, eps-)``  (Eq. 15)

  and are maximized on the equality frontier (Eq. 16).  The frontier
  leaves one degree of freedom; :class:`RhoPolicy` names the three natural
  points on it, which the ablation bench compares.
"""

from __future__ import annotations

import enum
import math

from repro.tolerance.fraction_tolerance import FractionTolerance


def answer_size_bounds(
    k: int, tolerance: FractionTolerance
) -> tuple[int, int]:
    """Inclusive ``(min, max)`` admissible answer sizes (Equations 7, 9).

    ``min = ceil(k (1 - eps-))`` and ``max = floor(k / (1 - eps+))``,
    always within ``[k/2, 2k]`` for tolerances below 0.5 (Equations 8, 10).
    """
    if k <= 0:
        raise ValueError("k must be positive")
    lower = math.ceil(k * (1.0 - tolerance.eps_minus) - 1e-9)
    upper = math.floor(k / (1.0 - tolerance.eps_plus) + 1e-9)
    return lower, upper


def max_rho_minus(rho_plus: float, tolerance: FractionTolerance) -> float:
    """The Equation-16 frontier: largest sound ``rho-`` for a ``rho+``.

    ``rho- = rho+ / (eps+ - 1) + min((1 - eps-) eps+, eps-)``.  Note
    ``eps+ - 1 < 0``, so ``rho-`` decreases as ``rho+`` grows: silencing
    more in-bound streams leaves less budget for silencing out-of-bound
    ones.
    """
    if rho_plus < 0:
        raise ValueError("rho_plus must be non-negative")
    headroom = min(
        (1.0 - tolerance.eps_minus) * tolerance.eps_plus,
        tolerance.eps_minus,
    )
    value = rho_plus / (tolerance.eps_plus - 1.0) + headroom
    return max(0.0, value)


class RhoPolicy(enum.Enum):
    """Named points on the Equation-16 frontier.

    * ``BALANCED`` — solve ``rho+ = rho-`` on the frontier; the default,
      splitting the silencing budget evenly between sides.
    * ``FAVOR_FP`` — maximize ``rho+`` subject to ``rho- >= 0``: silence
      as many in-bound streams as possible (battery saving inside ``R``).
    * ``FAVOR_FN`` — ``rho+ = 0``: spend the whole budget silencing
      out-of-bound streams (cheapest when churn is dominated by distant
      streams brushing the bound).
    """

    BALANCED = "balanced"
    FAVOR_FP = "favor-fp"
    FAVOR_FN = "favor-fn"


def derive_rho(
    tolerance: FractionTolerance, policy: RhoPolicy = RhoPolicy.BALANCED
) -> tuple[float, float]:
    """Internal FT-NRP tolerances ``(rho+, rho-)`` for a k-NN query.

    All returned pairs sit on the Equation-16 frontier, so they maximize
    exploited tolerance for their policy while guaranteeing the user's
    ``eps+/eps-`` (Section 5.2.2's soundness argument).
    """
    eps_plus = tolerance.eps_plus
    headroom = min((1.0 - tolerance.eps_minus) * eps_plus, tolerance.eps_minus)
    if headroom <= 0.0:
        return 0.0, 0.0
    if policy is RhoPolicy.BALANCED:
        # rho = rho / (eps+ - 1) + m  =>  rho = m (eps+ - 1) / (eps+ - 2)
        rho = headroom * (eps_plus - 1.0) / (eps_plus - 2.0)
        return rho, rho
    if policy is RhoPolicy.FAVOR_FP:
        # rho- = 0  =>  rho+ = m (1 - eps+)
        return headroom * (1.0 - eps_plus), 0.0
    if policy is RhoPolicy.FAVOR_FN:
        return 0.0, headroom
    raise ValueError(f"unknown policy {policy!r}")  # pragma: no cover
