"""Fraction-based tolerance (Definitions 2-3, Equations 1-4).

For an answer set ``A(t)`` and the true satisfying set ``T(t)``:

* ``E+(t) = |A - T|`` (false positives), ``E-(t) = |T - A|`` (false
  negatives);
* ``F+(t) = E+ / |A|`` — fraction of returned answers that are wrong;
* ``F-(t) = E- / (|A| - E+ + E-) = E- / |T|`` — fraction of correct
  answers that are missing;
* the answer is correct iff ``F+ <= eps+`` and ``F- <= eps-``.

Both tolerances are assumed ``< 0.5`` (Section 3.4); the protocols'
correctness proofs rely on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import AbstractSet, Iterable


@dataclass(frozen=True)
class FractionReport:
    """The error bookkeeping of Definition 2 for one time instant."""

    answer_size: int
    true_size: int
    e_plus: int
    e_minus: int

    @property
    def f_plus(self) -> float:
        """``F+(t)``; zero for an empty answer (no wrong answers returned)."""
        if self.answer_size == 0:
            return 0.0
        return self.e_plus / self.answer_size

    @property
    def f_minus(self) -> float:
        """``F-(t)``; zero when nothing truly satisfies the query."""
        if self.true_size == 0:
            return 0.0
        return self.e_minus / self.true_size


@dataclass(frozen=True)
class FractionTolerance:
    """Definition 3: maximum tolerable ``F+`` and ``F-`` fractions."""

    eps_plus: float
    eps_minus: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.eps_plus < 0.5:
            raise ValueError(
                f"eps_plus must be in [0, 0.5), got {self.eps_plus}"
            )
        if not 0.0 <= self.eps_minus < 0.5:
            raise ValueError(
                f"eps_minus must be in [0, 0.5), got {self.eps_minus}"
            )

    @property
    def is_zero(self) -> bool:
        """True when no error at all is tolerated."""
        return self.eps_plus == 0.0 and self.eps_minus == 0.0

    # ------------------------------------------------------------------
    # Budgets (Equations 3-4)
    # ------------------------------------------------------------------
    def emax_plus(self, answer_size: int) -> int:
        """``Emax+``: largest integer false-positive count with
        ``Emax+ / answer_size <= eps+`` (Equation 3)."""
        if answer_size < 0:
            raise ValueError("answer_size must be non-negative")
        return math.floor(self.eps_plus * answer_size + 1e-9)

    def emax_minus(self, answer_size: int) -> int:
        """``Emax-``: largest integer false-negative count.

        Solving Definition 2's ``F- = E- / (|A| - E+ + E-) <= eps-`` for
        ``E-`` with ``E+`` at its ``Emax+ = eps+ |A|`` budget gives the
        paper's initialization formula (Section 5.1.1):

            ``Emax- = |A| * eps- * (1 - eps+) / (1 - eps-)``.
        """
        if answer_size < 0:
            raise ValueError("answer_size must be non-negative")
        exact = (
            answer_size
            * self.eps_minus
            * (1.0 - self.eps_plus)
            / (1.0 - self.eps_minus)
        )
        return math.floor(exact + 1e-9)

    # ------------------------------------------------------------------
    # Evaluation (Definitions 2-3)
    # ------------------------------------------------------------------
    def report(
        self, answer: Iterable[int], true_set: AbstractSet[int]
    ) -> FractionReport:
        """Compute ``E+/E-/F+/F-`` for *answer* against *true_set*."""
        answer_set = set(int(i) for i in answer)
        e_plus = len(answer_set - true_set)
        e_minus = len(true_set - answer_set)
        return FractionReport(
            answer_size=len(answer_set),
            true_size=len(true_set),
            e_plus=e_plus,
            e_minus=e_minus,
        )

    def is_satisfied(
        self, answer: Iterable[int], true_set: AbstractSet[int]
    ) -> bool:
        return self.violation(answer, true_set) is None

    def violation(
        self, answer: Iterable[int], true_set: AbstractSet[int]
    ) -> str | None:
        """``None`` if Definition 3 holds, else a human-readable reason."""
        report = self.report(answer, true_set)
        # Tolerate float round-off at the boundary: a report with exactly
        # Emax+ errors must pass.
        slack = 1e-12
        if report.f_plus > self.eps_plus + slack:
            return (
                f"F+ = {report.f_plus:.4f} exceeds eps+ = {self.eps_plus} "
                f"(E+ = {report.e_plus}, |A| = {report.answer_size})"
            )
        if report.f_minus > self.eps_minus + slack:
            return (
                f"F- = {report.f_minus:.4f} exceeds eps- = {self.eps_minus} "
                f"(E- = {report.e_minus}, |T| = {report.true_size})"
            )
        return None
