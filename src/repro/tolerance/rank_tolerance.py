"""Rank-based tolerance (Definition 1).

Given a rank-based query with rank requirement ``k`` and a slack
``r >= 0``, an answer set ``A(t)`` is correct iff ``|A(t)| = k`` and every
member's true rank is at most ``eps = k + r``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.queries.base import RankBasedQuery
from repro.queries.rank import ranked_ids


@dataclass(frozen=True)
class RankTolerance:
    """Definition 1: maximum rank tolerance ``eps_k^r = k + r``.

    ``r = 0`` demands the exact answer (up to ties); larger ``r`` lets the
    system return any ``k`` streams from the true top ``k + r``.
    """

    k: int
    r: int

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if self.r < 0:
            raise ValueError("r must be non-negative")

    @property
    def eps(self) -> int:
        """The maximum admissible true rank, ``k + r``."""
        return self.k + self.r

    def is_correct(
        self,
        answer: Iterable[int],
        query: RankBasedQuery,
        values: np.ndarray,
    ) -> bool:
        """Whether *answer* satisfies Definition 1 against true *values*."""
        return self.violation(answer, query, values) is None

    def violation(
        self,
        answer: Iterable[int],
        query: RankBasedQuery,
        values: np.ndarray,
    ) -> str | None:
        """``None`` if correct, else a human-readable reason.

        Evaluates all member ranks with a single sort rather than one
        ``rank_of`` call per member.
        """
        answer_set = set(int(i) for i in answer)
        if query.k != self.k:
            raise ValueError(
                f"tolerance k={self.k} does not match query k={query.k}"
            )
        if len(answer_set) != self.k:
            return f"|A| = {len(answer_set)}, expected exactly k = {self.k}"
        order = ranked_ids(query, values)
        admissible = set(int(i) for i in order[: self.eps])
        stragglers = answer_set - admissible
        if stragglers:
            worst = min(stragglers)  # deterministic pick for the message
            return (
                f"stream {worst} ranks worse than eps = {self.eps} "
                f"(admissible top-{self.eps} set excludes it)"
            )
        return None
