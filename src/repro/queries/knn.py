"""k-NN queries and their k-min / k-max transforms.

A k-NN query returns the ``k`` streams whose values lie closest to a query
point ``q`` (Section 3.2).  The paper notes that a k-NN query "can be
easily transformed to a k-minimum or k-maximum query, by setting q to -inf
or +inf"; since infinite arithmetic degenerates numerically, the
transforms are realized by substituting the ranking key (``value`` for
k-min, ``-value`` for k-max) — order-isomorphic to the limit and exact in
floating point.
"""

from __future__ import annotations

import math

import numpy as np

from repro.queries.base import RankBasedQuery


class KnnQuery(RankBasedQuery):
    """k nearest neighbours of a finite query point ``q`` on the line.

    The ranking key of a stream with value ``v`` is ``|v - q|``.
    """

    def __init__(self, q: float, k: int) -> None:
        super().__init__(k)
        if math.isnan(q) or math.isinf(q):
            raise ValueError(
                "q must be finite; use TopKQuery / KMinQuery for q = ±inf"
            )
        self.q = float(q)

    def distance(self, value: float) -> float:
        return abs(value - self.q)

    def distance_array(self, values: np.ndarray) -> np.ndarray:
        return np.abs(values - self.q)

    def region(self, threshold: float) -> tuple[float, float]:
        return (self.q - threshold, self.q + threshold)

    def __repr__(self) -> str:
        return f"KnnQuery(q={self.q}, k={self.k})"


class TopKQuery(RankBasedQuery):
    """k-maximum query: the ``q -> +inf`` limit of a k-NN query."""

    def distance(self, value: float) -> float:
        return -value

    def distance_array(self, values: np.ndarray) -> np.ndarray:
        return -values

    def region(self, threshold: float) -> tuple[float, float]:
        # distance(v) = -v <= t  <=>  v >= -t
        return (-threshold, math.inf)

    def __repr__(self) -> str:
        return f"TopKQuery(k={self.k})"


class KMinQuery(RankBasedQuery):
    """k-minimum query: the ``q -> -inf`` limit of a k-NN query."""

    def distance(self, value: float) -> float:
        return value

    def distance_array(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64)

    def region(self, threshold: float) -> tuple[float, float]:
        # distance(v) = v <= t  <=>  v <= t
        return (-math.inf, threshold)

    def __repr__(self) -> str:
        return f"KMinQuery(k={self.k})"
