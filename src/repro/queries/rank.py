"""Rank functions over the current value vector.

``rank(S_i, t)`` (Section 3.3) is the 1-based position of stream ``S_i``
in the total order induced by the query's distance, with ties broken by
stream id so that the order — and hence every protocol decision and
correctness check — is deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.queries.base import RankBasedQuery


def ranked_ids(query: RankBasedQuery, values: np.ndarray) -> np.ndarray:
    """Stream ids sorted best-first under *query*'s distance.

    Ties in distance are broken by ascending stream id (lexicographic sort
    on ``(distance, id)``), matching the convention used throughout the
    library.
    """
    distances = query.distance_array(np.asarray(values, dtype=np.float64))
    # np.argsort with kind="stable" on distances breaks ties by index,
    # which *is* ascending stream id.
    return np.argsort(distances, kind="stable")


def rank_of(query: RankBasedQuery, stream_id: int, values: np.ndarray) -> int:
    """1-based rank of *stream_id* under *query* (1 = best).

    A stream's rank is one plus the number of streams that beat it, where
    "beats" means strictly smaller distance, or equal distance and smaller
    id.
    """
    values = np.asarray(values, dtype=np.float64)
    if not 0 <= stream_id < len(values):
        raise IndexError(f"stream id {stream_id} out of range")
    distances = query.distance_array(values)
    mine = distances[stream_id]
    closer = int(np.count_nonzero(distances < mine))
    tied_before = int(np.count_nonzero(distances[:stream_id] == mine))
    return closer + tied_before + 1


def true_knn_answer(query: RankBasedQuery, values: np.ndarray) -> frozenset[int]:
    """The exact k-best answer set under *query* (deterministic ties)."""
    values = np.asarray(values, dtype=np.float64)
    k = query.k
    if k >= len(values):
        return frozenset(range(len(values)))
    distances = query.distance_array(values)
    # argpartition gets the k smallest in O(n); resolve ties by id among
    # candidates sharing the threshold distance.
    candidate_idx = np.argpartition(distances, k - 1)[:k]
    threshold = distances[candidate_idx].max()
    strictly_better = np.nonzero(distances < threshold)[0]
    tied = np.nonzero(distances == threshold)[0]
    need = k - len(strictly_better)
    chosen_ties = np.sort(tied)[:need]
    return frozenset(int(i) for i in strictly_better) | frozenset(
        int(i) for i in chosen_ties
    )


def top_ranked(
    query: RankBasedQuery, values: np.ndarray, count: int
) -> list[int]:
    """The *count* best stream ids, best-first (deterministic ties)."""
    order = ranked_ids(query, values)
    return [int(i) for i in order[:count]]
