"""Abstract query classes.

The split between rank-based and non-rank-based queries mirrors
Section 3.2: a non-rank-based query can evaluate each stream in isolation
(``matches``), while a rank-based query needs the full value vector to
establish the partial order (``true_answer`` / ``rank``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class EntityQuery(ABC):
    """A standing query whose answer is a set of stream identifiers."""

    @abstractmethod
    def true_answer(self, values: np.ndarray) -> frozenset[int]:
        """The exact answer set given the true value of every stream.

        ``values[i]`` is the current value of stream ``i``.
        """

    @property
    @abstractmethod
    def is_rank_based(self) -> bool:
        """Whether answer membership depends on other streams' values."""


class NonRankBasedQuery(EntityQuery):
    """A query decidable per-stream (Section 3.2, class 2)."""

    @abstractmethod
    def matches(self, value: float) -> bool:
        """Whether a stream holding *value* satisfies the query."""

    def true_answer(self, values: np.ndarray) -> frozenset[int]:
        values = np.asarray(values, dtype=np.float64)
        matches = self.matches_array(values)
        return frozenset(int(i) for i in np.nonzero(matches)[0])

    def matches_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`matches`; subclasses may override for speed."""
        return np.fromiter(
            (self.matches(float(v)) for v in values),
            dtype=bool,
            count=len(values),
        )

    @property
    def is_rank_based(self) -> bool:
        return False


class RankBasedQuery(EntityQuery):
    """A query over a partial order of stream values (Section 3.2, class 1).

    The order is induced by a per-stream *distance*; smaller distances rank
    higher (rank 1 is best).  Ties are broken by stream id so that ranks
    are total and deterministic.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("rank requirement k must be positive")
        self.k = int(k)

    @abstractmethod
    def distance(self, value: float) -> float:
        """The ranking key of a stream holding *value* (smaller is better)."""

    @abstractmethod
    def region(self, threshold: float) -> tuple[float, float]:
        """The value-space interval ``{v : distance(v) <= threshold}``.

        This is the bound ``R`` the rank-based protocols deploy as a filter
        constraint: ``[q - d, q + d]`` for a k-NN query, a half-line for
        the k-min / k-max transforms.
        """

    def distance_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`distance`; subclasses may override for speed."""
        return np.fromiter(
            (self.distance(float(v)) for v in values),
            dtype=np.float64,
            count=len(values),
        )

    def true_answer(self, values: np.ndarray) -> frozenset[int]:
        from repro.queries.rank import true_knn_answer

        return true_knn_answer(self, np.asarray(values, dtype=np.float64))

    def rank(self, stream_id: int, values: np.ndarray) -> int:
        from repro.queries.rank import rank_of

        return rank_of(self, stream_id, np.asarray(values, dtype=np.float64))

    @property
    def is_rank_based(self) -> bool:
        return True
