"""Entity-based query model (Section 3.2).

Entity-based queries return *identifiers* of streams rather than numeric
aggregates.  Two classes are distinguished:

* **non-rank-based** — membership of a stream in the answer depends only
  on its own value: :class:`~repro.queries.range_query.RangeQuery`;
* **rank-based** — membership depends on a partial order over all stream
  values: :class:`~repro.queries.knn.KnnQuery` and its ``q = ±inf``
  transforms :class:`~repro.queries.knn.TopKQuery` (k-maximum) and
  :class:`~repro.queries.knn.KMinQuery` (k-minimum).
"""

from repro.queries.base import EntityQuery, NonRankBasedQuery, RankBasedQuery
from repro.queries.knn import KMinQuery, KnnQuery, TopKQuery
from repro.queries.range_query import RangeQuery
from repro.queries.rank import rank_of, ranked_ids, top_ranked, true_knn_answer

__all__ = [
    "EntityQuery",
    "KMinQuery",
    "KnnQuery",
    "NonRankBasedQuery",
    "RangeQuery",
    "RankBasedQuery",
    "TopKQuery",
    "rank_of",
    "ranked_ids",
    "top_ranked",
    "true_knn_answer",
]
