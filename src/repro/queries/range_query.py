"""Range queries: the paper's running non-rank-based example.

"A range query is specified by an interval [l, u].  Streams whose values
fall within [l, u] should be returned to the user." (Section 3.2)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.queries.base import NonRankBasedQuery


@dataclass(frozen=True)
class RangeQuery(NonRankBasedQuery):
    """A closed-interval query ``[lower, upper]`` over stream values."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if math.isnan(self.lower) or math.isnan(self.upper):
            raise ValueError("range bounds must not be NaN")
        if self.lower > self.upper:
            raise ValueError(
                f"invalid range [{self.lower}, {self.upper}]"
            )

    def matches(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def matches_array(self, values: np.ndarray) -> np.ndarray:
        return (values >= self.lower) & (values <= self.upper)

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def boundary_distance(self, value: float) -> float:
        """Distance from *value* to the nearest endpoint of the range.

        Mirrors :meth:`repro.streams.filters.FilterConstraint.boundary_distance`;
        used by the boundary-nearest FP/FN selection heuristic (Fig. 14).
        """
        if self.matches(value):
            return min(value - self.lower, self.upper - value)
        if value < self.lower:
            return self.lower - value
        return value - self.upper
