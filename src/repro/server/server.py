"""The central server: message dispatch plus the control-plane API.

Protocols never talk to the channel directly; they receive
``on_update(server, ...)`` callbacks and use the server's control-plane
methods (:meth:`Server.probe`, :meth:`Server.deploy`,
:meth:`Server.broadcast`), which keeps message accounting in one place.

Re-entrancy: deploying a constraint whose ``assumed_inside`` belief turns
out stale makes the source report *immediately*, i.e. while the protocol
is still inside a maintenance step.  Such updates are queued and drained
after the protocol finishes the current step, so a protocol's handler is
never re-entered.  The queueing discipline is the runtime kernel's
:class:`repro.runtime.dispatch.DeferredDeliveryMixin`, shared with the
spatial server and the multi-query coordinator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.network.channel import Channel
from repro.network.messages import (
    ConstraintMessage,
    Message,
    MessageKind,
    ProbeReplyMessage,
    ProbeRequestMessage,
    UpdateMessage,
)
from repro.protocols.base import FilterProtocol
from repro.runtime.dispatch import DeferredDeliveryMixin
from repro.state.table import StreamStateTable

if TYPE_CHECKING:
    from repro.state.rank import RankView


class Server(DeferredDeliveryMixin):
    """Query-processing + constraint-assignment units of Figure 3."""

    def __init__(
        self,
        channel: Channel,
        protocol: FilterProtocol,
        state_factory=None,
    ) -> None:
        self.channel = channel
        self.protocol = protocol
        self._now = 0.0
        #: ``n_streams -> StreamStateTable`` constructor (e.g.
        #: :class:`~repro.state.table.StateTableFactory` for memmap
        #: planes); ``None`` builds a plain RAM table.
        self._state_factory = state_factory
        self._state: StreamStateTable | None = None
        self._probe_reply: ProbeReplyMessage | None = None
        self._awaiting_probe = False
        self._init_delivery()
        channel.bind_server(self._handle_message)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Virtual time of the most recent activity."""
        return self._now

    @property
    def stream_ids(self) -> list[int]:
        """All source identifiers known to the channel."""
        return self.channel.source_ids

    @property
    def n_streams(self) -> int:
        return len(self.channel.source_ids)

    @property
    def state(self) -> StreamStateTable:
        """The columnar stream-state table (created on first access).

        The server is the table's value-plane writer: probe replies and
        update deliveries refresh the last-known value and report time,
        and :meth:`deploy` records the bounds of every installed
        constraint.  Protocols keep their answer / tracked / silencer
        state in the same table, so there is exactly one copy of the
        server-side picture of the stream population.
        """
        if self._state is None:
            factory = self._state_factory or StreamStateTable
            self._state = factory(len(self.channel.source_ids))
        return self._state

    def rank_view(self, distance_array) -> "RankView":
        """An incremental rank order over :attr:`state`.

        Protocols must obtain their rank views here rather than
        constructing :class:`~repro.state.rank.RankView` directly: the
        hosting topology decides the implementation (a sharded
        coordinator returns a k-way-merged per-shard view with the same
        read API and the identical order).
        """
        from repro.state.rank import RankView

        return RankView(self.state, distance_array)

    def initialize(self, time: float = 0.0) -> None:
        """Run the protocol's initialization phase at virtual *time*."""
        self._now = time
        self._guarded_call(self.protocol.initialize, self)

    # ------------------------------------------------------------------
    # Control-plane API used by protocols
    # ------------------------------------------------------------------
    def probe(self, stream_id: int) -> float:
        """Request and return the current value of one source.

        Costs one ``PROBE_REQUEST`` plus one ``PROBE_REPLY`` message; the
        reply also refreshes the source's report-state, so the server's
        knowledge of that stream is exact afterwards.
        """
        self._awaiting_probe = True
        self._probe_reply = None
        self.channel.send_to_source(
            ProbeRequestMessage(stream_id=stream_id, time=self._now)
        )
        self._awaiting_probe = False
        if self._probe_reply is None:  # pragma: no cover - defensive
            raise RuntimeError(f"source {stream_id} did not reply to probe")
        reply = self._probe_reply
        self.state.record_report(reply.stream_id, reply.value, reply.time)
        return reply.value

    def probe_all(self, stream_ids: list[int] | None = None) -> dict[int, float]:
        """Probe several (default: all) sources; returns id -> value."""
        targets = self.channel.source_ids if stream_ids is None else stream_ids
        return {stream_id: self.probe(stream_id) for stream_id in targets}

    def deploy(
        self,
        stream_id: int,
        lower: float,
        upper: float,
        assumed_inside: bool | None = None,
    ) -> None:
        """Install ``[lower, upper]`` at one source (one message).

        ``assumed_inside=None`` asserts the server's knowledge of the
        source's value is fresh; otherwise the source self-corrects with
        an immediate update if the belief is stale.
        """
        self.state.record_deploy(stream_id, lower, upper)
        self.channel.send_to_source(
            ConstraintMessage(
                stream_id=stream_id,
                time=self._now,
                lower=lower,
                upper=upper,
                assumed_inside=assumed_inside,
            )
        )

    def broadcast(
        self,
        lower: float,
        upper: float,
        assumed_inside: dict[int, bool] | None = None,
    ) -> None:
        """Install ``[lower, upper]`` at every source (``n`` messages).

        *assumed_inside* maps stream id to the server's belief; ids absent
        from the map are deployed with fresh-knowledge semantics.
        """
        for stream_id in self.channel.source_ids:
            belief = None
            if assumed_inside is not None:
                belief = assumed_inside.get(stream_id)
            self.deploy(stream_id, lower, upper, assumed_inside=belief)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _handle_message(self, message: Message) -> None:
        if message.kind is MessageKind.PROBE_REPLY:
            if not self._awaiting_probe:  # pragma: no cover - defensive
                raise RuntimeError("unsolicited probe reply")
            assert isinstance(message, ProbeReplyMessage)
            self._probe_reply = message
            return
        if message.kind is MessageKind.UPDATE:
            assert isinstance(message, UpdateMessage)
            self._now = max(self._now, message.time)
            self._deliver(message)
            return
        raise RuntimeError(  # pragma: no cover - defensive
            f"server received unexpected {message.kind}"
        )

    def _handle_delivery(self, message: UpdateMessage) -> None:
        # Refresh the value plane at *delivery* time (not receive time):
        # a queued delivery must not let a later-arriving value be
        # visible to an earlier update's protocol handler.
        self.state.record_report(
            message.stream_id, message.value, message.time
        )
        self.protocol.on_update(
            self, message.stream_id, message.value, message.time
        )
