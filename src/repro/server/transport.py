"""Process-parallel sharded serving for *coupled* protocols.

The fan-out path (``api.engine._execute_streams_fanout``) only covers
protocols whose maintenance is decomposable — shards replay with no
server feedback at all.  Everything else (RTP, ZT-RP, FT-RP, FT-NRP)
is coupled through the coordinator: every crossing triggers probes,
rank reads and constraint redeployments that reach across shards.  This
module runs those protocols across real worker *processes* while
keeping the message ledger byte-identical to sequential sharded
serving (DESIGN.md §10).

Three pieces:

* :class:`ShardWorker` — the per-process shard runtime.  It owns its
  shard's trace slice and a *local* :class:`~repro.state.table.
  StreamStateTable` + :class:`~repro.streams.source.StreamSource`
  population (local ids throughout; the coordinator translates at the
  RPC boundary), and answers a small request vocabulary: ``scan`` (the
  batched quiescence pre-scan, returning the shard's first-crossing
  candidate as a *global trace position*), ``advance`` (bulk-stage a
  proven-quiescent prefix), ``dispatch`` (apply one crossing record
  per-event and return the captured uplink messages), ``probe`` /
  ``probe_batch`` / ``deploy_batch`` (the control plane, forwarding to
  the sources through a real channel so membership semantics are
  exactly the sequential ones), and ``finish``.

* :class:`CoordinatorBus` — pipes + pickle framing to the workers,
  with reply collection through the same deterministic ``(delivery
  time, send seq)`` heap discipline as :class:`~repro.network.latency.
  LatencyChannel`: replies are gathered at a barrier, assigned modeled
  delivery times, and released in heap order, so OS scheduling of the
  worker processes is invisible and inter-shard coordination cost and
  modeled network delay are the same quantity.  Byte counters feed the
  serialization cost model; every receive polls with a liveness check
  so a dead worker raises :class:`TransportError` instead of hanging.

* :class:`TransportShardedServer` — the coordinator.  It exposes the
  exact control plane of :class:`~repro.server.server.Server` (so the
  protocols run unmodified), mirrors the value plane in a full
  :class:`StreamStateTable` behind per-shard
  :class:`~repro.state.sharding.StateShardView`s and the k-way
  :class:`~repro.state.sharding.ShardedRankView` merge, charges *all*
  messages to its own ledger (the ledger is an order-insensitive
  (phase, kind) multiset, so charging at the coordinator instead of at
  each worker's channel cannot change it), and drives the replay in
  epochs: scan the dirty workers in parallel, pick the minimum global
  trace position among the per-shard candidates (positions are unique,
  so the winner is exactly the record sequential replay would dispatch
  next), advance everyone past it, dispatch it at its owner, and run
  the protocol's reaction through buffered, batched constraint
  deployments that preserve the sequential self-correction FIFO.

The same epoch protocol serves both payload vocabularies:
:class:`SpatialShardWorker` / :class:`SpatialTransportShardedServer`
swap the scalar probe/constraint-interval messages for point updates
and region constraints, framed as contiguous little-endian columns
(:mod:`repro.spatial.messages`) so a deploy batch is one region frame
per owner run and a worker epoch stays one recv + one vectorized
scatter.  Checking runs ride the transport too: the coordinator holds
the full trace, so it applies the oracle itself and evaluates the
tolerance checker at epoch boundaries (``replay(oracle_apply=...,
after_apply=...)``) — the protocol answer only changes at dispatches,
so boundary checks see exactly the answers sequential per-event
checking sees, while the workers keep their batched pre-scan.

Nonzero latency models ride the same epoch protocol through the
coordinator's **in-flight plane** (:class:`InFlightPlane`).  Each
worker channel is *externally stepped* — it never self-delivers from
its own engine — and every reply carries an aux envelope exporting the
channel's pending heap: uplinks extracted wholesale into columnar
frames (:mod:`repro.network.frames`, with a point-batch variant in
:mod:`repro.spatial.messages`), pending constraint installs as
delivery-key metadata (the install stays authoritative in the worker's
local heap).  The coordinator merges everything into one global heap
keyed by the channel's own ``(delivery time, send seq)`` discipline
and the epoch stepper advances to the earliest pending delivery
instead of assuming quiescence: plane entries due at or before the
next candidate record are delivered first — uplinks by the coordinator
itself, installs by clock-carrying ``deliver`` ops that replicate the
engine's batch-drain tie order and stop early on nested sends — so the
dispatch interleaving, and hence the ledger, stays byte-identical to
sequential sharded serving under the same model
(tests/server/test_transport_latency.py).
"""

from __future__ import annotations

import gc
import heapq
import itertools
import math
import multiprocessing
import pickle
import time as _time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.network.accounting import MessageLedger, Phase
from repro.network.frames import (
    pack_in_flight,
    pack_pending,
    unpack_in_flight,
)
from repro.network.messages import (
    ConstraintMessage,
    Message,
    MessageKind,
    ProbeReplyMessage,
    ProbeRequestMessage,
    UpdateMessage,
)
from repro.network.latency import LatencyChannel, as_latency_model
from repro.protocols.base import FilterProtocol
from repro.runtime.dispatch import DeferredDeliveryMixin
from repro.sim.engine import SimulationEngine
from repro.spatial.messages import (
    PointProbeReplyMessage,
    PointProbeRequestMessage,
    PointUpdateMessage,
    RegionConstraintMessage,
    pack_point_in_flight,
    pack_points,
    pack_regions,
    unpack_point_in_flight,
    unpack_regions,
)
from repro.state.sharding import (
    ShardedRankView,
    StateShardView,
    scatter_point_reports,
    scatter_region_deploys,
    shard_ranges,
    validate_shard_alignment,
)
from repro.state.table import StreamStateTable


class TransportError(RuntimeError):
    """A shard worker died, desynchronized, or violated the protocol."""


#: Sentinel a worker handler returns for fire-and-forget requests.
_NO_REPLY = object()

#: Seconds a coordinator receive waits before declaring a worker hung.
_RECV_TIMEOUT = 60.0

#: Poll granularity of the liveness-checking receive loop.
_POLL_INTERVAL = 0.05


# ----------------------------------------------------------------------
# The worker-process side
# ----------------------------------------------------------------------
class ShardWorker:
    """One shard's runtime, living in its own process.

    Ids are *local* throughout (0-based within the shard); only the
    trace positions in ``gpos`` are global, because the coordinator's
    dispatch order is decided on them.  The worker's channel, engine,
    table and ledger are private — the ledger is a throwaway (all
    charging happens at the coordinator); the table exists so the
    membership write-through gives the quiescence pre-scan live
    constraint columns, exactly as in ``runtime/session.py``.
    """

    def __init__(
        self,
        index: int,
        initial_values: np.ndarray,
        times: np.ndarray,
        local_ids: np.ndarray,
        values: np.ndarray,
        gpos: np.ndarray,
        latency_model,
        replay_mode: str,
        batch_size: int,
        min_chunk: int,
    ) -> None:
        # Deferred import: the session module is the one other home of
        # the prescan/deferred-assignment primitives this worker reuses.
        from repro.runtime.session import (
            ExecutionSession,
            _DeferredAssignments,
            _StatePrescan,
            in_flight_barrier,
        )

        self.index = int(index)
        self.times = np.asarray(times, dtype=np.float64)
        self.local_ids = np.asarray(local_ids, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        self.gpos = np.asarray(gpos, dtype=np.int64)
        n_local = len(initial_values)
        self.engine = SimulationEngine()
        self.ledger = MessageLedger()  # throwaway; coordinator charges
        self.channel = ExecutionSession._make_channel(
            self.ledger, self.engine, latency_model, channel_index=index
        )
        self._latent = isinstance(self.channel, LatencyChannel)
        if self._latent:
            # Externally stepped: the channel never self-schedules
            # delivery events — the coordinator drives every deferred
            # delivery through explicit ``deliver`` ops so global
            # delivery order is decided on the merged in-flight plane.
            self.channel.external_delivery = True
        self._barrier = in_flight_barrier
        #: Highest send seq whose pending (downlink) entry has been
        #: exported to the coordinator's plane.
        self._exported_seq = -1
        self.sources = self._make_sources(initial_values)
        self.channel.bind_server(self._handle_uplink)
        self.table = StreamStateTable(n_local)
        for source in self.sources:
            source.membership.bind_state(self.table, source.stream_id)
        self.prescan = _StatePrescan([self.table])
        self.deferred = _DeferredAssignments(
            self.sources, [self.channel], self.values
        )
        self.replay_mode = replay_mode
        self.batch_size = int(batch_size)
        self.min_chunk = int(min_chunk)
        self.mode: str | None = None
        #: Trace cursor: records before ``pos`` are committed (staged
        #: quiescent or dispatched).
        self.pos = 0
        #: Proof frontier: ``[pos, scan_from)`` is proven quiescent
        #: against the *current* constraint columns.
        self.scan_from = 0
        self.outbox: list[tuple[int, float, float]] = []
        self._probe_reply: ProbeReplyMessage | None = None
        self.busy_seconds = 0.0
        self.stats = {
            "records": int(len(self.times)),
            "dispatches": 0,
            "staged": 0,
            "columnar_reports": 0,
            "chunk_scans": 0,
            "suffix_rescans": 0,
            "broadcast_truncations": 0,
            "inflight_truncations": 0,
            "dispatch_bailout_at": None,
        }

    # -- payload-vocabulary hooks (overridden by the spatial stack) ----
    def _make_sources(self, initial_payloads) -> list:
        """Build the shard's source population (scalar streams here)."""
        from repro.streams.source import StreamSource

        return [
            StreamSource(stream_id, float(value), self.channel)
            for stream_id, value in enumerate(initial_payloads)
        ]

    def _any_scannable(self) -> bool:
        """Whether some local stream carries a batchable filter."""
        return bool(self.table.scannable.any())

    # -- channel plumbing ----------------------------------------------
    def _handle_uplink(self, message: Message) -> None:
        if message.kind is MessageKind.PROBE_REPLY:
            assert isinstance(message, ProbeReplyMessage)
            self._probe_reply = message
            return
        if message.kind is MessageKind.UPDATE:
            assert isinstance(message, UpdateMessage)
            self.outbox.append(
                (int(message.stream_id), float(message.value), float(message.time))
            )
            return
        raise RuntimeError(  # pragma: no cover - defensive
            f"worker received unexpected uplink {message.kind}"
        )

    # -- the in-flight plane's worker half ------------------------------
    def _pack_uplinks(self, entries):
        """Frame extracted uplink entries (scalar payloads here)."""
        return pack_in_flight(entries)

    def _collect_aux(self):
        """Export the channel's pending heap after an operation.

        Uplinks are *extracted* — the coordinator delivers them itself
        from the merged plane, so they leave the local heap (flow
        counts and FIFO floors stay up until the coordinator's acks
        arrive, preserving zero-draw inline eligibility).  Downlinks
        stay authoritative in the local heap; only their delivery keys
        cross, once each, tracked by ``_exported_seq``.
        """
        if not self._latent:
            return None
        uplinks = self.channel.extract_in_flight(uplink=True)
        pending = self.channel.pending_after(self._exported_seq)
        if pending:
            self._exported_seq = max(seq for _, seq, _ in pending)
        if not uplinks and not pending:
            return None
        return {
            "uplinks": self._pack_uplinks(uplinks) if uplinks else None,
            "pending": pack_pending(pending) if pending else None,
        }

    def _apply_acks(self, times, streams) -> None:
        """Book plane-side uplink deliveries the coordinator performed."""
        for time, stream in zip(times.tolist(), streams.tolist()):
            self.channel.acknowledge_extracted(stream, time, is_uplink=True)

    def deliver(
        self, time: float, seq_limit: int, advance: bool
    ) -> tuple[list, int, bool]:
        """Deliver local heap entries up to ``(time, seq_limit)``.

        Replicates the engine's own stepping: each entry is delivered
        with the clock advanced to *its* delivery time (so cascade
        sends sample their delay at the correct ``engine.now``), and
        the loop stops early as soon as a delivery routes a new message
        so the coordinator can run the nested reaction before later
        same-batch installs fire.  With ``advance`` false the clock is
        frozen — the end-of-replay forced drain, exactly like
        :meth:`~repro.network.latency.LatencyChannel.drain_in_flight`.
        """
        self.outbox.clear()
        limit = (float(time), int(seq_limit))
        delivered = 0
        while True:
            head = self.channel.next_delivery_key
            if head is None or head > limit:
                return list(self.outbox), delivered, False
            if advance and head[0] > self.engine.now:
                self.engine.run(until=head[0])
            count, stopped = self.channel.deliver_due(
                head[0], head[1], stop_after_send=True
            )
            delivered += count
            if stopped:
                return list(self.outbox), delivered, True

    # -- scanning -------------------------------------------------------
    def _resolve_mode(self) -> str:
        """Mirror the session's mode resolution, per worker.

        ``auto`` picks the batched pre-scan exactly when some local
        stream carries a scannable filter (after initialization the
        coupled protocols have deployed one everywhere); the watch is
        started here so later scans can re-validate their proven window
        against only the streams a protocol reaction actually touched.
        """
        if self.replay_mode == "event":
            mode = "event"
        elif self.replay_mode == "auto" and not self._any_scannable():
            mode = "event"
        else:
            mode = "batch"
        if mode == "batch":
            self.table.watch_constraints()
        self.mode = mode
        return mode

    def scan(self) -> tuple[int | None, bool]:
        """The shard's first-crossing candidate (global trace position).

        Returns ``(candidate, blocked)``.  Invariant on return:
        ``[pos, scan_from)`` is proven quiescent against the current
        columns, and the candidate — when not ``None`` — is the record
        at ``scan_from``.  In ``event`` mode nothing is proven: every
        record is its own candidate, which collapses the epoch protocol
        to exact global per-event order.

        Under a nonzero latency model quiescence proofs are only valid
        below the channel's in-flight barrier (a pending constraint
        install may turn any later record into a crossing), so the
        chunked scan caps its claims there; ``blocked`` reports that
        records remain beyond the cap with no candidate to show — the
        coordinator must deliver from the plane before this shard can
        make progress.
        """
        mode = self.mode or self._resolve_mode()
        n = len(self.times)
        if mode == "event":
            self.scan_from = self.pos
            if self.pos < n:
                return int(self.gpos[self.pos]), False
            return None, False
        if self.scan_from < self.pos:
            self.scan_from = self.pos
        changed = self.table.drain_constraint_watch()
        if changed and self.scan_from > self.pos:
            # Re-validate only the touched streams' records inside the
            # proven window: untouched streams' columns are unchanged,
            # so their quiescence proofs stand (the crossing mask of a
            # record depends only on its own stream's columns).
            rows = np.unique(np.asarray(changed, dtype=np.int64))
            window_ids = self.local_ids[self.pos : self.scan_from]
            affected = np.nonzero(np.isin(window_ids, rows))[0]
            if affected.size:
                self.stats["suffix_rescans"] += 1
                sub = self.pos + affected
                mask = self.prescan.crossing_mask(
                    self.local_ids[sub], self.values[sub]
                )
                hits = np.nonzero(mask)[0]
                if hits.size:
                    self.scan_from = int(sub[hits[0]])
                    return int(self.gpos[self.scan_from]), False
        n_eff = n
        if self._latent:
            t_bar, _ = self._barrier([self.channel])
            if t_bar is not None:
                n_eff = int(
                    np.searchsorted(self.times, t_bar, side="left")
                )
                if n_eff < self.scan_from:
                    n_eff = self.scan_from
        i = self.scan_from
        while i < n_eff:
            end = min(i + self.batch_size, n_eff)
            self.stats["chunk_scans"] += 1
            mask = self.prescan.crossing_mask(
                self.local_ids[i:end], self.values[i:end]
            )
            hits = np.nonzero(mask)[0]
            if hits.size:
                self.scan_from = i + int(hits[0])
                return int(self.gpos[self.scan_from]), False
            i = end
        self.scan_from = n_eff
        if n_eff < n:
            self.stats["inflight_truncations"] += 1
        return None, n_eff < n

    # -- replay ---------------------------------------------------------
    def advance(self, g: int) -> None:
        """Bulk-stage every local record with global position < *g*.

        Sound because the coordinator only advances to the minimum of
        the per-shard candidates: every local record before it lies in
        this worker's proven-quiescent window.
        """
        below = int(np.searchsorted(self.gpos[self.pos :], int(g), side="left"))
        k = self.pos + below
        if k <= self.pos:
            return
        if k > max(self.scan_from, self.pos):
            raise TransportError(
                f"worker {self.index}: advance past the proven frontier "
                f"(to {k}, proven {self.scan_from})"
            )
        self.deferred.stage(
            self.local_ids[self.pos : k], self.values[self.pos : k]
        )
        self.stats["staged"] += k - self.pos
        self.pos = k

    def advance_time(self, t: float) -> None:
        """Bulk-stage the proven-quiescent records with time below *t*.

        Issued to every worker just before the coordinator fires a
        plane delivery at *t*: the sequential engine consumes exactly
        the records strictly below a delivery's time before the
        delivery event fires, and the reaction's probes must read the
        sources at that same frontier.  Every such record is inside the
        proven window — the plane head is a lower bound on all
        candidates and on every worker's in-flight barrier.
        """
        k = int(np.searchsorted(self.times, float(t), side="left"))
        if k <= self.pos:
            return
        if k > max(self.scan_from, self.pos):
            raise TransportError(
                f"worker {self.index}: advance_time past the proven "
                f"frontier (to {k}, proven {self.scan_from})"
            )
        self.deferred.stage(
            self.local_ids[self.pos : k], self.values[self.pos : k]
        )
        self.stats["staged"] += k - self.pos
        self.pos = k

    def dispatch(self, g: int) -> list[tuple[int, float, float]]:
        """Apply the record at global position *g* per-event.

        Returns the captured uplink messages (at most one: the update
        the crossing produced, or none when the conservative mask
        over-claimed), as ``(local id, value, time)`` tuples.
        """
        self.advance(g)
        k = self.pos
        if k >= len(self.times) or int(self.gpos[k]) != int(g):
            raise TransportError(
                f"worker {self.index}: asked to dispatch position {g}, "
                f"next unconsumed is "
                f"{int(self.gpos[k]) if k < len(self.times) else None}"
            )
        local = int(self.local_ids[k])
        time = float(self.times[k])
        if time > self.engine.now:
            self.engine.run(until=time)
        self.deferred.flush_for_dispatch(local)
        self.outbox.clear()
        self.sources[local].apply(self.values[k], time)
        self.pos = k + 1
        if self.scan_from < self.pos:
            self.scan_from = self.pos
        self.stats["dispatches"] += 1
        return list(self.outbox)

    # -- control plane --------------------------------------------------
    def _advance_clock(self, clock) -> None:
        """Catch the local engine up to the coordinator's global clock.

        Externally-stepped channels schedule no engine events, so this
        moves time only — any delay sampling during the operation then
        happens at the same ``engine.now`` as in the sequential run.
        """
        if clock is not None and float(clock) > self.engine.now:
            self.engine.run(until=float(clock))

    def probe(
        self, local_id: int, time: float, clock: float | None = None
    ) -> tuple[float, float]:
        """One probe round-trip against the local source."""
        self._advance_clock(clock)
        self._probe_reply = None
        self.channel.send_to_source(
            ProbeRequestMessage(stream_id=int(local_id), time=float(time))
        )
        reply = self._probe_reply
        if reply is None:  # pragma: no cover - defensive
            raise TransportError(
                f"worker {self.index}: source {local_id} did not reply"
            )
        return float(reply.value), float(reply.time)

    def probe_batch(
        self, local_ids, time: float, clock: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Probe several local sources; replies as parallel arrays."""
        self._advance_clock(clock)
        count = len(local_ids)
        values = np.empty(count, dtype=np.float64)
        times = np.empty(count, dtype=np.float64)
        for i, local_id in enumerate(
            local_ids.tolist() if isinstance(local_ids, np.ndarray)
            else local_ids
        ):
            values[i], times[i] = self.probe(local_id, time)
        return values, times

    def deploy_batch(
        self, local_ids, lowers, uppers, assumed, times, clock=None
    ) -> list[tuple[int, float, float]]:
        """Install constraints in order; return self-corrections in order.

        Columns arrive as parallel numpy arrays (binary-framed pickles,
        the serialization cost model's cheap path); ``assumed`` encodes
        the optional belief as int8 (-1 none, 0 outside, 1 inside).
        """
        self._advance_clock(clock)
        self.outbox.clear()
        send = self.channel.send_to_source
        for local_id, lower, upper, belief, time in zip(
            local_ids.tolist(),
            lowers.tolist(),
            uppers.tolist(),
            assumed.tolist(),
            times.tolist(),
        ):
            send(
                ConstraintMessage(
                    stream_id=local_id,
                    time=time,
                    lower=lower,
                    upper=upper,
                    assumed_inside=None if belief < 0 else bool(belief),
                )
            )
        return list(self.outbox)

    def settle(self, horizon: float | None) -> None:
        """Commit the proven-quiescent tail and settle the clock.

        The worker half of the sequential end-of-replay sequence: stage
        everything proven, flush the staged writes, and run the engine
        out to the horizon (which fires nothing — deliveries are
        externally stepped — but freezes ``engine.now`` where the
        forced drain of the remaining plane entries expects it).
        """
        n = len(self.times)
        if self.pos < n:
            if max(self.scan_from, self.pos) < n:
                raise TransportError(
                    f"worker {self.index}: settle with unproven records "
                    f"[{self.scan_from}, {n})"
                )
            self.deferred.stage(
                self.local_ids[self.pos :], self.values[self.pos :]
            )
            self.stats["staged"] += n - self.pos
            self.pos = n
        self.deferred.flush_all()
        if horizon is not None and horizon > self.engine.now:
            self.engine.run(until=horizon)

    def finish(self, horizon: float | None) -> dict:
        """Settle (idempotent after an explicit ``settle``) + stats."""
        self.settle(horizon)
        stats = dict(self.stats)
        stats["mode"] = self.mode or self._resolve_mode()
        stats["kernel"] = "transport"
        stats["busy_seconds"] = self.busy_seconds
        return stats

    # -- request demux ---------------------------------------------------
    def handle(self, request: tuple):
        """Demux one request; replied ops get an ``(payload, aux)``
        envelope whose aux half exports the channel's pending heap."""
        op = request[0]
        if op == "ack":
            self._apply_acks(request[1], request[2])
            return _NO_REPLY
        payload = self._handle_op(op, request)
        if payload is _NO_REPLY:
            return _NO_REPLY
        return payload, self._collect_aux()

    def _handle_op(self, op: str, request: tuple):
        if op == "scan":
            return self.scan()
        if op == "advance":
            self.advance(request[1])
            return _NO_REPLY
        if op == "advance_time":
            self.advance_time(request[1])
            return _NO_REPLY
        if op == "dispatch":
            return self.dispatch(request[1])
        if op == "deliver":
            return self.deliver(request[1], request[2], request[3])
        if op == "probe":
            return self.probe(request[1], request[2], request[3])
        if op == "probe_batch":
            return self.probe_batch(request[1], request[2], request[3])
        if op == "deploy_batch":
            return self.deploy_batch(*request[1:7])
        if op == "settle":
            return self.settle(request[1])
        if op == "finish":
            return self.finish(request[1])
        raise TransportError(f"worker {self.index}: unknown request {op!r}")


class SpatialShardWorker(ShardWorker):
    """A shard runtime speaking the spatial vocabulary (DESIGN.md §10).

    Same epoch protocol, vector payloads: sources are
    :class:`~repro.spatial.source.SpatialStreamSource`\\ s, the record
    payload matrix is ``(m, d)``, the quiescence pre-scan keys on the
    table's *geometric* plane (the region write-through installs AABB
    quiescence boxes instead of scalar bounds), and the control plane
    trades probe/constraint intervals for point probes and region
    frames.  The prescan and bulk-stage primitives handle vector
    payloads natively, so ``scan``/``advance``/``dispatch``/``finish``
    are inherited verbatim.
    """

    def _make_sources(self, initial_payloads) -> list:
        from repro.spatial.source import SpatialStreamSource

        points = np.asarray(initial_payloads, dtype=np.float64)
        return [
            SpatialStreamSource(stream_id, points[stream_id], self.channel)
            for stream_id in range(len(points))
        ]

    def _any_scannable(self) -> bool:
        return bool(self.table.geo_scannable.any())

    @property
    def _dimension(self) -> int:
        return int(self.values.shape[1])

    def _handle_uplink(self, message: Message) -> None:
        if message.kind is MessageKind.PROBE_REPLY:
            assert isinstance(message, PointProbeReplyMessage)
            self._probe_reply = message
            return
        if message.kind is MessageKind.UPDATE:
            assert isinstance(message, PointUpdateMessage)
            self.outbox.append(
                (int(message.stream_id), message.point, float(message.time))
            )
            return
        raise RuntimeError(  # pragma: no cover - defensive
            f"worker received unexpected uplink {message.kind}"
        )

    def _pack_uplinks(self, entries):
        return pack_point_in_flight(entries, self._dimension)

    def probe(
        self, local_id: int, time: float, clock: float | None = None
    ) -> tuple[np.ndarray, float]:
        """One point-probe round-trip against the local source."""
        self._advance_clock(clock)
        self._probe_reply = None
        self.channel.send_to_source(
            PointProbeRequestMessage(stream_id=int(local_id), time=float(time))
        )
        reply = self._probe_reply
        if reply is None:  # pragma: no cover - defensive
            raise TransportError(
                f"worker {self.index}: source {local_id} did not reply"
            )
        return reply.point, float(reply.time)

    def probe_batch(
        self, local_ids, time: float, clock: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Probe several local sources; replies as an ``(m, d)`` frame."""
        self._advance_clock(clock)
        rows = (
            local_ids.tolist()
            if isinstance(local_ids, np.ndarray)
            else list(local_ids)
        )
        points = np.empty((len(rows), self._dimension), dtype=np.float64)
        times = np.empty(len(rows), dtype=np.float64)
        for i, local_id in enumerate(rows):
            point, reply_time = self.probe(local_id, time)
            points[i] = point
            times[i] = reply_time
        return points, times

    def _packed_outbox(self):
        """The captured self-corrections as a point-batch frame."""
        d = self._dimension
        if not self.outbox:
            return pack_points(
                np.empty(0, dtype=np.int64), np.empty((0, d)), np.empty(0), d
            )
        rows = [entry[0] for entry in self.outbox]
        points = np.asarray([entry[1] for entry in self.outbox], np.float64)
        times = [entry[2] for entry in self.outbox]
        return pack_points(rows, points, times, d)

    def deploy_regions(self, local_ids, frame, assumed, times, clock=None):
        """Install a region frame in order; corrections back as a frame.

        The frame decodes once (shared instances per distinct encoding,
        mirroring the sequential coordinator's shared region objects)
        and installs through the sources, whose membership write-through
        scatters the quiescence boxes into the worker's geometric plane.
        """
        self._advance_clock(clock)
        regions = unpack_regions(frame)
        self.outbox.clear()
        send = self.channel.send_to_source
        for local_id, region, belief, time in zip(
            local_ids.tolist(), regions, assumed.tolist(), times.tolist()
        ):
            send(
                RegionConstraintMessage(
                    stream_id=local_id,
                    time=time,
                    region=region,
                    assumed_inside=None if belief < 0 else bool(belief),
                )
            )
        return self._packed_outbox()

    def _handle_op(self, op: str, request: tuple):
        if op == "deploy_regions":
            return self.deploy_regions(*request[1:6])
        return super()._handle_op(op, request)


#: Worker stack selector used by :func:`_worker_main` (spec ``stack`` key).
_WORKER_STACKS = {"streams": ShardWorker, "spatial": SpatialShardWorker}


def _worker_main(conn, spec: dict) -> None:
    """Process entrypoint: build the shard runtime, serve requests.

    Every request that expects a reply is answered with an ``("ok",
    payload)`` envelope; a handler exception sends ``("err",
    traceback)`` and exits, so the coordinator either reads the error
    or detects the dead process — never hangs.  Cumulative busy time
    (deserialize + handle + serialize) feeds the capacity model.
    """
    try:
        worker_cls = _WORKER_STACKS[spec.pop("stack", "streams")]
        worker = worker_cls(**spec)
    except Exception:  # pragma: no cover - construction is deterministic
        try:
            conn.send_bytes(pickle.dumps(("err", traceback.format_exc())))
        finally:
            conn.close()
        return
    try:
        while True:
            data = conn.recv_bytes()
            started = _time.perf_counter()
            request = pickle.loads(data)
            if request[0] == "stop":
                break
            try:
                reply = worker.handle(request)
            except BaseException:
                conn.send_bytes(pickle.dumps(("err", traceback.format_exc())))
                break
            if reply is not _NO_REPLY:
                conn.send_bytes(pickle.dumps(("ok", reply)))
            worker.busy_seconds += _time.perf_counter() - started
    except (EOFError, OSError, KeyboardInterrupt):  # coordinator went away
        pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# The coordinator side
# ----------------------------------------------------------------------
@dataclass
class _WorkerHandle:
    index: int
    lo: int
    hi: int
    process: object
    conn: object


@dataclass
class BusStats:
    """Serialization + coordination counters (DESIGN.md §10)."""

    posts: int = 0
    replies: int = 0
    bytes_out: int = 0
    bytes_in: int = 0
    recv_wait_seconds: float = 0.0
    clock: float = 0.0

    def as_dict(self) -> dict:
        return {
            "posts": self.posts,
            "replies": self.replies,
            "bytes_out": self.bytes_out,
            "bytes_in": self.bytes_in,
            "recv_wait_seconds": self.recv_wait_seconds,
            "coordination_clock": self.clock,
        }


class CoordinatorBus:
    """Pipes to the workers + deterministic reply collection.

    Requests are posted fire-and-forget (pickle framing over
    ``Connection.send_bytes``, counted for the serialization cost
    model).  :meth:`collect` is a barrier: it receives one reply per
    requested worker — polling with a liveness check so a crashed
    worker raises :class:`TransportError` promptly — then assigns each
    reply a modeled delivery time and releases them through the same
    ``(delivery time, send seq)`` heap discipline as ``LatencyChannel``.
    Because the barrier waits for *all* replies before releasing any,
    the release order is a pure function of the modeled delays and the
    posting order: OS scheduling of the worker processes cannot leak
    into the coordinator's view, which is the transport's determinism
    anchor.
    """

    def __init__(self, handles: Sequence[_WorkerHandle], latency_model=None) -> None:
        self._handles = list(handles)
        self._seq = itertools.count()
        sampler = (
            latency_model.make_sampler(channel=len(handles))
            if latency_model is not None
            else None
        )
        self._sample: Callable[[], float] = (
            (lambda: sampler(True)) if sampler is not None else (lambda: 0.0)
        )
        self.stats = BusStats()

    @property
    def n_workers(self) -> int:
        return len(self._handles)

    def handle(self, index: int) -> _WorkerHandle:
        return self._handles[index]

    def post(self, index: int, request: tuple) -> None:
        handle = self._handles[index]
        data = pickle.dumps(request)
        self.stats.posts += 1
        self.stats.bytes_out += len(data)
        try:
            handle.conn.send_bytes(data)
        except (BrokenPipeError, OSError) as exc:
            raise TransportError(
                f"shard worker {index} [{handle.lo}, {handle.hi}) is gone: "
                f"{exc}"
            ) from exc

    def _recv(self, index: int, timeout: float = _RECV_TIMEOUT):
        handle = self._handles[index]
        deadline = _time.perf_counter() + timeout
        waited_from = _time.perf_counter()
        try:
            while not handle.conn.poll(_POLL_INTERVAL):
                if not handle.process.is_alive():
                    raise TransportError(
                        f"shard worker {index} [{handle.lo}, {handle.hi}) "
                        f"died (exit code {handle.process.exitcode})"
                    )
                if _time.perf_counter() > deadline:
                    raise TransportError(
                        f"shard worker {index} did not reply within "
                        f"{timeout:.0f}s"
                    )
            data = handle.conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise TransportError(
                f"shard worker {index} closed its pipe mid-reply"
            ) from exc
        finally:
            self.stats.recv_wait_seconds += _time.perf_counter() - waited_from
        self.stats.replies += 1
        self.stats.bytes_in += len(data)
        status, payload = pickle.loads(data)
        if status != "ok":
            raise TransportError(
                f"shard worker {index} failed:\n{payload}"
            )
        return payload

    def collect(self, indices: Sequence[int]) -> list[tuple[int, object]]:
        """Barrier-receive from *indices*; release in deterministic order."""
        heap: list[tuple[float, int, int, object]] = []
        for index in indices:
            payload = self._recv(index)
            delivery = self.stats.clock + float(self._sample())
            heapq.heappush(heap, (delivery, next(self._seq), index, payload))
        out: list[tuple[int, object]] = []
        while heap:
            delivery, _, index, payload = heapq.heappop(heap)
            if delivery > self.stats.clock:
                self.stats.clock = delivery
            out.append((index, payload))
        return out

    def close(self) -> None:
        for handle in self._handles:
            try:
                handle.conn.send_bytes(pickle.dumps(("stop",)))
            except (BrokenPipeError, OSError):
                pass
        for handle in self._handles:
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():  # pragma: no cover - stop suffices
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass


@dataclass(frozen=True)
class _PlaneEntry:
    """One in-flight message on the coordinator's merged plane."""

    time: float  #: modeled delivery time
    lseq: int  #: send seq on the owning worker's channel (FIFO tiebreak)
    worker: int
    stream: int  #: global stream id
    lstream: int  #: local stream row (ack + deliver vocabulary)
    uplink: bool
    send_time: float
    payload: object = field(default=None, compare=False)


class InFlightPlane:
    """The coordinator's merged in-flight heap (DESIGN.md §10.4).

    The cross-process generalization of one
    :class:`~repro.network.latency.LatencyChannel` heap: every worker's
    pending entries, merged under the same ``(delivery time, send seq)``
    discipline.  Global order is tracked by a lazy head heap ``(time,
    arrival seq, worker)`` — the transport analogue of the engine's
    one-event-per-send schedule, where an event that finds its message
    already delivered fires as a no-op — while each worker's entries
    live in a per-worker heap keyed ``(time, local send seq)``, because
    that local key is the order the worker's own engine would have
    delivered them in.

    The plane doubles as the latency *evidence* provider: it implements
    the :class:`~repro.correctness.staleness.StalenessWindow` channel
    API (``in_flight_count``, ``deferred_delivered_count``,
    ``in_flight_stream_ids``, ``recently_delivered_streams``) for
    messages whose flight crosses the process boundary.
    """

    def __init__(self) -> None:
        self._arrival = itertools.count()
        self._heads: list[tuple[float, int, int]] = []
        self._queues: dict[int, list[tuple[float, int, _PlaneEntry]]] = {}
        self._count = 0
        self._delivered = 0
        self._last_delivery: dict[int, float] = {}

    def push(self, entry: _PlaneEntry) -> None:
        heapq.heappush(
            self._heads, (entry.time, next(self._arrival), entry.worker)
        )
        heapq.heappush(
            self._queues.setdefault(entry.worker, []),
            (entry.time, entry.lseq, entry),
        )
        self._count += 1

    # -- stepping -------------------------------------------------------
    @property
    def next_delivery_time(self) -> float | None:
        """Earliest pending delivery time across all workers (exact)."""
        times = [queue[0][0] for queue in self._queues.values() if queue]
        return min(times) if times else None

    def next_group(self, limit: float) -> tuple[int, float] | None:
        """Consume the earliest head due at or before *limit*.

        Returns ``(worker, trigger time)`` for a head whose worker
        still has an entry due at that time; stale heads (their entry
        was delivered by an earlier group's drain) are discarded, the
        engine's no-op-event semantics.
        """
        while self._heads and self._heads[0][0] <= limit:
            time, _, worker = heapq.heappop(self._heads)
            queue = self._queues.get(worker)
            if queue and queue[0][0] <= time:
                return worker, time
        return None

    def peek_worker(
        self, worker: int, limit: float
    ) -> _PlaneEntry | None:
        """The worker's earliest entry due at or before *limit*."""
        queue = self._queues.get(worker)
        if queue and queue[0][0] <= limit:
            return queue[0][2]
        return None

    def downlink_run(
        self, worker: int, limit: float
    ) -> tuple[float, int, int]:
        """The worker's leading consecutive downlink entries ≤ *limit*.

        Returns ``(time, lseq, count)`` of the run's last entry — the
        key limit for one ``deliver`` op.  The run stops at the first
        uplink because that delivery (and its reaction) belongs to the
        coordinator and must interleave at its exact heap position.
        """
        queue = self._queues.get(worker) or []
        last = None
        count = 0
        for time, lseq, entry in sorted(queue):
            if time > limit or entry.uplink:
                break
            last = (time, lseq)
            count += 1
        if last is None:  # pragma: no cover - callers peek first
            raise ValueError("no leading downlink run")
        return last[0], last[1], count

    def pop_worker(self, worker: int, count: int = 1) -> list[_PlaneEntry]:
        """Book delivery of the worker's *count* earliest entries."""
        queue = self._queues[worker]
        out = []
        for _ in range(count):
            time, _, entry = heapq.heappop(queue)
            self._count -= 1
            self._delivered += 1
            previous = self._last_delivery.get(entry.stream)
            if previous is None or time > previous:
                self._last_delivery[entry.stream] = time
            out.append(entry)
        return out

    def worker_pending(self, worker: int) -> bool:
        return bool(self._queues.get(worker))

    # -- staleness evidence (the LatencyChannel channel API) ------------
    @property
    def in_flight_count(self) -> int:
        return self._count

    @property
    def deferred_delivered_count(self) -> int:
        return self._delivered

    def in_flight_stream_ids(self) -> set[int]:
        return {
            entry.stream
            for queue in self._queues.values()
            for _, _, entry in queue
        }

    def recently_delivered_streams(
        self, time: float, window: float
    ) -> set[int]:
        cutoff = time - window
        return {
            stream
            for stream, delivered in self._last_delivery.items()
            if cutoff <= delivered <= time
        }


class TransportShardedServer(DeferredDeliveryMixin):
    """Coordinator for coupled protocols over worker processes.

    Exposes the Server control plane (``probe``, ``probe_all``,
    ``deploy``, ``broadcast``, ``state``, ``rank_view``, ``stream_ids``,
    ``n_streams``, ``now``) so the scalar protocols run unmodified.

    Why the ledger is byte-identical to sequential sharded serving:

    * **Dispatch order.**  Per-shard candidates are *global trace
      positions*; positions are unique, so the minimum is exactly the
      record sequential replay dispatches next, and every earlier
      record is covered by some shard's quiescence proof.
    * **Message multiset.**  The ledger counts (phase, kind) pairs and
      is order-insensitive within a phase, so charging each probe,
      constraint, update and self-correction at the coordinator — at
      the virtual time and phase the sequential coordinator would
      charge it — yields the identical snapshot no matter how the RPC
      batching groups the wire traffic.
    * **Reaction ordering.**  Constraint deployments are buffered and
      flushed (a) before any probe, and (b) at the end of every
      protocol step; returned self-corrections join the coordinator's
      global deferred-delivery FIFO in flush order.  Both points are
      exactly where the sequential coordinator's messages take effect,
      and ``_now`` is constant within a step, so times match too.
    * **Stage-before-reaction.**  ``advance`` is posted to every other
      worker *before* the owner's dispatch reply is processed; pipe
      FIFO then guarantees each worker stages its quiescent prefix
      against the pre-reaction columns it was proven under, before any
      of the reaction's probes or deployments can touch them.
    * **In-flight order.**  Under a nonzero model every deferred
      message lives on the merged plane under its channel's own
      ``(delivery time, send seq)`` key, worker channels never
      self-deliver, and the stepper fires plane groups before any
      record at or past their delivery times — so deliveries, nested
      reactions, and dispatches interleave exactly as the sequential
      engine's event loop would have fired them (measure-zero
      cross-shard delivery-time ties excepted, where the global
      arrival order replaces the engine's insertion order).
    """

    def __init__(
        self,
        trace,
        protocol: FilterProtocol,
        n_shards: int,
        latency=None,
        replay_mode: str = "auto",
        batch_size: int | None = None,
        min_chunk: int | None = None,
    ) -> None:
        from repro.runtime.session import DEFAULT_BATCH_SIZE, DEFAULT_MIN_CHUNK

        model = as_latency_model(latency)
        self.protocol = protocol
        self._now = 0.0
        self._trace = trace
        self._latency_model = model
        self._replay_mode = replay_mode
        self._batch_size = int(batch_size or DEFAULT_BATCH_SIZE)
        self._min_chunk = int(min_chunk or DEFAULT_MIN_CHUNK)
        n = trace.n_streams
        self.ranges = shard_ranges(n, n_shards)
        self._state = StreamStateTable(n)
        self.shard_views = [
            StateShardView(self._state, lo, hi) for lo, hi in self.ranges
        ]
        validate_shard_alignment(self._state, self.shard_views)
        self._shard_of = np.empty(n, dtype=np.int64)
        for index, (lo, hi) in enumerate(self.ranges):
            self._shard_of[lo:hi] = index
        self.ledger = MessageLedger()
        self._deploy_buffer: list[
            tuple[int, float, float, bool | None, float]
        ] = []
        self._dirty: set[int] = set(range(len(self.ranges)))
        #: Whether the model can defer deliveries across epochs; drives
        #: the in-flight-plane stepping and the settle/drain end phase.
        self._coupled = model is not None and not model.is_zero
        self._plane = InFlightPlane()
        #: Global event-time mirror (≥ every processed delivery/record
        #: time); distinct from ``_now``, which tracks message *send*
        #: times exactly as the sequential coordinator's clock does.
        self._clock = 0.0
        #: Per-worker buffered delivery acks, posted before the next op.
        self._acks: list[list[tuple[float, int]]] = [
            [] for _ in self.ranges
        ]
        self._epochs = 0
        self._worker_stats: list[dict] | None = None
        self.bus: CoordinatorBus | None = None
        self._init_delivery()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    #: Worker stack this coordinator launches (``_WORKER_STACKS`` key).
    _worker_stack = "streams"

    def _initial_payloads(self, lo: int, hi: int) -> np.ndarray:
        """A shard's initial payloads (copied: the spec crosses a fork)."""
        return np.asarray(
            self._trace.initial_values[lo:hi], dtype=np.float64
        ).copy()

    def _record_payloads(self, keep: np.ndarray) -> np.ndarray:
        """A shard's record payload column/matrix."""
        return self._trace.values[keep]

    def launch(self) -> "TransportShardedServer":
        """Spawn one worker process per shard and open the bus."""
        if self.bus is not None:
            return self
        trace = self._trace
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        # Freeze the parent heap before forking: otherwise every object
        # the coordinator process has ever allocated (and, under pytest,
        # the whole test session) lands in the workers' collectible
        # generations, and their gen-2 collections pay to traverse it on
        # every cycle of the replay hot loop.
        gc.collect()
        gc.freeze()
        handles = []
        try:
            for index, (lo, hi) in enumerate(self.ranges):
                keep = (trace.stream_ids >= lo) & (trace.stream_ids < hi)
                spec = {
                    "stack": self._worker_stack,
                    "index": index,
                    "initial_values": self._initial_payloads(lo, hi),
                    "times": trace.times[keep],
                    "local_ids": (trace.stream_ids[keep] - lo).astype(
                        np.int64
                    ),
                    "values": self._record_payloads(keep),
                    "gpos": np.nonzero(keep)[0].astype(np.int64),
                    "latency_model": self._latency_model,
                    "replay_mode": self._replay_mode,
                    "batch_size": self._batch_size,
                    "min_chunk": self._min_chunk,
                }
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, spec),
                    daemon=True,
                    name=f"shard-worker-{index}",
                )
                process.start()
                child_conn.close()
                handles.append(
                    _WorkerHandle(index, lo, hi, process, parent_conn)
                )
        except BaseException:
            for handle in handles:
                handle.process.terminate()
            raise
        finally:
            gc.unfreeze()
        self.bus = CoordinatorBus(handles, self._latency_model)
        return self

    def close(self) -> None:
        if self.bus is not None:
            self.bus.close()
            self.bus = None

    def __enter__(self) -> "TransportShardedServer":
        return self.launch()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _require_bus(self) -> CoordinatorBus:
        if self.bus is None:
            raise TransportError(
                "transport not launched; use it as a context manager"
            )
        return self.bus

    # ------------------------------------------------------------------
    # Server-compatible surface
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def n_shards(self) -> int:
        return len(self.ranges)

    @property
    def n_streams(self) -> int:
        return self._state.n_streams

    @property
    def stream_ids(self) -> list[int]:
        return list(range(self._state.n_streams))

    @property
    def state(self) -> StreamStateTable:
        """The coordinator's mirror table (value + protocol planes).

        The workers own the *filter* plane (bounds + believed
        membership written through by their sources); the coordinator
        mirrors every write a sequential coordinator's table would see
        from its own half — probe replies, update deliveries, deploy
        records, protocol answer/tracked/silencer planes — which is
        all the scalar protocols ever read.
        """
        return self._state

    def rank_view(self, distance_array: Callable) -> ShardedRankView:
        return ShardedRankView(self.shard_views, distance_array)

    def initialize(self, time: float = 0.0) -> None:
        self._require_bus()
        self.ledger.phase = Phase.INITIALIZATION
        self._now = time
        self._clock = float(time)
        self._guarded_call(self.protocol.initialize, self)
        self.ledger.phase = Phase.MAINTENANCE

    def snapshot(self):
        return self.ledger.snapshot()

    # ------------------------------------------------------------------
    # Control plane (RPC-backed, coordinator-charged)
    # ------------------------------------------------------------------
    def _view_for(self, stream_id: int) -> tuple[int, StateShardView]:
        index = int(self._shard_of[int(stream_id)])
        return index, self.shard_views[index]

    def _post(self, index: int, request: tuple) -> None:
        """Post a request, preceded by any buffered delivery acks.

        Acks retire the worker-local flow bookkeeping of uplinks the
        coordinator delivered from the plane; batching them onto the
        next real request keeps them off the hot path while pipe FIFO
        guarantees they land before the operation that might send on
        the same flow.
        """
        bus = self._require_bus()
        acks = self._acks[index]
        if acks:
            self._acks[index] = []
            n = len(acks)
            times = np.fromiter((a[0] for a in acks), np.float64, n)
            streams = np.fromiter((a[1] for a in acks), np.int64, n)
            bus.post(index, ("ack", times, streams))
        bus.post(index, request)

    def _absorb(self, index: int, reply):
        """Unwrap one ``(payload, aux)`` envelope, merging the aux's
        exported heap entries into the plane."""
        payload, aux = reply
        if aux:
            lo = self.ranges[index][0]
            uplinks = aux.get("uplinks")
            if uplinks is not None:
                for delivery, lseq, lstream, send, value in (
                    self._unpack_uplinks(uplinks)
                ):
                    # Charged here — export time is send time, the same
                    # MAINTENANCE/INITIALIZATION slot the sequential
                    # channel charges the send in.
                    self.ledger.record_kind(MessageKind.UPDATE)
                    self._plane.push(
                        _PlaneEntry(
                            time=delivery,
                            lseq=lseq,
                            worker=index,
                            stream=lstream + lo,
                            lstream=lstream,
                            uplink=True,
                            send_time=send,
                            payload=value,
                        )
                    )
            pending = aux.get("pending")
            if pending is not None:
                for delivery, lseq, lstream, send, _ in unpack_in_flight(
                    pending
                ):
                    # Metadata only: the install was already charged at
                    # deploy flush; the worker's heap stays
                    # authoritative for its payload.
                    self._plane.push(
                        _PlaneEntry(
                            time=delivery,
                            lseq=lseq,
                            worker=index,
                            stream=lstream + lo,
                            lstream=lstream,
                            uplink=False,
                            send_time=send,
                        )
                    )
        return payload

    def _unpack_uplinks(self, frame):
        """Decode an uplink export frame (scalar payloads here)."""
        return unpack_in_flight(frame)

    def _collect_one(self, index: int):
        ((_, reply),) = self._require_bus().collect([index])
        return self._absorb(index, reply)

    def _rpc(self, index: int, request: tuple):
        self._post(index, request)
        return self._collect_one(index)

    def probe(self, stream_id: int) -> float:
        """Probe one source at its worker (2 messages, charged here)."""
        self._flush_deploys()
        index, view = self._view_for(stream_id)
        self.ledger.record_kind(MessageKind.PROBE_REQUEST)
        value, time = self._rpc(
            index, ("probe", int(stream_id) - view.lo, self._now, self._clock)
        )
        self.ledger.record_kind(MessageKind.PROBE_REPLY)
        view.record_report(int(stream_id) - view.lo, float(value), float(time))
        self._dirty.add(index)
        return float(value)

    def _owner_runs(
        self, stream_ids: Sequence[int]
    ) -> list[tuple[int, list[int]]]:
        """Split *stream_ids* into consecutive same-worker runs, in order."""
        runs: list[tuple[int, list[int]]] = []
        for stream_id in stream_ids:
            index = int(self._shard_of[int(stream_id)])
            if runs and runs[-1][0] == index:
                runs[-1][1].append(int(stream_id))
            else:
                runs.append((index, [int(stream_id)]))
        return runs

    def probe_all(
        self, stream_ids: list[int] | None = None
    ) -> dict[int, float]:
        """Probe several (default: all) sources; one RPC per worker run.

        The ledger charge (one request + one reply per stream) and the
        per-stream report recording are identical to probing one by
        one; only the wire framing is batched.
        """
        self._flush_deploys()
        targets = self.stream_ids if stream_ids is None else list(stream_ids)
        results: dict[int, float] = {}
        for index, gids in self._owner_runs(targets):
            view = self.shard_views[index]
            count = len(gids)
            self.ledger.record_kind(MessageKind.PROBE_REQUEST, count)
            rows = np.fromiter(
                (gid - view.lo for gid in gids), np.int64, count
            )
            values, times = self._rpc(
                index, ("probe_batch", rows, self._now, self._clock)
            )
            self.ledger.record_kind(MessageKind.PROBE_REPLY, count)
            self._dirty.add(index)
            # Vectorized record_report over the run: scatter the value
            # plane, then invalidate this shard's rank listeners
            # wholesale — a bulk collection dirties (nearly) every key
            # anyway, and invalidation affects only later recompute
            # cost, never rank results.
            view.values[rows] = values
            view.report_time[rows] = times
            fresh = int(np.count_nonzero(~view.known[rows]))
            if fresh:
                view.known[rows] = True
                view._known_count += fresh
            for listener in view._listeners:
                listener.invalidate()
            for gid, value in zip(gids, values.tolist()):
                results[gid] = value
        return results

    def deploy(
        self,
        stream_id: int,
        lower: float,
        upper: float,
        assumed_inside: bool | None = None,
    ) -> None:
        """Buffer a constraint; everything lands at the next flush.

        Deferral is invisible: the ledger charge moves within one phase
        (the flush points all precede the next phase flip, and the
        snapshot is an order-insensitive per-phase multiset); the
        mirror's bounds record is scatter-written at flush, before any
        read that could observe it (no protocol reads the constraint
        columns — the coordinator never scans — and the flush precedes
        every probe); the *source* effect and any self-correction land
        at the flush points, which precede every subsequent read of
        that source.  Keeping the hot ``deploy`` a bare append is what
        lets a 10k-stream bound broadcast cost one RPC per shard.
        """
        self._deploy_buffer.append(
            (int(stream_id), float(lower), float(upper), assumed_inside,
             self._now)
        )

    def broadcast(
        self,
        lower: float,
        upper: float,
        assumed_inside: dict[int, bool] | None = None,
    ) -> None:
        for stream_id in self.stream_ids:
            belief = None
            if assumed_inside is not None:
                belief = assumed_inside.get(stream_id)
            self.deploy(stream_id, lower, upper, assumed_inside=belief)

    def _flush_deploys(self) -> None:
        """Transmit buffered constraints; queue their self-corrections.

        Batches are consecutive same-worker runs of the buffer, so the
        per-source install order is the sequential deploy order.  A
        stale-belief self-correction is charged as the update message
        the source sent (at the constraint's time — ``_now`` is
        constant within a step) and appended to the deferred-delivery
        FIFO, exactly where the sequential coordinator would queue the
        mid-step update; the caller's drain point dispatches it.
        """
        if not self._deploy_buffer:
            return
        buffered, self._deploy_buffer = self._deploy_buffer, []
        n = len(buffered)
        self.ledger.record_kind(MessageKind.CONSTRAINT, n)
        gids = np.fromiter((item[0] for item in buffered), np.int64, n)
        lowers = np.fromiter((item[1] for item in buffered), np.float64, n)
        uppers = np.fromiter((item[2] for item in buffered), np.float64, n)
        assumed = np.fromiter(
            (-1 if item[3] is None else int(item[3]) for item in buffered),
            np.int8,
            n,
        )
        times = np.fromiter((item[4] for item in buffered), np.float64, n)
        # Mirror the deploy records in one scatter (duplicates: numpy
        # fancy assignment keeps the last write, which is exactly the
        # in-order record_deploy outcome; shard views alias these
        # columns, so per-view recording would write the same memory).
        state = self._state
        state.lower[gids] = lowers
        state.upper[gids] = uppers
        state.scannable[gids] = True
        owners = self._shard_of[gids]
        cuts = np.nonzero(np.diff(owners))[0] + 1
        bounds = [0, *cuts.tolist(), n]
        for a, b in zip(bounds[:-1], bounds[1:]):
            index = int(owners[a])
            lo = self.ranges[index][0]
            corrections = self._rpc(
                index,
                (
                    "deploy_batch",
                    gids[a:b] - lo,
                    lowers[a:b],
                    uppers[a:b],
                    assumed[a:b],
                    times[a:b],
                    self._clock,
                ),
            )
            self._dirty.add(index)
            for local_id, value, time in corrections:
                self.ledger.record_kind(MessageKind.UPDATE)
                time = float(time)
                if time > self._now:
                    self._now = time
                self._pending.append(
                    UpdateMessage(
                        stream_id=int(local_id) + lo,
                        time=time,
                        value=float(value),
                    )
                )

    # ------------------------------------------------------------------
    # Deferred delivery (the sequential re-entrancy discipline, plus
    # deploy-buffer flushing at every step boundary)
    # ------------------------------------------------------------------
    def _guarded_call(self, fn: Callable, *args) -> None:
        self._busy = True
        try:
            fn(*args)
        finally:
            self._busy = False
        self._flush_deploys()
        self._drain_pending()

    def _dispatch_one(self, item) -> None:
        self._busy = True
        try:
            self._handle_delivery(item)
        finally:
            self._busy = False
        self._flush_deploys()

    def _receive_update(self, message: UpdateMessage) -> None:
        if message.time > self._now:
            self._now = message.time
        self._deliver(message)

    def _handle_delivery(self, message: UpdateMessage) -> None:
        index, view = self._view_for(message.stream_id)
        view.record_report(
            message.stream_id - view.lo, message.value, message.time
        )
        self.protocol.on_update(
            self, message.stream_id, message.value, message.time
        )

    # ------------------------------------------------------------------
    # The epoch replay loop
    # ------------------------------------------------------------------
    def _uplink_message(self, lo: int, item) -> Message:
        """Reconstitute one captured worker uplink as a global message."""
        local_id, value, time = item
        return UpdateMessage(
            stream_id=int(local_id) + lo,
            time=float(time),
            value=float(value),
        )

    def _trace_payloads(self) -> np.ndarray:
        """The trace's record payload column (checking-run oracle feed)."""
        return self._trace.values

    def replay(
        self,
        horizon: float | None = None,
        oracle_apply: Callable | None = None,
        after_apply: Callable | None = None,
    ) -> list[dict]:
        """Drive the full trace; returns the per-worker replay stats.

        With ``oracle_apply``/``after_apply`` callbacks this is a
        *checking* run: the coordinator — which holds the full trace —
        applies the oracle itself, record by record in global order, and
        evaluates the checker at epoch boundaries.  Between two
        dispatches every record is quiescent (its source emits no
        message, so the protocol's answer cannot move), which makes the
        boundary evaluation order-identical to sequential per-event
        checking; for the dispatched record itself the oracle applies
        before the dispatch and the check runs after the reaction
        settles, exactly the sequential ``oracle_apply → apply →
        after_apply`` sandwich.  Checks charge nothing, so the ledger is
        untouched — and the workers keep their batched pre-scan, which
        sequential checking (forced per-event) gives up.
        """
        bus = self._require_bus()
        n_workers = len(self.ranges)
        candidates: dict[int, tuple[int | None, bool]] = {}
        checking = oracle_apply is not None or after_apply is not None
        trace = self._trace
        payloads = self._trace_payloads() if checking else None
        n_records = len(trace.times)
        cursor = 0
        plane = self._plane

        def settle(upto: int) -> None:
            """Oracle-apply + check the quiescent records [cursor, upto)."""
            nonlocal cursor
            while cursor < upto:
                if oracle_apply is not None:
                    oracle_apply(
                        int(trace.stream_ids[cursor]), payloads[cursor]
                    )
                if after_apply is not None:
                    after_apply(float(trace.times[cursor]))
                cursor += 1

        while True:
            # Settle anything a previous epoch left queued (defensive;
            # step boundaries flush and drain already).
            self._flush_deploys()
            self._drain_pending()
            dirty = sorted(self._dirty)
            self._dirty = set()
            for index in dirty:
                self._post(index, ("scan",))
            for index, reply in bus.collect(dirty):
                candidates[index] = self._absorb(index, reply)
            self._epochs += 1
            live = {
                index: candidate
                for index, (candidate, _) in candidates.items()
                if candidate is not None
            }
            if live:
                owner = min(live, key=live.get)
                g = live[owner]
                limit = float(trace.times[g])
            else:
                owner = g = None
                limit = math.inf if horizon is None else float(horizon)
                if any(b for _, b in candidates.values()):
                    # Some worker's proofs are capped behind a pending
                    # install; it cannot show a candidate until the
                    # plane delivers, however late the delivery falls.
                    head = plane.next_delivery_time
                    if head is None:  # pragma: no cover - defensive
                        raise TransportError(
                            "workers blocked behind the in-flight "
                            "barrier with an empty plane"
                        )
                    limit = max(limit, head)
            head = plane.next_delivery_time
            if head is not None and head <= limit:
                # Advance to the earliest pending delivery instead of
                # assuming quiescence: the plane group due first fires,
                # then the loop restarts so the dirty workers rescan —
                # one group at a time, because an install changes the
                # constraint columns candidates were proven against,
                # and the record it flips may precede the next head.
                group = plane.next_group(limit)
                if group is not None:
                    if checking:
                        # Keep the oracle sandwich exact: check the
                        # quiescent records that precede this delivery
                        # before its reaction can move the answer.
                        bound = g if g is not None else n_records
                        settle(
                            int(
                                np.searchsorted(
                                    trace.times[:bound],
                                    group[1],
                                    side="left",
                                )
                            )
                        )
                    # Sequential replay consumes every record strictly
                    # below a delivery's time before the delivery event
                    # fires; the reaction's probes read the sources at
                    # that frontier.  Catch every shard up first.
                    for index in range(n_workers):
                        self._post(index, ("advance_time", group[1]))
                    self._deliver_plane_group(*group)
                    continue
            if owner is None:
                break
            if checking:
                settle(g)
                if oracle_apply is not None:
                    oracle_apply(int(trace.stream_ids[g]), payloads[g])
            if limit > self._clock:
                self._clock = limit
            for index in range(n_workers):
                if index != owner:
                    self._post(index, ("advance", g))
            self._post(owner, ("dispatch", g))
            uplinks = self._collect_one(owner)
            candidates[owner] = (None, False)
            self._dirty.add(owner)
            lo = self.ranges[owner][0]
            for item in uplinks:
                self.ledger.record_kind(MessageKind.UPDATE)
                self._receive_update(self._uplink_message(lo, item))
            if checking:
                # Settle the reaction (deploy flush + self-correction
                # drain) before the boundary check, as inline delivery
                # would have in the sequential coordinator.
                self._flush_deploys()
                self._drain_pending()
                if after_apply is not None:
                    after_apply(float(trace.times[g]))
                cursor = g + 1
        if checking:
            settle(n_records)
        if self._coupled:
            # The sequential end-of-replay sequence, across the pipe:
            # every worker stages its proven tail and runs its engine
            # out to the horizon (firing nothing — deliveries are
            # externally stepped), then the plane's leftovers are
            # force-delivered in worker order, heap order within —
            # channel-by-channel drain_in_flight(), exactly.
            for index in range(n_workers):
                self._post(index, ("settle", horizon))
            for index, reply in bus.collect(range(n_workers)):
                self._absorb(index, reply)
            if horizon is not None and float(horizon) > self._clock:
                self._clock = float(horizon)
            self._drain_remaining()
        for index in range(n_workers):
            self._post(index, ("finish", horizon))
        stats = [None] * n_workers
        for index, reply in bus.collect(range(n_workers)):
            stats[index] = self._absorb(index, reply)
        self._worker_stats = stats
        return list(stats)

    def _deliver_plane_group(
        self, worker: int, t0: float, advance: bool = True
    ) -> None:
        """Deliver one worker's plane entries due at or before *t0*.

        Entries go in ``(time, local send seq)`` order — the order the
        worker's own engine would have fired them.  Uplinks are
        delivered by the coordinator itself (ack buffered, reaction run
        through the deferred-delivery discipline); runs of consecutive
        downlinks become one ``deliver`` op, re-issued after any
        early stop so nested reactions interleave exactly as the
        engine's.  With ``advance`` false the worker clocks stay frozen
        (the end-of-replay forced drain).
        """
        plane = self._plane
        lo = self.ranges[worker][0]
        while True:
            entry = plane.peek_worker(worker, t0)
            if entry is None:
                return
            if entry.uplink:
                plane.pop_worker(worker)
                if advance and entry.time > self._clock:
                    self._clock = entry.time
                self._acks[worker].append((entry.time, entry.lstream))
                self._receive_update(
                    self._uplink_message(
                        lo, (entry.lstream, entry.payload, entry.send_time)
                    )
                )
                continue
            time_limit, seq_limit, _ = plane.downlink_run(worker, t0)
            outbox, delivered, _ = self._rpc(
                worker, ("deliver", time_limit, seq_limit, advance)
            )
            if delivered < 1:  # pragma: no cover - defensive
                raise TransportError(
                    f"worker {worker}: deliver op consumed nothing at "
                    f"({time_limit}, {seq_limit})"
                )
            done = plane.pop_worker(worker, delivered)
            if advance and done[-1].time > self._clock:
                self._clock = done[-1].time
            self._dirty.add(worker)
            for item in outbox:
                # Inline self-corrections the installs provoked,
                # charged at their send exactly as a deploy flush's.
                self.ledger.record_kind(MessageKind.UPDATE)
                self._receive_update(self._uplink_message(lo, item))

    def _drain_remaining(self) -> None:
        """Force-deliver every remaining plane entry, worker by worker.

        Cascades that land on a not-yet-drained worker are picked up by
        its turn; cascades onto an already-drained worker stay pending
        — precisely the sequential coordinator's channel-order
        ``drain_in_flight()`` semantics.
        """
        for worker in range(len(self.ranges)):
            while self._plane.worker_pending(worker):
                self._deliver_plane_group(worker, math.inf, advance=False)

    @property
    def in_flight_plane(self) -> InFlightPlane:
        """The merged cross-process in-flight heap (latency evidence)."""
        return self._plane

    def transport_stats(self) -> dict:
        """Coordination + serialization counters for the cost model."""
        bus = self.bus
        out = {
            "epochs": self._epochs,
            "workers": len(self.ranges),
            "in_flight_deliveries": self._plane.deferred_delivered_count,
            "in_flight_leaked": self._plane.in_flight_count,
        }
        if bus is not None:
            out.update(bus.stats.as_dict())
        if self._worker_stats is not None:
            out["worker_busy_seconds"] = [
                float(part.get("busy_seconds", 0.0))
                for part in self._worker_stats
            ]
        return out


class SpatialTransportShardedServer(TransportShardedServer):
    """Coordinator for coupled *spatial* protocols over worker processes.

    Exposes the :class:`~repro.server.sharded.ShardedSpatialServer`
    control plane — ``probe`` returns a point, ``probe_all`` a point
    dict, ``deploy`` takes a region and belief — over the same epoch
    protocol and ledger-identity argument as the scalar transport.  The
    wire vocabulary changes shape, not discipline:

    * probes move ``(m, d)`` coordinate frames instead of value arrays;
    * a deploy flush packs each owner run's regions into one
      :class:`~repro.spatial.messages.RegionBatchFrame` (constraint-rect
      columns with identity-deduped encoding) and scatters the mirror's
      containers column *and geometric plane* in bulk
      (:func:`~repro.state.sharding.scatter_region_deploys`), so the
      coordinator's table shows everything a sequential sharded spatial
      coordinator's would — while the workers' own write-through
      installs the same boxes for their AABB pre-scans;
    * self-corrections return as point-batch frames and join the
      deferred-delivery FIFO as
      :class:`~repro.spatial.messages.PointUpdateMessage`\\ s.

    ``broadcast`` is deliberately absent: it is a scalar-interval
    operation no spatial protocol speaks.
    """

    _worker_stack = "spatial"

    def __init__(self, trace, protocol, n_shards: int, **kwargs) -> None:
        super().__init__(trace, protocol, n_shards, **kwargs)
        self._dimension = int(trace.dimension)

    # -- launch hooks ---------------------------------------------------
    def _initial_payloads(self, lo: int, hi: int) -> np.ndarray:
        return np.ascontiguousarray(
            self._trace.initial_points[lo:hi], dtype=np.float64
        )

    def _record_payloads(self, keep: np.ndarray) -> np.ndarray:
        return self._trace.points[keep]

    def _trace_payloads(self) -> np.ndarray:
        return self._trace.points

    # -- control plane --------------------------------------------------
    def probe(self, stream_id: int) -> np.ndarray:
        """Probe one source at its worker (2 messages, charged here)."""
        self._flush_deploys()
        index, view = self._view_for(stream_id)
        self.ledger.record_kind(MessageKind.PROBE_REQUEST)
        point, time = self._rpc(
            index, ("probe", int(stream_id) - view.lo, self._now, self._clock)
        )
        self.ledger.record_kind(MessageKind.PROBE_REPLY)
        point = np.asarray(point, dtype=np.float64)
        view.record_report(int(stream_id) - view.lo, point, float(time))
        self._dirty.add(index)
        return point

    def probe_all(
        self, stream_ids: list[int] | None = None
    ) -> dict[int, np.ndarray]:
        """Probe several (default: all) sources; one RPC per worker run."""
        self._flush_deploys()
        targets = self.stream_ids if stream_ids is None else list(stream_ids)
        results: dict[int, np.ndarray] = {}
        for index, gids in self._owner_runs(targets):
            view = self.shard_views[index]
            count = len(gids)
            self.ledger.record_kind(MessageKind.PROBE_REQUEST, count)
            rows = np.fromiter(
                (gid - view.lo for gid in gids), np.int64, count
            )
            points, times = self._rpc(
                index, ("probe_batch", rows, self._now, self._clock)
            )
            self.ledger.record_kind(MessageKind.PROBE_REPLY, count)
            self._dirty.add(index)
            scatter_point_reports(view, rows, points, times)
            for i, gid in enumerate(gids):
                results[gid] = points[i]
        return results

    def deploy(
        self,
        stream_id: int,
        region,
        assumed_inside: bool | None = None,
    ) -> None:
        """Buffer a region constraint; everything lands at the next flush."""
        self._deploy_buffer.append(
            (int(stream_id), region, assumed_inside, self._now)
        )

    def broadcast(self, *args, **kwargs) -> None:
        raise TypeError(
            "broadcast deploys one scalar interval to every stream; "
            "spatial protocols deploy per-stream regions instead"
        )

    def _flush_deploys(self) -> None:
        """Transmit buffered regions; queue their self-corrections.

        One :class:`RegionBatchFrame` per consecutive same-worker run of
        the buffer, so the per-source install order is the sequential
        deploy order; the coordinator mirror's containers column and
        geometric plane are scattered in bulk before any RPC reply can
        be observed.
        """
        if not self._deploy_buffer:
            return
        buffered, self._deploy_buffer = self._deploy_buffer, []
        n = len(buffered)
        self.ledger.record_kind(MessageKind.CONSTRAINT, n)
        gids = np.fromiter((item[0] for item in buffered), np.int64, n)
        regions = [item[1] for item in buffered]
        assumed = np.fromiter(
            (-1 if item[2] is None else int(item[2]) for item in buffered),
            np.int8,
            n,
        )
        times = np.fromiter((item[3] for item in buffered), np.float64, n)
        scatter_region_deploys(self._state, gids, regions, self._dimension)
        owners = self._shard_of[gids]
        cuts = np.nonzero(np.diff(owners))[0] + 1
        bounds = [0, *cuts.tolist(), n]
        for a, b in zip(bounds[:-1], bounds[1:]):
            index = int(owners[a])
            lo = self.ranges[index][0]
            corrections = self._rpc(
                index,
                (
                    "deploy_regions",
                    gids[a:b] - lo,
                    pack_regions(regions[a:b], self._dimension),
                    assumed[a:b],
                    times[a:b],
                    self._clock,
                ),
            )
            self._dirty.add(index)
            for i in range(len(corrections)):
                self.ledger.record_kind(MessageKind.UPDATE)
                time = float(corrections.times[i])
                if time > self._now:
                    self._now = time
                self._pending.append(
                    PointUpdateMessage(
                        stream_id=int(corrections.rows[i]) + lo,
                        time=time,
                        point=corrections.points[i].copy(),
                    )
                )

    # -- delivery -------------------------------------------------------
    def _unpack_uplinks(self, frame):
        return unpack_point_in_flight(frame)

    def _uplink_message(self, lo: int, item) -> Message:
        local_id, point, time = item
        return PointUpdateMessage(
            stream_id=int(local_id) + lo,
            time=float(time),
            point=np.asarray(point, dtype=np.float64),
        )

    def _handle_delivery(self, message) -> None:
        index, view = self._view_for(message.stream_id)
        view.record_report(
            message.stream_id - view.lo, message.point, message.time
        )
        self.protocol.on_update(
            self, message.stream_id, message.point, message.time
        )
