"""The sharded topology: per-shard servers behind one coordinator.

A :class:`ShardedServer` hosts one protocol over a population
partitioned into contiguous shards.  It exposes the *exact* control
plane of :class:`repro.server.server.Server` (``probe``, ``probe_all``,
``deploy``, ``broadcast``, ``state``, ``rank_view``, ``stream_ids``,
``n_streams``, ``now``), so single-server protocols run on it
unmodified; each per-stream operation is routed to the
:class:`ShardServer` owning that stream.

Why the message ledger is byte-identical to a single server:

* **Storage.**  Every shard's :class:`~repro.state.sharding.
  StateShardView` aliases a slice of the coordinator's global
  :class:`~repro.state.table.StreamStateTable`, so the protocol reads
  exactly the values/bounds/masks it would read on one server.
* **Rank order.**  ``rank_view`` returns a :class:`~repro.state.
  sharding.ShardedRankView` — per-shard incremental maintenance plus a
  k-way ``(key, id)`` heap merge — proven order-identical to the
  unsharded ``RankView`` (tests/state/test_sharding.py).
* **Message multiset.**  Probes, deployments and updates are per-stream
  messages; routing them through per-shard channels that share one
  :class:`~repro.network.accounting.MessageLedger` charges the same
  kinds in the same phases.  ``broadcast``/``probe_all`` iterate global
  ids ascending, matching the single server's iteration order.
* **Delivery order.**  The deferred-delivery re-entrancy discipline
  lives at the *coordinator*: a stale-belief self-correction arriving at
  any shard while the protocol is mid-step is queued in one global FIFO
  and drained after the step, exactly as one server queues it.  (Had
  each shard queued independently, an update on shard B could re-enter
  the protocol while shard A's delivery is still on the stack.)

Both coordinators accept a latency-modeled bus: the per-shard channels
may be :class:`~repro.network.latency.LatencyChannel`s (compiled by the
session builders from ``Deployment(latency=...)``), in which case update
deliveries reach :meth:`ShardedServer._receive_update` at *delivery*
time while probe round-trips stay synchronous (DESIGN.md §8).  The
global delivery FIFO needs no change — a late-arriving self-correction
is just one more deferred delivery — and with ``latency=0`` delivery is
inline, so the byte-identity argument above is untouched.

The spatial stack shards by the same four invariants:
:class:`SpatialShardServer` / :class:`ShardedSpatialServer` mirror the
scalar pair with the point/region message vocabulary and the exact
control plane of :class:`repro.spatial.server.SpatialServer` (``probe``,
``probe_all``, ``deploy(stream_id, region)``, ``state``, ``rank_view``).
Shard views alias the coordinator table's point matrix, container
column, and geometric bbox planes (all lazily allocated on the parent),
so spatial protocols — and the batched AABB quiescence pre-scan — read
the same memory they would on one server.

Both coordinators also have a process-parallel sibling in
``repro/server/transport.py`` (``Deployment.sharded(n,
parallel=True)``): :class:`~repro.server.transport.
TransportShardedServer` for the scalar vocabulary and
:class:`~repro.server.transport.SpatialTransportShardedServer` for the
spatial one, each holding the same control plane and ledger semantics
with the shard populations owned by worker processes (DESIGN.md §10).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.network.channel import Channel
from repro.network.messages import (
    ConstraintMessage,
    Message,
    MessageKind,
    ProbeReplyMessage,
    ProbeRequestMessage,
    UpdateMessage,
)
from repro.protocols.base import FilterProtocol
from repro.runtime.dispatch import DeferredDeliveryMixin
from repro.spatial.messages import (
    PointProbeReplyMessage,
    PointProbeRequestMessage,
    PointUpdateMessage,
    RegionConstraintMessage,
)
from repro.state.sharding import (
    ShardedRankView,
    StateShardView,
    validate_shard_alignment,
)
from repro.state.table import StreamStateTable


class ShardServer:
    """One shard's message endpoint: a channel plus a state-shard view.

    Handles the mechanical half of the server role for its id range
    ``[lo, hi)`` — the probe round-trip and constraint transmission,
    recording into the shard table (local rows, which keeps per-shard
    rank views incremental) — and forwards protocol-facing update
    deliveries to the coordinator, which owns ordering and the protocol.
    """

    def __init__(
        self,
        coordinator: "ShardedServer",
        channel: Channel,
        state: StateShardView,
    ) -> None:
        self._coordinator = coordinator
        self.channel = channel
        self.state = state
        self.lo = state.lo
        self.hi = state.hi
        self._probe_reply: ProbeReplyMessage | None = None
        self._awaiting_probe = False
        channel.bind_server(self._handle_message)

    def probe(self, stream_id: int, time: float) -> float:
        """One probe round-trip to a source this shard owns."""
        self._awaiting_probe = True
        self._probe_reply = None
        self.channel.send_to_source(
            ProbeRequestMessage(stream_id=stream_id, time=time)
        )
        self._awaiting_probe = False
        if self._probe_reply is None:  # pragma: no cover - defensive
            raise RuntimeError(f"source {stream_id} did not reply to probe")
        reply = self._probe_reply
        self.state.record_report(
            reply.stream_id - self.lo, reply.value, reply.time
        )
        return reply.value

    def deploy(
        self,
        stream_id: int,
        lower: float,
        upper: float,
        assumed_inside: bool | None,
        time: float,
    ) -> None:
        """Install a constraint at a source this shard owns."""
        self.state.record_deploy(stream_id - self.lo, lower, upper)
        self.channel.send_to_source(
            ConstraintMessage(
                stream_id=stream_id,
                time=time,
                lower=lower,
                upper=upper,
                assumed_inside=assumed_inside,
            )
        )

    def _handle_message(self, message: Message) -> None:
        if message.kind is MessageKind.PROBE_REPLY:
            if not self._awaiting_probe:  # pragma: no cover - defensive
                raise RuntimeError("unsolicited probe reply")
            assert isinstance(message, ProbeReplyMessage)
            self._probe_reply = message
            return
        if message.kind is MessageKind.UPDATE:
            assert isinstance(message, UpdateMessage)
            self._coordinator._receive_update(message)
            return
        raise RuntimeError(  # pragma: no cover - defensive
            f"shard server received unexpected {message.kind}"
        )


class ShardedServer(DeferredDeliveryMixin):
    """Coordinator over N shard servers; Server-compatible control plane.

    Parameters
    ----------
    channels:
        One :class:`Channel` per shard (all sharing one ledger); the
        shard's sources must already be bound to it with *global*
        stream ids.
    protocol:
        The hosted protocol (runs once, at the coordinator).
    ranges:
        Contiguous ``(lo, hi)`` id ranges, one per channel, covering
        ``range(n_streams)`` in order (see
        :func:`repro.state.sharding.shard_ranges`).
    """

    def __init__(
        self,
        channels: Sequence[Channel],
        protocol: FilterProtocol,
        ranges: Sequence[tuple[int, int]],
        state_factory=None,
    ) -> None:
        if len(channels) != len(ranges):
            raise ValueError("need exactly one channel per shard range")
        if not ranges:
            raise ValueError("need at least one shard")
        self.protocol = protocol
        self._now = 0.0
        n = ranges[-1][1]
        self._state = (state_factory or StreamStateTable)(n)
        self.shards = [
            ShardServer(self, channel, StateShardView(self._state, lo, hi))
            for channel, (lo, hi) in zip(channels, ranges)
        ]
        validate_shard_alignment(
            self._state, [shard.state for shard in self.shards]
        )
        self._shard_of = np.empty(n, dtype=np.int64)
        for index, (lo, hi) in enumerate(ranges):
            self._shard_of[lo:hi] = index
        self._init_delivery()

    # ------------------------------------------------------------------
    # Lifecycle (Server-compatible surface)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Virtual time of the most recent activity."""
        return self._now

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_streams(self) -> int:
        return self._state.n_streams

    @property
    def stream_ids(self) -> list[int]:
        """All source identifiers, ascending (matches ``Channel.source_ids``)."""
        return list(range(self._state.n_streams))

    @property
    def state(self) -> StreamStateTable:
        """The *global* columnar table every shard view aliases into."""
        return self._state

    def rank_view(self, distance_array: Callable) -> ShardedRankView:
        """A merged rank order: per-shard views + k-way heap merge."""
        return ShardedRankView(
            [shard.state for shard in self.shards], distance_array
        )

    def initialize(self, time: float = 0.0) -> None:
        """Run the protocol's initialization phase at virtual *time*."""
        self._now = time
        self._guarded_call(self.protocol.initialize, self)

    # ------------------------------------------------------------------
    # Control-plane API used by protocols
    # ------------------------------------------------------------------
    def _shard_for(self, stream_id: int) -> ShardServer:
        return self.shards[int(self._shard_of[int(stream_id)])]

    def probe(self, stream_id: int) -> float:
        """Probe one source via its owning shard (2 messages)."""
        return self._shard_for(stream_id).probe(stream_id, self._now)

    def probe_all(
        self, stream_ids: list[int] | None = None
    ) -> dict[int, float]:
        """Probe several (default: all) sources; returns id -> value."""
        targets = self.stream_ids if stream_ids is None else stream_ids
        return {stream_id: self.probe(stream_id) for stream_id in targets}

    def deploy(
        self,
        stream_id: int,
        lower: float,
        upper: float,
        assumed_inside: bool | None = None,
    ) -> None:
        """Install ``[lower, upper]`` at one source (one message)."""
        self._shard_for(stream_id).deploy(
            stream_id, lower, upper, assumed_inside, self._now
        )

    def broadcast(
        self,
        lower: float,
        upper: float,
        assumed_inside: dict[int, bool] | None = None,
    ) -> None:
        """Install ``[lower, upper]`` everywhere, ascending id order."""
        for stream_id in self.stream_ids:
            belief = None
            if assumed_inside is not None:
                belief = assumed_inside.get(stream_id)
            self.deploy(stream_id, lower, upper, assumed_inside=belief)

    # ------------------------------------------------------------------
    # Update delivery (single global FIFO)
    # ------------------------------------------------------------------
    def _receive_update(self, message: UpdateMessage) -> None:
        self._now = max(self._now, message.time)
        self._deliver(message)

    def _handle_delivery(self, message: UpdateMessage) -> None:
        # Value plane refreshed at *delivery* time through the owning
        # shard view (dirtying only that shard's rank listeners), then
        # the protocol sees the update exactly as on one server.
        shard = self._shard_for(message.stream_id)
        shard.state.record_report(
            message.stream_id - shard.lo, message.value, message.time
        )
        self.protocol.on_update(
            self, message.stream_id, message.value, message.time
        )


# ----------------------------------------------------------------------
# The spatial stack's sharded topology
# ----------------------------------------------------------------------
class SpatialShardServer:
    """One spatial shard's message endpoint: the vector-payload mirror
    of :class:`ShardServer`.

    Handles the probe round-trip and region-constraint transmission for
    its id range ``[lo, hi)``, recording points through the shard view
    (local rows — per-shard rank maintenance stays incremental) and
    forwarding update deliveries to the coordinator, which owns ordering
    and the protocol.
    """

    def __init__(
        self,
        coordinator: "ShardedSpatialServer",
        channel: Channel,
        state: StateShardView,
    ) -> None:
        self._coordinator = coordinator
        self.channel = channel
        self.state = state
        self.lo = state.lo
        self.hi = state.hi
        self._probe_reply: PointProbeReplyMessage | None = None
        self._awaiting_probe = False
        channel.bind_server(self._handle_message)

    def probe(self, stream_id: int, time: float) -> np.ndarray:
        """One probe round-trip to a source this shard owns."""
        self._awaiting_probe = True
        self._probe_reply = None
        self.channel.send_to_source(
            PointProbeRequestMessage(stream_id=stream_id, time=time)
        )
        self._awaiting_probe = False
        if self._probe_reply is None:  # pragma: no cover - defensive
            raise RuntimeError(f"source {stream_id} did not reply to probe")
        reply = self._probe_reply
        self.state.record_report(
            reply.stream_id - self.lo, reply.point, reply.time
        )
        return reply.point

    def deploy(
        self,
        stream_id: int,
        region,
        assumed_inside: bool | None,
        time: float,
    ) -> None:
        """Install *region* at a source this shard owns (one message)."""
        self.state.record_container_deploy(stream_id - self.lo, region)
        self.channel.send_to_source(
            RegionConstraintMessage(
                stream_id=stream_id,
                time=time,
                region=region,
                assumed_inside=assumed_inside,
            )
        )

    def _handle_message(self, message: Message) -> None:
        if message.kind is MessageKind.PROBE_REPLY:
            if not self._awaiting_probe:  # pragma: no cover - defensive
                raise RuntimeError("unsolicited probe reply")
            assert isinstance(message, PointProbeReplyMessage)
            self._probe_reply = message
            return
        if message.kind is MessageKind.UPDATE:
            assert isinstance(message, PointUpdateMessage)
            self._coordinator._receive_update(message)
            return
        raise RuntimeError(  # pragma: no cover - defensive
            f"spatial shard server received unexpected {message.kind}"
        )


class ShardedSpatialServer(DeferredDeliveryMixin):
    """Coordinator over N spatial shards; SpatialServer-compatible.

    The ledger-identity argument is the scalar :class:`ShardedServer`'s,
    unchanged: shard views alias one coordinator table (now including
    the point matrix, container column, and geometric bbox planes),
    ``rank_view`` serves the merged per-shard order, per-stream messages
    route through per-shard channels charging one ledger in ascending-id
    iteration order, and update delivery runs through one global
    coordinator FIFO.
    """

    def __init__(
        self,
        channels: Sequence[Channel],
        protocol,
        ranges: Sequence[tuple[int, int]],
    ) -> None:
        if len(channels) != len(ranges):
            raise ValueError("need exactly one channel per shard range")
        if not ranges:
            raise ValueError("need at least one shard")
        self.protocol = protocol
        self._now = 0.0
        n = ranges[-1][1]
        self._state = StreamStateTable(n)
        self.shards = [
            SpatialShardServer(
                self, channel, StateShardView(self._state, lo, hi)
            )
            for channel, (lo, hi) in zip(channels, ranges)
        ]
        validate_shard_alignment(
            self._state, [shard.state for shard in self.shards]
        )
        self._shard_of = np.empty(n, dtype=np.int64)
        for index, (lo, hi) in enumerate(ranges):
            self._shard_of[lo:hi] = index
        self._init_delivery()

    # ------------------------------------------------------------------
    # Lifecycle (SpatialServer-compatible surface)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_streams(self) -> int:
        return self._state.n_streams

    @property
    def stream_ids(self) -> list[int]:
        return list(range(self._state.n_streams))

    @property
    def state(self) -> StreamStateTable:
        """The *global* columnar table every shard view aliases into."""
        return self._state

    def rank_view(self, distance_array: Callable) -> ShardedRankView:
        """A merged rank order: per-shard views + k-way heap merge."""
        return ShardedRankView(
            [shard.state for shard in self.shards], distance_array
        )

    def initialize(self, time: float = 0.0) -> None:
        self._now = time
        self._guarded_call(self.protocol.initialize, self)

    # ------------------------------------------------------------------
    # Control-plane API used by spatial protocols
    # ------------------------------------------------------------------
    def _shard_for(self, stream_id: int) -> SpatialShardServer:
        return self.shards[int(self._shard_of[int(stream_id)])]

    def probe(self, stream_id: int) -> np.ndarray:
        """Probe one source via its owning shard (2 messages)."""
        return self._shard_for(stream_id).probe(stream_id, self._now)

    def probe_all(
        self, stream_ids: list[int] | None = None
    ) -> dict[int, np.ndarray]:
        targets = self.stream_ids if stream_ids is None else stream_ids
        return {stream_id: self.probe(stream_id) for stream_id in targets}

    def deploy(
        self,
        stream_id: int,
        region,
        assumed_inside: bool | None = None,
    ) -> None:
        """Install *region* at one source (one message)."""
        self._shard_for(stream_id).deploy(
            stream_id, region, assumed_inside, self._now
        )

    # ------------------------------------------------------------------
    # Update delivery (single global FIFO)
    # ------------------------------------------------------------------
    def _receive_update(self, message: PointUpdateMessage) -> None:
        self._now = max(self._now, message.time)
        self._deliver(message)

    def _handle_delivery(self, message: PointUpdateMessage) -> None:
        shard = self._shard_for(message.stream_id)
        shard.state.record_report(
            message.stream_id - shard.lo, message.point, message.time
        )
        self.protocol.on_update(
            self, message.stream_id, message.point, message.time
        )
