"""The central stream processor (Figure 3).

The :class:`~repro.server.server.Server` couples the *query processing
unit* and the *constraint assignment unit*: it receives source messages
from the channel, hands updates to the installed protocol, and exposes the
control-plane operations (probe, deploy, broadcast) protocols use to
resolve constraints.
"""

from repro.server.answers import AnswerSet
from repro.server.server import Server
from repro.server.sharded import ShardedServer, ShardServer

__all__ = ["AnswerSet", "Server", "ShardServer", "ShardedServer"]
