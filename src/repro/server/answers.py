"""Server-side answer-set bookkeeping.

A thin mutable wrapper over the current answer ``A(t)`` with the
access patterns protocols need: membership updates, snapshots for the
user, and size tracking for FT-RP's answer-size bounds.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class AnswerSet:
    """The identifiers currently reported to the user as the answer."""

    def __init__(self, initial: Iterable[int] = ()) -> None:
        self._members: set[int] = set(int(i) for i in initial)

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[int]:
        return iter(self._members)

    def __contains__(self, stream_id: int) -> bool:
        return stream_id in self._members

    def add(self, stream_id: int) -> None:
        self._members.add(int(stream_id))

    def discard(self, stream_id: int) -> None:
        # Cast like `add` does: a np.int64 id hashes like the stored int,
        # but keeping the types symmetric guards against id types that
        # do not (and keeps the container homogeneous).
        self._members.discard(int(stream_id))

    def remove(self, stream_id: int) -> None:
        self._members.remove(int(stream_id))

    def replace(self, members: Iterable[int]) -> None:
        """Atomically swap in a new answer set."""
        self._members = set(int(i) for i in members)

    def snapshot(self) -> frozenset[int]:
        """Immutable copy for the user / the correctness checker."""
        return frozenset(self._members)

    def clear(self) -> None:
        self._members.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"AnswerSet({sorted(self._members)})"
