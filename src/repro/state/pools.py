"""FIFO silencer pools mirrored into the state table's flag column.

FT-NRP and FT-RP hand out silencing filters during initialization and
spend them in ``Fix_Error`` in first-in-first-out order.  The pools are
order-sensitive (a deque each), but set-membership questions — "is this
stream currently silenced, and which way?" — belong in the shared state
table so other layers (introspection, vectorized counts) can answer them
columnar.  :class:`SilencerPools` keeps the two representations in sync.

A pools object works unbound (``table=None``) for protocols constructed
outside a server context; binding is idempotent and re-syncs the flags.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.state.table import (
    SILENCER_FN,
    SILENCER_FP,
    SILENCER_NONE,
    StreamStateTable,
)


class SilencerPools:
    """The live ``n+`` / ``n-`` silencer pools of Figure 7."""

    def __init__(self, table: StreamStateTable | None = None) -> None:
        self._table = table
        self.fp: deque[int] = deque()  # silenced, believed inside
        self.fn: deque[int] = deque()  # silenced, believed outside

    def bind(self, table: StreamStateTable | None) -> None:
        """Attach (or swap) the flag column and re-sync it."""
        self._table = table
        self._sync_flags()

    def _sync_flags(self) -> None:
        if self._table is None:
            return
        self._table.clear_silencers()
        for stream_id in self.fp:
            self._table.set_silencer(stream_id, SILENCER_FP)
        for stream_id in self.fn:
            self._table.set_silencer(stream_id, SILENCER_FN)

    # ------------------------------------------------------------------
    # Mutation (all paths keep the flag column consistent)
    # ------------------------------------------------------------------
    def reset(self, fp_ids: Iterable[int], fn_ids: Iterable[int]) -> None:
        """Swap in freshly selected pools (a (re)initialization)."""
        self.fp = deque(int(i) for i in fp_ids)
        self.fn = deque(int(i) for i in fn_ids)
        self._sync_flags()

    def pop_fp(self) -> int:
        stream_id = self.fp.popleft()
        if self._table is not None:
            self._table.set_silencer(stream_id, SILENCER_NONE)
        return stream_id

    def pop_fn(self) -> int:
        stream_id = self.fn.popleft()
        if self._table is not None:
            self._table.set_silencer(stream_id, SILENCER_NONE)
        return stream_id

    def push_fp(self, stream_id: int) -> None:
        stream_id = int(stream_id)
        self.fp.append(stream_id)
        if self._table is not None:
            self._table.set_silencer(stream_id, SILENCER_FP)

    def push_fn(self, stream_id: int) -> None:
        stream_id = int(stream_id)
        self.fn.append(stream_id)
        if self._table is not None:
            self._table.set_silencer(stream_id, SILENCER_FN)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_plus(self) -> int:
        """Remaining false-positive filters (paper's ``n+``)."""
        return len(self.fp)

    @property
    def n_minus(self) -> int:
        """Remaining false-negative filters (paper's ``n-``)."""
        return len(self.fn)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SilencerPools(fp={list(self.fp)}, fn={list(self.fn)})"
