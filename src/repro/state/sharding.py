"""Population sharding over the columnar state engine.

A sharded deployment partitions the stream population into contiguous
id ranges, one :class:`StreamStateTable` per shard, behind per-shard
servers.  Three pieces make that mechanically cheap:

* :func:`shard_ranges` — the balanced contiguous partition.  Contiguity
  matters twice: a shard table's columns can then be *numpy views* into
  one coordinator-level table (zero copies, and protocols that index the
  global columns directly keep working unchanged), and local row order
  equals global id order, so per-shard tie-breaking agrees with the
  library-wide ``(key, id)`` rule.
* :class:`StateShardView` — a :class:`StreamStateTable` whose columns
  alias a slice ``[lo, hi)`` of a parent table.  Shard servers write
  their probe replies and update deliveries through the view (local
  rows), which notifies only that shard's rank listeners; the
  coordinator and the protocols read the parent's global columns, which
  are the same memory.
* :class:`ShardedRankView` — the coordinator's rank order: per-shard
  :class:`~repro.state.rank.RankView` maintenance plus a k-way heap
  merge (:func:`merge_pair_lists`) of per-shard ``(key, id)`` leader
  lists.  Because every shard breaks ties by ascending id and the merge
  compares ``(key, global id)`` tuples, the merged order is *identical*
  to the unsharded ``RankView`` order over the full population — which
  is why sharding preserves rank-query ledger semantics.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Sequence

import numpy as np

from repro.state.rank import RankView
from repro.state.table import StreamStateTable


def shard_ranges(n_streams: int, n_shards: int) -> list[tuple[int, int]]:
    """Balanced contiguous partition of ``range(n_streams)``.

    The first ``n_streams % n_shards`` shards get one extra stream, so
    shard sizes differ by at most one.  Every stream belongs to exactly
    one shard and shard order follows id order.
    """
    n_streams = int(n_streams)
    n_shards = int(n_shards)
    if n_streams < 1:
        raise ValueError("n_streams must be >= 1")
    if not 1 <= n_shards <= n_streams:
        raise ValueError(
            f"n_shards must be in [1, {n_streams}], got {n_shards}"
        )
    base, extra = divmod(n_streams, n_shards)
    ranges = []
    lo = 0
    for shard in range(n_shards):
        hi = lo + base + (1 if shard < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


class StateShardView(StreamStateTable):
    """A shard's dense state table, aliasing ``parent[lo:hi]``.

    Every column is a numpy basic-slice view of the parent table, so a
    write through either object is visible to both instantly.  Row
    indices are *local* (0-based within the shard); callers translate
    with ``global_id - lo``.  Listeners registered on the view observe
    only this shard's value-plane writes — the basis of per-shard
    incremental rank maintenance.

    The parent's scalar counters (``known_count`` etc.) are *not*
    maintained by writes through a view; in a sharded deployment the
    value plane is written exclusively through the views and the
    membership planes exclusively through the parent, so each counter
    has exactly one consistent owner.

    The lazily-allocated planes — ``points`` (vector payloads), the
    ``containers`` object column, and the geometric bbox matrices — are
    exposed as *properties* that slice the parent on each access: the
    parent may allocate them after the views are built (the first point
    probe reply, the first region deploy), and a stored slice taken
    before allocation would alias nothing.  Allocation always happens on
    the parent (the ``_ensure_*`` overrides delegate up), so every
    sibling view sees the same memory.
    """

    def __init__(self, parent: StreamStateTable, lo: int, hi: int) -> None:
        lo, hi = int(lo), int(hi)
        if not 0 <= lo < hi <= parent.n_streams:
            raise ValueError(
                f"shard range [{lo}, {hi}) outside [0, {parent.n_streams})"
            )
        self.parent = parent
        self.lo = lo
        self.hi = hi
        self.n_streams = hi - lo
        # Value plane.
        self.values = parent.values[lo:hi]
        self.report_time = parent.report_time[lo:hi]
        self.known = parent.known[lo:hi]
        # Constraint plane.
        self.lower = parent.lower[lo:hi]
        self.upper = parent.upper[lo:hi]
        self.inside = parent.inside[lo:hi]
        self.scannable = parent.scannable[lo:hi]
        self.geo_scannable = parent.geo_scannable[lo:hi]
        # Membership planes (owned by the parent; aliased for reads).
        self.answer_mask = parent.answer_mask[lo:hi]
        self.tracked_mask = parent.tracked_mask[lo:hi]
        self.silencer = parent.silencer[lo:hi]
        self._answer_count = 0
        self._tracked_count = 0
        self._known_count = int(np.count_nonzero(self.known))
        self._listeners = []

    # -- lazily-allocated planes: slice the parent on each access ------
    def _parent_slice(self, column: np.ndarray | None) -> np.ndarray | None:
        return None if column is None else column[self.lo : self.hi]

    @property
    def points(self) -> np.ndarray | None:
        return self._parent_slice(self.parent.points)

    @property
    def containers(self) -> np.ndarray | None:
        return self._parent_slice(self.parent.containers)

    @property
    def geo_lower(self) -> np.ndarray | None:
        return self._parent_slice(self.parent.geo_lower)

    @property
    def geo_upper(self) -> np.ndarray | None:
        return self._parent_slice(self.parent.geo_upper)

    @property
    def geo_outer_lower(self) -> np.ndarray | None:
        return self._parent_slice(self.parent.geo_outer_lower)

    @property
    def geo_outer_upper(self) -> np.ndarray | None:
        return self._parent_slice(self.parent.geo_outer_upper)

    def _ensure_points(self, dimension: int) -> np.ndarray:
        self.parent._ensure_points(dimension)
        points = self.points
        assert points is not None
        return points

    def _ensure_containers(self) -> np.ndarray:
        self.parent._ensure_containers()
        containers = self.containers
        assert containers is not None
        return containers

    def _ensure_geometry(self, dimension: int) -> None:
        self.parent._ensure_geometry(dimension)

    def _note_constraint(self, row: int) -> None:
        # Constraint-plane watches live on the coordinator's table: a
        # shard-local write is a global-row change (the columns are the
        # same memory), so the dispatch kernel — which watches the
        # parent — must see it under its global id.
        self.parent._note_constraint(self.lo + int(row))

    def __reduce__(self):
        """Pickle by re-aliasing, never by value.

        The default dataclass-style pickling would serialize each sliced
        column as an independent array copy, silently severing the
        aliasing invariant every sharded ledger-identity argument rests
        on.  Reconstructing through ``__init__`` re-slices whichever
        arrays the (memoized, shared) parent restored with; only the
        membership counters and rank listeners carry over as state.
        """
        state = {
            "_answer_count": self._answer_count,
            "_tracked_count": self._tracked_count,
            "_listeners": self._listeners,
        }
        return (type(self), (self.parent, self.lo, self.hi), state)

    def to_global(self, local_id: int) -> int:
        return self.lo + int(local_id)

    def to_local(self, stream_id: int) -> int:
        local = int(stream_id) - self.lo
        if not 0 <= local < self.n_streams:
            raise IndexError(
                f"stream {stream_id} outside shard [{self.lo}, {self.hi})"
            )
        return local

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"StateShardView([{self.lo}, {self.hi}) of "
            f"n={self.parent.n_streams}, known={self._known_count})"
        )


def scatter_point_reports(
    table: StreamStateTable,
    rows: np.ndarray,
    points: np.ndarray,
    times: np.ndarray,
) -> None:
    """Vectorized :meth:`StreamStateTable.record_report` over a point
    batch — one fancy-indexed scatter per plane instead of a per-stream
    loop.

    The shard-transport coordinator mirrors every worker probe batch
    into its global table through this (DESIGN.md §10); rank listeners
    are invalidated wholesale, which a batch of fresh reports dirties
    anyway.  *rows* may be local (through a :class:`StateShardView`) or
    global (through the parent) — the planes alias either way.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if len(rows) == 0:
        return
    points = np.asarray(points, dtype=np.float64)
    plane = table._ensure_points(points.shape[1])
    plane[rows] = points
    table.report_time[rows] = times
    if table._known_count != table.n_streams:
        table.known[rows] = True
        table._known_count = int(np.count_nonzero(table.known))
    for listener in table._listeners:
        listener.invalidate()


def scatter_region_deploys(
    table: StreamStateTable,
    rows: np.ndarray,
    regions,
    dimension: int,
) -> None:
    """Vectorized mirror of a region-constraint batch into *table*'s
    containers column and geometric plane.

    Equivalent to per-stream :meth:`StreamStateTable.
    record_container_deploy` plus :meth:`record_region_deploy` /
    :meth:`clear_region_filter`, but grouped by distinct region object
    so each region's quiescence boxes are computed once and scattered
    with one fancy-indexed assignment per plane.  Rows deployed twice
    in one batch keep only their last region (in-order semantics).

    Membership-belief columns (``inside``) are *not* written: in the
    shard transport they are worker-owned, exactly as the scalar
    coordinator mirror leaves beliefs to the workers.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if len(rows) == 0:
        return
    dimension = int(dimension)
    last: dict[int, int] = {}
    for position, row in enumerate(rows.tolist()):
        last[int(row)] = position
    keep = sorted(last.values())
    containers = table._ensure_containers()
    groups: dict[int, tuple[object, list[int]]] = {}
    for position in keep:
        region = regions[position]
        entry = groups.get(id(region))
        if entry is None:
            groups[id(region)] = (region, [position])
        else:
            entry[1].append(position)
    for region, positions in groups.values():
        idx = rows[np.asarray(positions, dtype=np.int64)]
        containers[idx] = region
        boxes = region.quiescence_bboxes(dimension)
        if boxes is None:
            table.geo_scannable[idx] = False
            if table.geo_lower is not None:
                table.geo_lower[idx] = np.inf
                table.geo_upper[idx] = -np.inf
                table.geo_outer_lower[idx] = -np.inf
                table.geo_outer_upper[idx] = np.inf
        else:
            table._ensure_geometry(dimension)
            inner_lo, inner_hi, outer_lo, outer_hi = boxes
            table.geo_lower[idx] = inner_lo
            table.geo_upper[idx] = inner_hi
            table.geo_outer_lower[idx] = outer_lo
            table.geo_outer_upper[idx] = outer_hi
            table.geo_scannable[idx] = True
        for row in idx.tolist():
            table._note_constraint(row)


def merge_pair_lists(
    pair_lists: Sequence[Sequence[tuple[float, int]]],
    count: int | None = None,
) -> list[int]:
    """K-way heap merge of best-first ``(key, id)`` lists; ids only.

    Each input list must be sorted ascending by ``(key, id)`` (the
    output contract of :meth:`RankView.leader_pairs` /
    :meth:`RankView.order_pairs`).  Tuple comparison breaks key ties by
    id, so the merged prefix equals the unsharded order's prefix.
    """
    merged = heapq.merge(*pair_lists)
    if count is not None:
        merged = itertools.islice(merged, int(count))
    return [stream_id for _, stream_id in merged]


class ShardedRankView:
    """The coordinator's total order over per-shard :class:`RankView`\\ s.

    Duck-types the :class:`RankView` read API (``order``, ``leaders``,
    ``key_of``, ``invalidate``), so protocols built against
    ``server.rank_view(...)`` run unchanged on a sharded topology.  Each
    read asks every shard for its (incrementally maintained) local
    prefix and heap-merges: ``leaders(c)`` costs each shard a partial
    selection of at most ``c`` rows plus an ``O(S · c log S)`` merge,
    never a global sort — the scale-out primitive the ROADMAP targets
    (per-shard ``leaders(k+1)`` + k-way merge at the coordinator).
    """

    def __init__(
        self,
        shard_tables: Sequence[StateShardView],
        distance_array: Callable[[np.ndarray], np.ndarray],
    ) -> None:
        self._views = [
            RankView(table, distance_array) for table in shard_tables
        ]
        self._offsets = [table.lo for table in shard_tables]
        self._tables = list(shard_tables)
        self._distance_array = distance_array

    def _shifted(self, view_index: int, pairs) -> list[tuple[float, int]]:
        offset = self._offsets[view_index]
        if offset == 0:
            return pairs
        return [(key, offset + stream_id) for key, stream_id in pairs]

    def order(self) -> list[int]:
        """All known stream ids, best-first under ``(distance, id)``."""
        return merge_pair_lists(
            [
                self._shifted(i, view.order_pairs())
                for i, view in enumerate(self._views)
            ]
        )

    def leaders(self, count: int) -> list[int]:
        """The *count* globally best ids via per-shard partial selection."""
        count = int(count)
        if count <= 0:
            return []
        return merge_pair_lists(
            [
                self._shifted(i, view.leader_pairs(count))
                for i, view in enumerate(self._views)
            ],
            count,
        )

    def key_of(self, stream_id: int) -> float:
        """The current ranking key of one stream (recomputed)."""
        stream_id = int(stream_id)
        for table, view in zip(self._tables, self._views):
            if table.lo <= stream_id < table.hi:
                return view.key_of(stream_id - table.lo)
        raise IndexError(f"stream {stream_id} not in any shard")

    def invalidate(self) -> None:
        for view in self._views:
            view.invalidate()

    @property
    def is_synced(self) -> bool:
        return all(view.is_synced for view in self._views)

    @property
    def n_shards(self) -> int:
        return len(self._views)


def validate_shard_alignment(
    parent: StreamStateTable, shards: Sequence[StateShardView]
) -> None:
    """Sanity check: the shard views tile the parent exactly once.

    Cheap (pure metadata) and called once per sharded assembly; guards
    against a future refactor silently breaking the aliasing invariant
    every ledger-identity argument rests on.
    """
    covered = 0
    expected_lo = 0
    for shard in shards:
        if shard.parent is not parent:
            raise ValueError("shard view bound to a different parent table")
        if shard.lo != expected_lo:
            raise ValueError(
                f"shard ranges must be contiguous: expected lo={expected_lo}, "
                f"got {shard.lo}"
            )
        if shard.values.base is not parent.values:
            raise ValueError("shard values column does not alias the parent")
        covered += shard.n_streams
        expected_lo = shard.hi
    if covered != parent.n_streams:
        raise ValueError(
            f"shards cover {covered} of {parent.n_streams} streams"
        )
