"""The columnar stream-state table.

One :class:`StreamStateTable` holds, column-wise, everything one query's
server-side protocol knows about the stream population:

=========================  ====================================================
column                     meaning
=========================  ====================================================
``values`` / ``points``    last payload the server learned (update or probe)
``report_time``            virtual time of that last refresh
``known``                  whether any payload has been learned yet
``lower`` / ``upper``      bounds of the deployed filter constraint
``inside``                 membership the server believes the source reported
``scannable``              a scalar filter is installed (pre-scan eligible)
``geo_lower``/``geo_upper``  inscribed (inner) bbox of the deployed region
``geo_outer_lower``/``..._upper``  circumscribed (outer) bbox of the region
``geo_scannable``          a region filter with usable bboxes is installed
``answer_mask``            ``A(t)`` — the answer reported to the user
``tracked_mask``           ``X(t)`` — RTP's objects believed inside ``R``
``silencer``               silencer flag (none / false-positive / -negative)
=========================  ====================================================

Ownership convention: the *value plane* (``values``, ``report_time``,
``known``) is written by the server on probe replies and update
deliveries; the *constraint plane* (``lower``/``upper``) by the server at
deploy time and by bound membership strategies at install time (both
write the same bounds — the deployment message carries them end to end);
``inside`` by the source-side membership strategy, which is the only
party that knows the post-deployment belief; the *membership planes* by
the protocol.  Scalar payloads live in ``values``; vector payloads
(the spatial stack) in the lazily-allocated ``points`` matrix.

The *geometric plane* (``geo_*``) is the spatial stack's counterpart of
the scalar constraint plane: per-dimension axis-aligned bounds of the
deployed :class:`~repro.spatial.geometry.Region`.  Its single writer is
the source-side :class:`~repro.runtime.membership.RegionMembership` at
install time (the spatial servers record only the region object, in
``containers``) — so the plane engages exactly when sources are bound
to the table via ``bind_state``, as every ``ExecutionSession`` assembly
does.  Containment semantics are one-sided and conservative: a point inside the *inner* (inscribed) bbox is provably
inside the region; a point outside the *outer* (circumscribed) bbox is
provably outside; anything in the shell between them is undecidable from
the boxes alone and must fall back to exact per-event geometry.
:meth:`geometric_quiescence_mask` turns that into the vectorized AABB
test the batched replay pre-scan uses.

:class:`RankView` instances register as listeners so every value-plane
write marks the touched row dirty for incremental rank repair.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Iterable

import numpy as np

#: ``silencer`` column codes.
SILENCER_NONE = 0
SILENCER_FP = 1  # silenced with [-inf, +inf]; believed inside
SILENCER_FN = 2  # silenced with [+inf, +inf]; believed outside

#: Plane storage backings: ``"ram"`` allocates ordinary ndarrays;
#: ``"mmap"`` allocates ``np.memmap`` columns as ``.npy`` files under a
#: plane directory, so populations whose planes exceed RAM still fit.
STORAGE_BACKINGS = ("ram", "mmap")


class StreamStateTable:
    """Columnar server-side state for one standing query.

    Parameters
    ----------
    n_streams:
        Population size (one row per stream).
    storage:
        ``"ram"`` (default) or ``"mmap"``.  Under ``"mmap"`` every dense
        plane — value, constraint, membership, and the lazily-allocated
        geometric plane — lives in an ``np.memmap``-backed ``.npy`` file
        under *plane_dir*, so the table's working set is paged by the
        OS instead of held resident.  The object-dtype ``containers``
        column (spatial region objects) has no memmap representation;
        spatial protocols must use ``storage="ram"``.
    plane_dir:
        Directory holding the plane files (required for ``"mmap"``).
    """

    #: Constraint-plane watch (class-level default so shard views — whose
    #: ``__init__`` aliases a parent instead of calling ``super().__init__``
    #: — inherit the disabled state).  ``None`` = off; a list = rows whose
    #: bounds or believed membership changed since the last drain.
    _constraint_watch: list | None = None
    #: Storage defaults at class level for the same shard-view reason:
    #: a view aliases its parent's arrays and never allocates planes.
    _storage: str = "ram"
    _plane_dir: str | None = None

    def __init__(
        self,
        n_streams: int,
        *,
        storage: str = "ram",
        plane_dir: str | os.PathLike | None = None,
    ) -> None:
        n = int(n_streams)
        if n < 0:
            raise ValueError("n_streams must be non-negative")
        if storage not in STORAGE_BACKINGS:
            raise ValueError(
                f"storage must be one of {STORAGE_BACKINGS}, got {storage!r}"
            )
        if storage == "mmap":
            if plane_dir is None:
                raise ValueError("storage='mmap' requires a plane_dir")
            plane_dir = os.fspath(plane_dir)
            os.makedirs(plane_dir, exist_ok=True)
        self._storage = storage
        self._plane_dir = plane_dir if storage == "mmap" else None
        self.n_streams = n
        # Value plane (server knowledge).
        self.values = self._alloc("values", (n,), np.float64)
        self.report_time = self._alloc(
            "report_time", (n,), np.float64, fill=-math.inf
        )
        self.known = self._alloc("known", (n,), bool)
        self.points: np.ndarray | None = None  # (n, d), spatial stacks only
        # Constraint plane (deployed filters; single source of truth).
        self.lower = self._alloc("lower", (n,), np.float64, fill=-math.inf)
        self.upper = self._alloc("upper", (n,), np.float64, fill=math.inf)
        self.inside = self._alloc("inside", (n,), bool)
        self.scannable = self._alloc("scannable", (n,), bool)
        self.containers: np.ndarray | None = None  # object column, spatial
        # Geometric plane (deployed regions' bboxes; lazily allocated
        # (n, d) like ``points``).  Defaults are claim-free: an empty
        # inner box (+inf, -inf) proves nothing inside, an infinite
        # outer box proves nothing outside.
        self.geo_lower: np.ndarray | None = None
        self.geo_upper: np.ndarray | None = None
        self.geo_outer_lower: np.ndarray | None = None
        self.geo_outer_upper: np.ndarray | None = None
        self.geo_scannable = self._alloc("geo_scannable", (n,), bool)
        # Membership planes.
        self.answer_mask = self._alloc("answer_mask", (n,), bool)
        self.tracked_mask = self._alloc("tracked_mask", (n,), bool)
        self.silencer = self._alloc("silencer", (n,), np.int8)
        self._answer_count = 0
        self._tracked_count = 0
        self._known_count = 0
        self._listeners: list = []

    # ------------------------------------------------------------------
    # Plane storage
    # ------------------------------------------------------------------
    def _alloc(
        self, name: str, shape: tuple[int, ...], dtype, fill=None
    ) -> np.ndarray:
        """Allocate one plane in the configured backing.

        Memory-mapped planes are standard ``.npy`` files (via
        ``np.lib.format.open_memmap``), so a crashed run's plane files
        remain loadable with ``np.load`` for post-mortem inspection.
        """
        if self._storage == "mmap":
            from numpy.lib.format import open_memmap

            assert self._plane_dir is not None
            array = open_memmap(
                os.path.join(self._plane_dir, f"{name}.npy"),
                mode="w+",
                dtype=dtype,
                shape=shape,
            )
        else:
            array = np.zeros(shape, dtype=dtype)
        if fill is not None:
            array[...] = fill
        return array

    @property
    def storage(self) -> str:
        """The plane backing: ``"ram"`` or ``"mmap"``."""
        return self._storage

    @property
    def plane_dir(self) -> str | None:
        """Directory of the memmap plane files (``None`` for RAM)."""
        return self._plane_dir

    def flush_planes(self) -> None:
        """Flush memory-mapped planes to their backing files (no-op for
        RAM tables)."""
        for plane in self.__dict__.values():
            if isinstance(plane, np.memmap):
                plane.flush()

    def __getstate__(self) -> dict:
        """Pickle memmap planes *by value* as ordinary RAM arrays.

        A pickled table is a point-in-time copy of the state — exactly
        what durability snapshots need — so the file backing must not
        travel with it: the restored table holds plain ndarrays and is
        independent of the original run directory.
        """
        state = dict(self.__dict__)
        if state.get("_storage") == "mmap":
            for name, plane in list(state.items()):
                if isinstance(plane, np.memmap):
                    state[name] = np.array(plane)
            state["_storage"] = "ram"
            state["_plane_dir"] = None
        return state

    # ------------------------------------------------------------------
    # Value plane
    # ------------------------------------------------------------------
    def record_report(self, stream_id: int, payload, time: float) -> None:
        """Install the payload the server just learned for one stream."""
        stream_id = int(stream_id)
        if isinstance(payload, np.ndarray) and payload.ndim > 0:
            points = self._ensure_points(len(payload))
            points[stream_id] = payload
        else:
            self.values[stream_id] = payload
        self.report_time[stream_id] = time
        if not self.known[stream_id]:
            self.known[stream_id] = True
            self._known_count += 1
        for listener in self._listeners:
            listener.note(stream_id)

    def record_report_bulk(self, values: np.ndarray, time: float) -> None:
        """Vectorized full-collection ingest (every stream probed at once).

        Equivalent to ``record_report`` per stream but one C-level copy;
        rank views are invalidated wholesale, which is exactly right — a
        full collection dirties every key anyway.
        """
        self.values[:] = values
        self.report_time[:] = time
        if self._known_count != self.n_streams:
            self.known[:] = True
            self._known_count = self.n_streams
        for listener in self._listeners:
            listener.invalidate()

    def _ensure_points(self, dimension: int) -> np.ndarray:
        if self.points is None:
            self.points = self._alloc(
                "points", (self.n_streams, int(dimension)), np.float64
            )
        return self.points

    def payload_array(self) -> np.ndarray:
        """The payload column: ``values`` (scalar) or ``points`` (vector)."""
        return self.values if self.points is None else self.points

    def value_of(self, stream_id: int):
        """The last-known payload of one stream."""
        return self.payload_array()[int(stream_id)]

    @property
    def known_count(self) -> int:
        return self._known_count

    def known_ids(self) -> np.ndarray:
        """Ids with a known payload, ascending."""
        return np.nonzero(self.known)[0]

    # ------------------------------------------------------------------
    # Constraint plane
    # ------------------------------------------------------------------
    def watch_constraints(self) -> None:
        """Start (or reset) recording which rows' constraint-plane state
        changes.

        While a watch is active, every mutation of a row's deployed
        bounds or believed membership — scalar or geometric — appends the
        row to the watch list.  The dispatch kernel (DESIGN.md §9) uses
        this to learn exactly which streams a dispatched record's
        protocol reaction touched, so it can re-validate only those
        streams' remaining run suffixes instead of rescanning the chunk.
        """
        self._constraint_watch = []

    def drain_constraint_watch(self) -> list[int]:
        """Return and clear the rows noted since the last drain."""
        rows = self._constraint_watch
        if rows is None:
            return []
        self._constraint_watch = []
        return rows

    def unwatch_constraints(self) -> None:
        """Stop recording constraint-plane changes."""
        self._constraint_watch = None

    def _note_constraint(self, row: int) -> None:
        watch = self._constraint_watch
        if watch is not None:
            watch.append(int(row))

    def record_deploy(self, stream_id: int, lower: float, upper: float) -> None:
        """Record the scalar bounds of a deployed filter constraint."""
        stream_id = int(stream_id)
        self.lower[stream_id] = lower
        self.upper[stream_id] = upper
        self.scannable[stream_id] = True
        self._note_constraint(stream_id)

    def _ensure_containers(self) -> np.ndarray:
        if self.containers is None:
            if self._storage == "mmap":
                raise ValueError(
                    "storage='mmap' cannot back the object-dtype "
                    "containers column (spatial region objects have no "
                    "memmap representation); use storage='ram' for "
                    "spatial protocols"
                )
            self.containers = np.empty(self.n_streams, dtype=object)
        return self.containers

    def record_container_deploy(self, stream_id: int, container) -> None:
        """Record a non-scalar deployed constraint (spatial regions)."""
        self._ensure_containers()[int(stream_id)] = container
        self._note_constraint(stream_id)

    # ------------------------------------------------------------------
    # Geometric plane (regions' axis-aligned quiescence boxes)
    # ------------------------------------------------------------------
    def _ensure_geometry(self, dimension: int) -> None:
        """Allocate the four ``(n, d)`` bbox matrices, claim-free."""
        if self.geo_lower is None:
            n, d = self.n_streams, int(dimension)
            self.geo_lower = self._alloc(
                "geo_lower", (n, d), np.float64, fill=math.inf
            )
            self.geo_upper = self._alloc(
                "geo_upper", (n, d), np.float64, fill=-math.inf
            )
            self.geo_outer_lower = self._alloc(
                "geo_outer_lower", (n, d), np.float64, fill=-math.inf
            )
            self.geo_outer_upper = self._alloc(
                "geo_outer_upper", (n, d), np.float64, fill=math.inf
            )

    def record_region_deploy(
        self,
        stream_id: int,
        bbox_lo,
        bbox_hi,
        outer_lo=None,
        outer_hi=None,
    ) -> None:
        """Record the axis-aligned bounds of a deployed region filter.

        ``bbox_lo``/``bbox_hi`` is the *inscribed* (inner) box — every
        point inside it is provably inside the region; an empty box
        (``lo > hi``) makes no inside claims.  ``outer_lo``/``outer_hi``
        is the *circumscribed* (outer) box — every point outside it is
        provably outside the region; omitted means infinite (no outside
        claims).  Marks the row ``geo_scannable``.
        """
        bbox_lo = np.asarray(bbox_lo, dtype=np.float64)
        bbox_hi = np.asarray(bbox_hi, dtype=np.float64)
        if bbox_lo.shape != bbox_hi.shape or bbox_lo.ndim != 1:
            raise ValueError("bbox_lo and bbox_hi must be 1-D and congruent")
        self._ensure_geometry(len(bbox_lo))
        row = int(stream_id)
        assert self.geo_lower is not None
        if len(bbox_lo) != self.geo_lower.shape[1]:
            raise ValueError(
                f"bbox dimension {len(bbox_lo)} does not match the "
                f"table's geometric plane ({self.geo_lower.shape[1]})"
            )
        self.geo_lower[row] = bbox_lo
        self.geo_upper[row] = bbox_hi
        self.geo_outer_lower[row] = (
            -math.inf if outer_lo is None else outer_lo
        )
        self.geo_outer_upper[row] = (
            math.inf if outer_hi is None else outer_hi
        )
        self.geo_scannable[row] = True
        self._note_constraint(row)

    def clear_region_filter(self, stream_id: int) -> None:
        """Drop a row's region filter from the geometric plane."""
        row = int(stream_id)
        self.geo_scannable[row] = False
        self.inside[row] = False
        if self.geo_lower is not None:
            self.geo_lower[row] = math.inf
            self.geo_upper[row] = -math.inf
            self.geo_outer_lower[row] = -math.inf
            self.geo_outer_upper[row] = math.inf
        self._note_constraint(row)

    def geometric_quiescence_mask(
        self, points: np.ndarray, stream_ids: np.ndarray | None = None
    ) -> np.ndarray:
        """Vectorized AABB containment test: which *points* are provably
        quiescent for their streams' deployed regions?

        ``points`` is ``(m, d)``; ``stream_ids`` maps each row to its
        stream (defaults to ``arange(m)``, i.e. one point per stream).
        A row is quiescent iff the stream is ``geo_scannable`` and either
        the point is inside the inner bbox while the believed membership
        is *inside* (containment provably still ``True``), or the point
        is outside the outer bbox while believed *outside* (provably
        still ``False``).  Everything else — including the conservative
        shell between the boxes — is *not* claimed, so the mask never
        asserts quiescence that exact geometry would deny.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("points must be an (m, d) matrix")
        if self.geo_lower is None:
            return np.zeros(len(points), dtype=bool)
        if stream_ids is None:
            rows = np.arange(len(points))
        else:
            rows = np.asarray(stream_ids, dtype=np.int64)
        inner_ok = np.all(points >= self.geo_lower[rows], axis=1) & np.all(
            points <= self.geo_upper[rows], axis=1
        )
        outer_out = np.any(
            points < self.geo_outer_lower[rows], axis=1
        ) | np.any(points > self.geo_outer_upper[rows], axis=1)
        believed = self.inside[rows]
        return self.geo_scannable[rows] & (
            (inner_ok & believed) | (outer_out & ~believed)
        )

    def set_filter(
        self, stream_id: int, lower: float, upper: float, inside: bool
    ) -> None:
        """Source-side write-through: bounds plus believed membership."""
        stream_id = int(stream_id)
        self.lower[stream_id] = lower
        self.upper[stream_id] = upper
        self.inside[stream_id] = inside
        self.scannable[stream_id] = True
        self._note_constraint(stream_id)

    def set_inside(self, stream_id: int, inside: bool) -> None:
        stream_id = int(stream_id)
        self.inside[stream_id] = inside
        self._note_constraint(stream_id)

    def clear_filter(self, stream_id: int) -> None:
        stream_id = int(stream_id)
        self.lower[stream_id] = -math.inf
        self.upper[stream_id] = math.inf
        self.inside[stream_id] = False
        self.scannable[stream_id] = False
        self._note_constraint(stream_id)

    def bounds_of(self, stream_id: int) -> tuple[float, float]:
        stream_id = int(stream_id)
        return float(self.lower[stream_id]), float(self.upper[stream_id])

    # ------------------------------------------------------------------
    # Answer membership (A(t))
    # ------------------------------------------------------------------
    @property
    def answer_size(self) -> int:
        return self._answer_count

    def answer_contains(self, stream_id: int) -> bool:
        return bool(self.answer_mask[int(stream_id)])

    def answer_add(self, stream_id: int) -> None:
        stream_id = int(stream_id)
        if not self.answer_mask[stream_id]:
            self.answer_mask[stream_id] = True
            self._answer_count += 1

    def answer_discard(self, stream_id: int) -> None:
        stream_id = int(stream_id)
        if self.answer_mask[stream_id]:
            self.answer_mask[stream_id] = False
            self._answer_count -= 1

    def answer_replace(self, members: Iterable[int]) -> None:
        self.answer_mask[:] = False
        for stream_id in members:
            self.answer_mask[int(stream_id)] = True
        self._answer_count = int(np.count_nonzero(self.answer_mask))

    def answer_assign_rows(self, rows: np.ndarray, members: np.ndarray) -> None:
        """Vectorized answer update: ``answer_mask[rows] = members``.

        One gather/scatter pair instead of per-stream
        :meth:`answer_add`/:meth:`answer_discard` calls — the dispatch
        kernel's columnar maintenance path flips whole runs' final
        memberships at once.  ``rows`` must be distinct; the count stays
        exact because the old mask values are read before the scatter.
        """
        rows = np.asarray(rows)
        members = np.asarray(members, dtype=bool)
        before = int(np.count_nonzero(self.answer_mask[rows]))
        self.answer_mask[rows] = members
        self._answer_count += int(np.count_nonzero(members)) - before

    def answer_set_mask(self, mask: np.ndarray) -> None:
        self.answer_mask[:] = mask
        self._answer_count = int(np.count_nonzero(self.answer_mask))

    def answer_ids(self) -> np.ndarray:
        return np.nonzero(self.answer_mask)[0]

    def answer_snapshot(self) -> frozenset[int]:
        return frozenset(int(i) for i in np.nonzero(self.answer_mask)[0])

    # ------------------------------------------------------------------
    # Tracked membership (RTP's X(t))
    # ------------------------------------------------------------------
    @property
    def tracked_size(self) -> int:
        return self._tracked_count

    def tracked_contains(self, stream_id: int) -> bool:
        return bool(self.tracked_mask[int(stream_id)])

    def tracked_add(self, stream_id: int) -> None:
        stream_id = int(stream_id)
        if not self.tracked_mask[stream_id]:
            self.tracked_mask[stream_id] = True
            self._tracked_count += 1

    def tracked_discard(self, stream_id: int) -> None:
        stream_id = int(stream_id)
        if self.tracked_mask[stream_id]:
            self.tracked_mask[stream_id] = False
            self._tracked_count -= 1

    def tracked_replace(self, members: Iterable[int]) -> None:
        self.tracked_mask[:] = False
        for stream_id in members:
            self.tracked_mask[int(stream_id)] = True
        self._tracked_count = int(np.count_nonzero(self.tracked_mask))

    def tracked_ids(self) -> np.ndarray:
        return np.nonzero(self.tracked_mask)[0]

    def tracked_snapshot(self) -> frozenset[int]:
        return frozenset(int(i) for i in np.nonzero(self.tracked_mask)[0])

    def tracked_not_in_answer(self) -> np.ndarray:
        """Ids in ``X(t) - A(t)`` — RTP Case 2's replacement candidates."""
        return np.nonzero(self.tracked_mask & ~self.answer_mask)[0]

    # ------------------------------------------------------------------
    # Silencer flags
    # ------------------------------------------------------------------
    def set_silencer(self, stream_id: int, kind: int) -> None:
        self.silencer[int(stream_id)] = kind

    def silencer_of(self, stream_id: int) -> int:
        return int(self.silencer[int(stream_id)])

    def clear_silencers(self) -> None:
        self.silencer[:] = SILENCER_NONE

    # ------------------------------------------------------------------
    # Rank listeners
    # ------------------------------------------------------------------
    def add_listener(self, listener) -> None:
        """Register a rank view to be notified of value-plane writes."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"StreamStateTable(n={self.n_streams}, known={self._known_count}, "
            f"|A|={self._answer_count}, |X|={self._tracked_count})"
        )


@dataclass(frozen=True)
class StateTableFactory:
    """A picklable ``n_streams -> StreamStateTable`` constructor.

    Hosts that create their table lazily (``Server``) or at assembly
    time (``ShardedServer``) take a factory rather than storage knobs,
    so one parameter threads any backing through every topology.  A
    frozen dataclass — not a closure — because durable deployments
    pickle the host graph in recovery snapshots.
    """

    storage: str = "ram"
    plane_dir: str | None = None

    def __call__(self, n_streams: int) -> StreamStateTable:
        return StreamStateTable(
            n_streams, storage=self.storage, plane_dir=self.plane_dir
        )
