"""The columnar stream-state table.

One :class:`StreamStateTable` holds, column-wise, everything one query's
server-side protocol knows about the stream population:

========================  =====================================================
column                    meaning
========================  =====================================================
``values`` / ``points``   last payload the server learned (update or probe)
``report_time``           virtual time of that last refresh
``known``                 whether any payload has been learned yet
``lower`` / ``upper``     bounds of the deployed filter constraint
``inside``                membership the server believes the source reported
``scannable``             a scalar filter is installed (pre-scan eligible)
``answer_mask``           ``A(t)`` — the answer reported to the user
``tracked_mask``          ``X(t)`` — RTP's objects believed inside ``R``
``silencer``              silencer flag (none / false-positive / false-negative)
========================  =====================================================

Ownership convention: the *value plane* (``values``, ``report_time``,
``known``) is written by the server on probe replies and update
deliveries; the *constraint plane* (``lower``/``upper``) by the server at
deploy time and by bound membership strategies at install time (both
write the same bounds — the deployment message carries them end to end);
``inside`` by the source-side membership strategy, which is the only
party that knows the post-deployment belief; the *membership planes* by
the protocol.  Scalar payloads live in ``values``; vector payloads
(the spatial stack) in the lazily-allocated ``points`` matrix.

:class:`RankView` instances register as listeners so every value-plane
write marks the touched row dirty for incremental rank repair.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

#: ``silencer`` column codes.
SILENCER_NONE = 0
SILENCER_FP = 1  # silenced with [-inf, +inf]; believed inside
SILENCER_FN = 2  # silenced with [+inf, +inf]; believed outside


class StreamStateTable:
    """Columnar server-side state for one standing query."""

    def __init__(self, n_streams: int) -> None:
        n = int(n_streams)
        if n < 0:
            raise ValueError("n_streams must be non-negative")
        self.n_streams = n
        # Value plane (server knowledge).
        self.values = np.zeros(n, dtype=np.float64)
        self.report_time = np.full(n, -math.inf)
        self.known = np.zeros(n, dtype=bool)
        self.points: np.ndarray | None = None  # (n, d), spatial stacks only
        # Constraint plane (deployed filters; single source of truth).
        self.lower = np.full(n, -math.inf)
        self.upper = np.full(n, math.inf)
        self.inside = np.zeros(n, dtype=bool)
        self.scannable = np.zeros(n, dtype=bool)
        self.containers: np.ndarray | None = None  # object column, spatial
        # Membership planes.
        self.answer_mask = np.zeros(n, dtype=bool)
        self.tracked_mask = np.zeros(n, dtype=bool)
        self.silencer = np.zeros(n, dtype=np.int8)
        self._answer_count = 0
        self._tracked_count = 0
        self._known_count = 0
        self._listeners: list = []

    # ------------------------------------------------------------------
    # Value plane
    # ------------------------------------------------------------------
    def record_report(self, stream_id: int, payload, time: float) -> None:
        """Install the payload the server just learned for one stream."""
        stream_id = int(stream_id)
        if isinstance(payload, np.ndarray) and payload.ndim > 0:
            points = self._ensure_points(len(payload))
            points[stream_id] = payload
        else:
            self.values[stream_id] = payload
        self.report_time[stream_id] = time
        if not self.known[stream_id]:
            self.known[stream_id] = True
            self._known_count += 1
        for listener in self._listeners:
            listener.note(stream_id)

    def record_report_bulk(self, values: np.ndarray, time: float) -> None:
        """Vectorized full-collection ingest (every stream probed at once).

        Equivalent to ``record_report`` per stream but one C-level copy;
        rank views are invalidated wholesale, which is exactly right — a
        full collection dirties every key anyway.
        """
        self.values[:] = values
        self.report_time[:] = time
        if self._known_count != self.n_streams:
            self.known[:] = True
            self._known_count = self.n_streams
        for listener in self._listeners:
            listener.invalidate()

    def _ensure_points(self, dimension: int) -> np.ndarray:
        if self.points is None:
            self.points = np.zeros((self.n_streams, int(dimension)))
        return self.points

    def payload_array(self) -> np.ndarray:
        """The payload column: ``values`` (scalar) or ``points`` (vector)."""
        return self.values if self.points is None else self.points

    def value_of(self, stream_id: int):
        """The last-known payload of one stream."""
        return self.payload_array()[int(stream_id)]

    @property
    def known_count(self) -> int:
        return self._known_count

    def known_ids(self) -> np.ndarray:
        """Ids with a known payload, ascending."""
        return np.nonzero(self.known)[0]

    # ------------------------------------------------------------------
    # Constraint plane
    # ------------------------------------------------------------------
    def record_deploy(self, stream_id: int, lower: float, upper: float) -> None:
        """Record the scalar bounds of a deployed filter constraint."""
        stream_id = int(stream_id)
        self.lower[stream_id] = lower
        self.upper[stream_id] = upper
        self.scannable[stream_id] = True

    def record_container_deploy(self, stream_id: int, container) -> None:
        """Record a non-scalar deployed constraint (spatial regions)."""
        if self.containers is None:
            self.containers = np.empty(self.n_streams, dtype=object)
        self.containers[int(stream_id)] = container

    def set_filter(
        self, stream_id: int, lower: float, upper: float, inside: bool
    ) -> None:
        """Source-side write-through: bounds plus believed membership."""
        stream_id = int(stream_id)
        self.lower[stream_id] = lower
        self.upper[stream_id] = upper
        self.inside[stream_id] = inside
        self.scannable[stream_id] = True

    def set_inside(self, stream_id: int, inside: bool) -> None:
        self.inside[int(stream_id)] = inside

    def clear_filter(self, stream_id: int) -> None:
        stream_id = int(stream_id)
        self.lower[stream_id] = -math.inf
        self.upper[stream_id] = math.inf
        self.inside[stream_id] = False
        self.scannable[stream_id] = False

    def bounds_of(self, stream_id: int) -> tuple[float, float]:
        stream_id = int(stream_id)
        return float(self.lower[stream_id]), float(self.upper[stream_id])

    # ------------------------------------------------------------------
    # Answer membership (A(t))
    # ------------------------------------------------------------------
    @property
    def answer_size(self) -> int:
        return self._answer_count

    def answer_contains(self, stream_id: int) -> bool:
        return bool(self.answer_mask[int(stream_id)])

    def answer_add(self, stream_id: int) -> None:
        stream_id = int(stream_id)
        if not self.answer_mask[stream_id]:
            self.answer_mask[stream_id] = True
            self._answer_count += 1

    def answer_discard(self, stream_id: int) -> None:
        stream_id = int(stream_id)
        if self.answer_mask[stream_id]:
            self.answer_mask[stream_id] = False
            self._answer_count -= 1

    def answer_replace(self, members: Iterable[int]) -> None:
        self.answer_mask[:] = False
        for stream_id in members:
            self.answer_mask[int(stream_id)] = True
        self._answer_count = int(np.count_nonzero(self.answer_mask))

    def answer_set_mask(self, mask: np.ndarray) -> None:
        self.answer_mask[:] = mask
        self._answer_count = int(np.count_nonzero(self.answer_mask))

    def answer_ids(self) -> np.ndarray:
        return np.nonzero(self.answer_mask)[0]

    def answer_snapshot(self) -> frozenset[int]:
        return frozenset(int(i) for i in np.nonzero(self.answer_mask)[0])

    # ------------------------------------------------------------------
    # Tracked membership (RTP's X(t))
    # ------------------------------------------------------------------
    @property
    def tracked_size(self) -> int:
        return self._tracked_count

    def tracked_contains(self, stream_id: int) -> bool:
        return bool(self.tracked_mask[int(stream_id)])

    def tracked_add(self, stream_id: int) -> None:
        stream_id = int(stream_id)
        if not self.tracked_mask[stream_id]:
            self.tracked_mask[stream_id] = True
            self._tracked_count += 1

    def tracked_discard(self, stream_id: int) -> None:
        stream_id = int(stream_id)
        if self.tracked_mask[stream_id]:
            self.tracked_mask[stream_id] = False
            self._tracked_count -= 1

    def tracked_replace(self, members: Iterable[int]) -> None:
        self.tracked_mask[:] = False
        for stream_id in members:
            self.tracked_mask[int(stream_id)] = True
        self._tracked_count = int(np.count_nonzero(self.tracked_mask))

    def tracked_ids(self) -> np.ndarray:
        return np.nonzero(self.tracked_mask)[0]

    def tracked_snapshot(self) -> frozenset[int]:
        return frozenset(int(i) for i in np.nonzero(self.tracked_mask)[0])

    def tracked_not_in_answer(self) -> np.ndarray:
        """Ids in ``X(t) - A(t)`` — RTP Case 2's replacement candidates."""
        return np.nonzero(self.tracked_mask & ~self.answer_mask)[0]

    # ------------------------------------------------------------------
    # Silencer flags
    # ------------------------------------------------------------------
    def set_silencer(self, stream_id: int, kind: int) -> None:
        self.silencer[int(stream_id)] = kind

    def silencer_of(self, stream_id: int) -> int:
        return int(self.silencer[int(stream_id)])

    def clear_silencers(self) -> None:
        self.silencer[:] = SILENCER_NONE

    # ------------------------------------------------------------------
    # Rank listeners
    # ------------------------------------------------------------------
    def add_listener(self, listener) -> None:
        """Register a rank view to be notified of value-plane writes."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"StreamStateTable(n={self.n_streams}, known={self._known_count}, "
            f"|A|={self._answer_count}, |X|={self._tracked_count})"
        )
