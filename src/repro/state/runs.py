"""Run segmentation and first-crossing primitives for the dispatch kernel.

The columnar dispatch kernel (DESIGN.md §9) recasts a trace chunk as a
set of *per-stream runs*: the chunk positions of each stream, in time
order.  Everything here is pure array geometry over one chunk — no
simulation state, no tables — which is what makes the primitives easy to
property-test against scalar oracles:

* :func:`segment_runs` — stable ``argsort`` grouping of a chunk's stream
  ids into contiguous runs.  Stability matters: within a run, positions
  must stay ascending so "first crossing in the run" means "earliest in
  time".
* :func:`first_true_per_run` — the searchsorted trick: given a boolean
  crossing mask (in run-grouped order) and the run boundaries, find each
  run's first crossing with two vectorized calls instead of a Python
  loop over runs.
* :func:`segmented_cummin` / :func:`segmented_cummax` — running extrema
  within each run.  For closed-interval filters these are the classical
  formulation of "has the run crossed yet": a prefix of a run is
  entirely inside ``[lo, hi]`` iff its running min stays ``>= lo`` and
  its running max stays ``<= hi``, so the first crossing is the first
  position where ``cummin < lo or cummax > hi``.  Because interval
  containment is elementwise, that first position provably equals the
  first elementwise violation — the equivalence the property suite
  pins down — letting the hot kernel use the cheaper elementwise mask
  while these reference primitives document (and test) why per-run
  windows need no Python loop.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "segment_runs",
    "first_true_per_run",
    "segmented_cummin",
    "segmented_cummax",
    "first_interval_crossing",
]


def segment_runs(stream_ids) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group a chunk's positions into per-stream runs.

    Returns ``(order, starts, run_ids)`` where ``order`` is a stable
    permutation of ``arange(len(stream_ids))`` grouping equal ids
    together (ascending position within each group), run ``r`` occupies
    ``order[starts[r]:starts[r + 1]]``, and ``run_ids[r]`` is its stream
    id.  ``starts`` has ``n_runs + 1`` entries (``starts[-1] == len``),
    so the runs partition the chunk exactly — every position appears in
    exactly one run.
    """
    ids = np.asarray(stream_ids)
    order = np.argsort(ids, kind="stable")
    n = len(order)
    if n == 0:
        return order, np.zeros(1, dtype=np.intp), ids[:0]
    sorted_ids = ids[order]
    boundaries = np.nonzero(np.diff(sorted_ids))[0] + 1
    starts = np.concatenate(
        (
            np.zeros(1, dtype=np.intp),
            boundaries.astype(np.intp, copy=False),
            np.asarray([n], dtype=np.intp),
        )
    )
    return order, starts, sorted_ids[starts[:-1]]


def first_true_per_run(mask_grouped, starts) -> np.ndarray:
    """First ``True`` per run of a run-grouped boolean mask.

    ``mask_grouped`` must already be in run-grouped order (i.e.
    ``mask[order]`` for the ``order`` of :func:`segment_runs`); ``starts``
    are the matching run boundaries.  Returns one index *into the
    grouped order* per run, or ``-1`` for runs with no ``True``.  Two
    vectorized calls: ``nonzero`` lists every hit, ``searchsorted``
    locates each run's first hit at or past its start.
    """
    mask_grouped = np.asarray(mask_grouped)
    starts = np.asarray(starts)
    n_runs = len(starts) - 1
    hits = np.nonzero(mask_grouped)[0]
    out = np.full(n_runs, -1, dtype=np.intp)
    if hits.size == 0 or n_runs == 0:
        return out
    first_hit = np.searchsorted(hits, starts[:-1], side="left")
    valid = first_hit < hits.size
    candidate = hits[np.where(valid, first_hit, 0)]
    inside_run = valid & (candidate < starts[1:])
    out[inside_run] = candidate[inside_run]
    return out


def _segmented_accumulate(values, starts, ufunc) -> np.ndarray:
    """Running ``ufunc`` (min/max) within each segment of ``values``."""
    values = np.asarray(values, dtype=np.float64)
    out = np.empty_like(values)
    starts = np.asarray(starts)
    for r in range(len(starts) - 1):
        lo, hi = int(starts[r]), int(starts[r + 1])
        ufunc.accumulate(values[lo:hi], out=out[lo:hi])
    return out


def segmented_cummin(values, starts) -> np.ndarray:
    """Running minimum within each run (reference primitive)."""
    return _segmented_accumulate(values, starts, np.minimum)


def segmented_cummax(values, starts) -> np.ndarray:
    """Running maximum within each run (reference primitive)."""
    return _segmented_accumulate(values, starts, np.maximum)


def first_interval_crossing(values, starts, lower, upper) -> np.ndarray:
    """First position per run whose running extrema escape ``[lo, up]``.

    The cumulative-extrema formulation of the believed-inside crossing
    test: run ``r`` (bounds ``lower[r]``, ``upper[r]``) first leaves its
    interval at the first grouped position where
    ``cummin < lower or cummax > upper``.  Returns ``-1`` for runs that
    never leave.  Closed-interval containment is elementwise, so this
    always agrees with ``first_true_per_run`` over the elementwise mask
    — the equivalence the kernel relies on and the property suite
    asserts.
    """
    values = np.asarray(values, dtype=np.float64)
    starts = np.asarray(starts)
    counts = np.diff(starts)
    lower_g = np.repeat(np.asarray(lower, dtype=np.float64), counts)
    upper_g = np.repeat(np.asarray(upper, dtype=np.float64), counts)
    crossed = (segmented_cummin(values, starts) < lower_g) | (
        segmented_cummax(values, starts) > upper_g
    )
    return first_true_per_run(crossed, starts)
