"""Incremental rank maintenance over a :class:`StreamStateTable`.

The rank-based protocols all consult the same total order — stream ids
sorted by ``(distance(last-known value), id)`` — but the seed re-derived
it with a full python ``sorted()`` (one key call per element) on every
recomputation.  :class:`RankView` maintains that order incrementally:

* **Bulk rebuilds** (after a full collection, when every key changed)
  compute the whole distance column vectorized and order it with one
  stable C-level argsort — or, when only the ``count`` best are needed,
  with a heap-style partial selection (``argpartition``) that never
  materializes the full order.
* **Dirty-region repair** (after a handful of point updates) removes the
  dirty rows from the maintained order, re-keys just those rows, and
  merges the small sorted batch back with ``searchsorted`` — O(n + d log
  d) instead of O(n log n) with python-level keys.

Ties are broken by ascending stream id everywhere, matching
:mod:`repro.queries.rank`; the distance callable must be the query's
``distance_array`` (bitwise-identical per element to ``distance``), so a
view-produced order equals the legacy ``sorted()`` order exactly.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.state.table import StreamStateTable

#: Full rebuild once more than 1/_REBUILD_DIVISOR of the rows are dirty
#: (point repair only beats a vectorized re-sort for small dirty batches).
_REBUILD_DIVISOR = 8


class RankView:
    """A maintained ``(distance, id)`` total order over known streams."""

    def __init__(
        self,
        table: StreamStateTable,
        distance_array: Callable[[np.ndarray], np.ndarray],
    ) -> None:
        self.table = table
        self._distance_array = distance_array
        self._ids: np.ndarray | None = None
        self._keys: np.ndarray | None = None
        self._dirty: set[int] = set()
        self._all_dirty = True
        self._synced_known = 0
        table.add_listener(self)

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def note(self, stream_id: int) -> None:
        """Table callback: one row's payload changed."""
        if self._all_dirty:
            return
        self._dirty.add(int(stream_id))
        if len(self._dirty) * _REBUILD_DIVISOR >= self.table.n_streams:
            self.invalidate()

    def invalidate(self) -> None:
        """Mark the whole order stale (next read rebuilds in bulk)."""
        self._all_dirty = True
        self._dirty.clear()

    @property
    def is_synced(self) -> bool:
        return (
            not self._all_dirty
            and not self._dirty
            and self._ids is not None
            and self._synced_known == self.table.known_count
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def order(self) -> list[int]:
        """All known stream ids, best-first under ``(distance, id)``."""
        self._repair()
        assert self._ids is not None
        return [int(i) for i in self._ids]

    def leaders(self, count: int) -> list[int]:
        """The *count* best stream ids, best-first (deterministic ties).

        When the whole order is stale this uses heap-style partial
        selection (``argpartition``) and leaves the full order unbuilt —
        the recompute paths of ZT-RP / FT-RP only ever need the best
        ``k + 1`` rows of a freshly collected population.
        """
        count = int(count)
        if count <= 0:
            return []
        if self.is_synced or self._dirty:
            self._repair()
            assert self._ids is not None
            return [int(i) for i in self._ids[:count]]
        ids, _ = self._partial_selection(count)
        return [int(i) for i in ids]

    def leader_pairs(self, count: int) -> list[tuple[float, int]]:
        """The *count* best ``(key, id)`` pairs, best-first.

        The pair form feeds the sharded coordinator's k-way merge
        (:class:`~repro.state.sharding.ShardedRankView`): tuples from
        several shards compare by ``(key, id)``, which is exactly the
        library-wide tie rule, so a heap merge of per-shard pair lists
        reproduces the unsharded order.
        """
        count = int(count)
        if count <= 0:
            return []
        if self.is_synced or self._dirty:
            self._repair()
            assert self._ids is not None and self._keys is not None
            return [
                (float(k), int(i))
                for k, i in zip(self._keys[:count], self._ids[:count])
            ]
        ids, keys = self._partial_selection(count)
        return [(float(k), int(i)) for k, i in zip(keys, ids)]

    def order_pairs(self) -> list[tuple[float, int]]:
        """All known ``(key, id)`` pairs, best-first."""
        self._repair()
        assert self._ids is not None and self._keys is not None
        return [
            (float(k), int(i)) for k, i in zip(self._keys, self._ids)
        ]

    def key_of(self, stream_id: int) -> float:
        """The current ranking key of one stream (recomputed, not cached)."""
        payload = self.table.payload_array()[int(stream_id)]
        return float(self._distance_array(np.asarray(payload)[None])[0])

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _known_base(self) -> np.ndarray | None:
        """Known-row ids, or ``None`` when every row is known."""
        table = self.table
        if table.known_count == table.n_streams:
            return None
        return table.known_ids()

    def _keys_for(self, base: np.ndarray | None) -> np.ndarray:
        payloads = self.table.payload_array()
        if base is not None:
            payloads = payloads[base]
        return np.asarray(self._distance_array(payloads), dtype=np.float64)

    def _rebuild(self) -> None:
        base = self._known_base()
        keys = self._keys_for(base)
        # A stable argsort on the key column breaks ties by position,
        # which is ascending stream id — the library-wide convention.
        order = np.argsort(keys, kind="stable")
        self._ids = order if base is None else base[order]
        self._keys = keys[order]
        self._dirty.clear()
        self._all_dirty = False
        self._synced_known = self.table.known_count

    def _repair(self) -> None:
        if (
            self._all_dirty
            or self._ids is None
            or self._synced_known != self.table.known_count
        ):
            self._rebuild()
            return
        if not self._dirty:
            return
        dirty = np.fromiter(
            sorted(self._dirty), dtype=np.int64, count=len(self._dirty)
        )
        keep = ~np.isin(self._ids, dirty, assume_unique=True)
        kept_ids = self._ids[keep]
        kept_keys = self._keys[keep]
        dirty = dirty[self.table.known[dirty]]
        batch_keys = self._keys_for(dirty)
        # The dirty batch is id-ascending already; a stable sort on keys
        # therefore breaks batch-internal ties by id.
        batch_order = np.argsort(batch_keys, kind="stable")
        b_ids = dirty[batch_order]
        b_keys = batch_keys[batch_order]
        positions = np.searchsorted(kept_keys, b_keys, side="left")
        # Within an equal-key run of the kept array, slide each insertion
        # point past the kept ids that rank before it (ties are rare, so
        # the per-element adjustment loop almost never iterates).
        for index in range(len(b_ids)):
            pos = int(positions[index])
            while (
                pos < len(kept_keys)
                and kept_keys[pos] == b_keys[index]
                and kept_ids[pos] < b_ids[index]
            ):
                pos += 1
            positions[index] = pos
        self._ids = np.insert(kept_ids, positions, b_ids)
        self._keys = np.insert(kept_keys, positions, b_keys)
        self._dirty.clear()

    def _partial_selection(
        self, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The *count* best rows as ``(ids, keys)`` without a full order."""
        base = self._known_base()
        keys = self._keys_for(base)
        n = len(keys)
        if count >= n:
            order = np.argsort(keys, kind="stable")
        else:
            # Heap-style partial selection: partition for the count-th
            # smallest key, then order only the candidate prefix (plus
            # any rows tied at the threshold) by (key, id).
            part = np.argpartition(keys, count - 1)[:count]
            threshold = keys[part].max()
            candidates = np.nonzero(keys <= threshold)[0]
            order = candidates[
                np.argsort(keys[candidates], kind="stable")
            ][:count]
        order = order[:count]
        best_keys = keys[order]
        if base is not None:
            order = base[order]
        return order, best_keys
