"""The columnar stream-state engine (see DESIGN.md Section 5).

Every protocol in this repo reasons over the same server-side state —
last-reported values, deployed filter bounds, silencer pools, answer
membership — yet the seed kept that state in per-protocol dicts and
re-derived rank order with full ``sorted()`` scans on every
recomputation.  This package is the one vectorized state layer they all
share:

* :class:`StreamStateTable` — a numpy-backed column store, one row per
  stream: last-known payload, report time, deployed filter bounds,
  believed membership, silencer flags, and the answer / tracked
  membership masks.
* :class:`RankView` — an incremental ``(distance, id)`` total order over
  a table, maintained with partial (heap-style) selection and
  dirty-region repair instead of full re-sorts.
* :class:`SilencerPools` — the FIFO false-positive / false-negative
  silencer pools of FT-NRP / FT-RP, mirrored into the table's silencer
  flag column.

The table is also the single source of truth for deployed constraints:
source-side membership strategies write their bounds through to it
(:meth:`repro.runtime.membership.MembershipStrategy.bind_state`), and the
batched replay fast path reads those columns directly
(:mod:`repro.runtime.session`).
"""

from repro.state.pools import SilencerPools
from repro.state.rank import RankView
from repro.state.sharding import (
    ShardedRankView,
    StateShardView,
    merge_pair_lists,
    shard_ranges,
)
from repro.state.table import (
    SILENCER_FN,
    SILENCER_FP,
    SILENCER_NONE,
    StreamStateTable,
)

__all__ = [
    "RankView",
    "SILENCER_FN",
    "SILENCER_FP",
    "SILENCER_NONE",
    "ShardedRankView",
    "SilencerPools",
    "StateShardView",
    "StreamStateTable",
    "merge_pair_lists",
    "shard_ranges",
]
