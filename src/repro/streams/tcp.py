"""Synthetic stand-in for the LBL Internet Traffic Archive TCP traces.

Section 6.1 of the paper replays "30 days of wide-area traces of TCP
connections, capturing 606,497 connections", grouping connections by the
16-bit IP prefix into 800 subnets; each subnet is a stream source whose
value is the "number of bytes sent" field of its latest connection.

The archive is not available offline, so this module synthesizes a trace
with the statistical structure the protocols are sensitive to:

* **800 sources** keyed by subnet;
* **Zipf-distributed subnet activity** — a few subnets generate most
  connections, the long tail updates rarely;
* **persistent per-subnet traffic levels** — a subnet's transfer sizes
  cluster around a subnet-specific base level (heavy hitters in wide-area
  traffic are persistent), drawn lognormal across subnets, so a top-k
  query sees a mostly-stable answer whose churn concentrates near the
  rank boundary — the regime RTP exploits;
* **autocorrelated intra-subnet noise** with an occasional heavy-tailed
  burst — consecutive connections from one subnet are similar, with rare
  large transfers that briefly reshuffle ranks;
* **diurnally modulated arrivals** over a 30-day horizon.

DESIGN.md Section 4 records this substitution.  Absolute message counts
differ from the paper's, but the orderings and crossovers in Figures 9-11
depend only on the properties above.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import RandomStreams
from repro.streams.trace import StreamTrace

#: Virtual time units per day; arbitrary but fixed so horizons are legible.
TIME_UNITS_PER_DAY = 1000.0


@dataclass(frozen=True)
class TcpTraceConfig:
    """Parameters of the synthetic TCP-connection workload.

    Defaults are scaled down ~20x from the paper's 606,497 connections so
    unit tests and benches finish quickly; pass ``n_connections=606_497``
    and ``days=30`` for a full-scale trace.

    Attributes
    ----------
    n_subnets:
        Number of 16-bit-prefix stream sources (paper: 800).
    n_connections:
        Total connection records in the trace.
    days:
        Trace duration (paper: 30).
    zipf_exponent:
        Skew of per-subnet connection counts.
    base_median, base_sigma:
        Lognormal parameters of the *across-subnet* base traffic level;
        the median is centred so the paper's [400, 600] range query
        captures a meaningful slice of subnets.
    intra_sigma:
        Lognormal sigma of the *within-subnet* per-connection noise.
    burst_fraction, burst_alpha:
        Fraction of connections that are Pareto-tailed bursts, and the
        tail index — rare large transfers that perturb rankings.
    autocorrelation:
        AR(1) coefficient (in log space) of the within-subnet noise.
    seed:
        Master seed; equal configs yield identical traces.
    """

    n_subnets: int = 800
    n_connections: int = 30_000
    days: float = 30.0
    zipf_exponent: float = 1.1
    base_median: float = 450.0
    base_sigma: float = 0.8
    intra_sigma: float = 0.35
    burst_fraction: float = 0.02
    burst_alpha: float = 1.6
    autocorrelation: float = 0.6
    diurnal_amplitude: float = 0.6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_subnets <= 0:
            raise ValueError("n_subnets must be positive")
        if self.n_connections <= 0:
            raise ValueError("n_connections must be positive")
        if self.days <= 0:
            raise ValueError("days must be positive")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        if self.base_median <= 0:
            raise ValueError("base_median must be positive")
        if not 0 <= self.burst_fraction < 1:
            raise ValueError("burst_fraction must be in [0, 1)")
        if not 0 <= self.autocorrelation < 1:
            raise ValueError("autocorrelation must be in [0, 1)")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")

    @property
    def horizon(self) -> float:
        return self.days * TIME_UNITS_PER_DAY


def generate_tcp_trace(
    config: TcpTraceConfig | None = None, **overrides
) -> StreamTrace:
    """Materialize the synthetic TCP workload as a replayable trace."""
    if config is None:
        config = TcpTraceConfig()
    if overrides:
        config = TcpTraceConfig(**{**config.__dict__, **overrides})
    rng_streams = RandomStreams(config.seed)

    base_levels = _base_levels(config, rng_streams.get("base-levels"))
    subnet_ids = _assign_subnets(config, rng_streams.get("subnet-popularity"))
    times = _arrival_times(config, rng_streams.get("arrival-times"))
    values = _connection_values(
        config, subnet_ids, base_levels, rng_streams.get("bytes-sent")
    )

    # Initial values: one pre-window connection per subnet at its base
    # level with an independent noise draw.
    init_rng = rng_streams.get("initial-bytes")
    initial_values = base_levels * np.exp(
        init_rng.normal(0.0, config.intra_sigma, size=config.n_subnets)
    )

    return StreamTrace(
        initial_values=initial_values,
        times=times,
        stream_ids=subnet_ids,
        values=values,
        horizon=config.horizon,
        metadata={
            "workload": "tcp",
            "n_subnets": config.n_subnets,
            "n_connections": config.n_connections,
            "days": config.days,
            "seed": config.seed,
        },
    )


def _base_levels(
    config: TcpTraceConfig, rng: np.random.Generator
) -> np.ndarray:
    """Persistent per-subnet traffic levels (lognormal across subnets)."""
    return rng.lognormal(
        mean=np.log(config.base_median),
        sigma=config.base_sigma,
        size=config.n_subnets,
    )


def _assign_subnets(
    config: TcpTraceConfig, rng: np.random.Generator
) -> np.ndarray:
    """Draw each connection's subnet from a Zipf popularity law."""
    ranks = np.arange(1, config.n_subnets + 1, dtype=np.float64)
    weights = ranks ** (-config.zipf_exponent)
    weights /= weights.sum()
    # Randomize which subnet id holds which popularity rank so id order
    # carries no information (and popularity is independent of size).
    permutation = rng.permutation(config.n_subnets)
    return permutation[
        rng.choice(config.n_subnets, size=config.n_connections, p=weights)
    ].astype(np.int64)


def _arrival_times(
    config: TcpTraceConfig, rng: np.random.Generator
) -> np.ndarray:
    """Connection arrival instants with a diurnal intensity profile.

    Sampled by inverse transform over the cumulative intensity of
    ``lambda(t) ∝ 1 + a * sin(2π t / P)`` with period one day — an
    inhomogeneous Poisson process conditioned on the connection count.
    """
    horizon = config.horizon
    period = TIME_UNITS_PER_DAY
    amplitude = config.diurnal_amplitude
    grid = np.linspace(0.0, horizon, 20_001)
    cumulative = grid + (amplitude * period / (2 * np.pi)) * (
        1 - np.cos(2 * np.pi * grid / period)
    )
    cumulative /= cumulative[-1]
    uniforms = np.sort(rng.uniform(0.0, 1.0, size=config.n_connections))
    return np.interp(uniforms, cumulative, grid)


def _connection_values(
    config: TcpTraceConfig,
    subnet_ids: np.ndarray,
    base_levels: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Bytes-sent of each connection: base level x AR(1) lognormal noise.

    In log space, a subnet's noise follows
    ``x_t = rho * x_{t-1} + sqrt(1 - rho^2) * N(0, intra_sigma)`` so the
    marginal within-subnet deviation stays ``intra_sigma`` regardless of
    the autocorrelation.  A small fraction of connections are replaced by
    Pareto bursts on top of the subnet's level.
    """
    n = len(subnet_ids)
    rho = config.autocorrelation
    innovation_scale = config.intra_sigma * np.sqrt(1.0 - rho * rho)
    innovations = rng.normal(0.0, innovation_scale, size=n)
    noise = np.empty(n, dtype=np.float64)
    last = np.zeros(config.n_subnets, dtype=np.float64)
    started = np.zeros(config.n_subnets, dtype=bool)
    for i in range(n):
        subnet = subnet_ids[i]
        if started[subnet]:
            noise[i] = rho * last[subnet] + innovations[i]
        else:
            # First connection: stationary marginal draw.
            noise[i] = innovations[i] / max(np.sqrt(1.0 - rho * rho), 1e-12)
            started[subnet] = True
        last[subnet] = noise[i]
    values = base_levels[subnet_ids] * np.exp(noise)

    if config.burst_fraction > 0:
        burst_mask = rng.uniform(size=n) < config.burst_fraction
        n_burst = int(burst_mask.sum())
        if n_burst:
            bursts = base_levels[subnet_ids[burst_mask]] * (
                2.0 + rng.pareto(config.burst_alpha, size=n_burst)
            )
            values[burst_mask] = bursts
    return values
