"""Filter constraints and their violation semantics (Section 3.1).

A filter constraint is a closed interval ``[l, u]``.  Let ``V'`` be the
last value the server knows for the stream and ``V`` the stream's current
value.  The constraint is *violated* — and only then is an update sent —
iff exactly one of ``V'`` and ``V`` lies inside the interval:

    (V' in [l,u] and V not in [l,u])  or  (V' not in [l,u] and V in [l,u])

Two degenerate constraints implement the "shut-down" filters of Section 5:

* ``FALSE_POSITIVE_FILTER`` = ``[-inf, +inf]``: every value is inside, so
  membership never flips and the stream stays silent;
* ``FALSE_NEGATIVE_FILTER`` = ``[+inf, +inf]``: only ``+inf`` is inside, so
  for finite data the stream likewise stays silent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class FilterConstraint:
    """A closed-interval filter constraint ``[lower, upper]``."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if math.isnan(self.lower) or math.isnan(self.upper):
            raise ValueError("filter bounds must not be NaN")
        if self.lower > self.upper:
            raise ValueError(
                f"invalid filter interval [{self.lower}, {self.upper}]"
            )

    def contains(self, value: float) -> bool:
        """Closed-interval membership test."""
        return self.lower <= value <= self.upper

    def violated_by(self, last_reported: float, current: float) -> bool:
        """True iff moving from *last_reported* to *current* crosses the bound."""
        return self.contains(last_reported) != self.contains(current)

    @property
    def is_false_positive_filter(self) -> bool:
        """True for the all-enclosing ``[-inf, +inf]`` shut-down filter."""
        return math.isinf(self.lower) and self.lower < 0 and math.isinf(self.upper)

    @property
    def is_false_negative_filter(self) -> bool:
        """True for the empty-for-finite-data ``[+inf, +inf]`` filter."""
        return math.isinf(self.lower) and self.lower > 0

    @property
    def is_silencing(self) -> bool:
        """True if the filter can never be violated by finite data."""
        return self.is_false_positive_filter or self.is_false_negative_filter

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def distance_to(self, value: float) -> float:
        """Distance from *value* to the interval (0 if inside).

        Used by the boundary-nearest selection heuristic (Fig. 14): for a
        value inside, callers may instead want :meth:`boundary_distance`.
        """
        if value < self.lower:
            return self.lower - value
        if value > self.upper:
            return value - self.upper
        return 0.0

    def boundary_distance(self, value: float) -> float:
        """Distance from *value* to the nearest interval endpoint.

        For values inside the interval this measures how close the stream
        is to *leaving* it; for values outside, how close it is to
        *entering*.  Either way, smaller means "more likely to cross soon",
        which is exactly what boundary-nearest selection wants.
        """
        if self.is_silencing:
            return math.inf
        if self.contains(value):
            return min(value - self.lower, self.upper - value)
        return self.distance_to(value)


FALSE_POSITIVE_FILTER = FilterConstraint(-math.inf, math.inf)
FALSE_NEGATIVE_FILTER = FilterConstraint(math.inf, math.inf)
