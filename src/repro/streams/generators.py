"""Value-evolution processes for stream data.

The synthetic model of Section 6.2 evolves each stream as a Gaussian
random walk; these classes factor that evolution out so examples can plug
in alternatives (bounded walks for physical quantities like temperature,
mean-reverting walks for load metrics) without touching the trace
generator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class ValueProcess(ABC):
    """Generates successive values of a single stream."""

    @abstractmethod
    def step(self, current: float, rng: np.random.Generator) -> float:
        """Return the next value given the *current* one."""

    def steps(
        self, initial: float, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Convenience: iterate :meth:`step` *count* times from *initial*."""
        out = np.empty(count, dtype=np.float64)
        value = initial
        for i in range(count):
            value = self.step(value, rng)
            out[i] = value
        return out


class RandomWalk(ValueProcess):
    """Unbounded Gaussian random walk: ``V_next = V + N(mu, sigma)``.

    With ``mu = 0`` and ``sigma = 20`` this is exactly the paper's
    Section 6.2 model.
    """

    def __init__(self, sigma: float = 20.0, mu: float = 0.0) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = float(sigma)
        self.mu = float(mu)

    def step(self, current: float, rng: np.random.Generator) -> float:
        return current + rng.normal(self.mu, self.sigma)

    def steps(
        self, initial: float, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        # Vectorized: a walk is a cumulative sum of i.i.d. steps.
        increments = rng.normal(self.mu, self.sigma, size=count)
        return initial + np.cumsum(increments)


class BoundedRandomWalk(ValueProcess):
    """Gaussian random walk reflected into ``[low, high]``.

    Keeps long simulations inside a fixed data domain so range-query
    selectivity stays stationary — useful for examples and for stress
    tests where the unbounded walk would drift every stream out of the
    query range.
    """

    def __init__(
        self, sigma: float = 20.0, low: float = 0.0, high: float = 1000.0
    ) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if low >= high:
            raise ValueError("low must be < high")
        self.sigma = float(sigma)
        self.low = float(low)
        self.high = float(high)

    def _reflect(self, value: float) -> float:
        span = self.high - self.low
        # Fold the value into [low, low + 2*span) then mirror the top half.
        offset = (value - self.low) % (2 * span)
        if offset < 0:
            offset += 2 * span
        if offset > span:
            offset = 2 * span - offset
        return self.low + offset

    def step(self, current: float, rng: np.random.Generator) -> float:
        return self._reflect(current + rng.normal(0.0, self.sigma))

    def steps(
        self, initial: float, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        increments = rng.normal(0.0, self.sigma, size=count)
        raw = initial + np.cumsum(increments)
        span = self.high - self.low
        offset = np.mod(raw - self.low, 2 * span)
        offset = np.where(offset > span, 2 * span - offset, offset)
        return self.low + offset


class MeanRevertingWalk(ValueProcess):
    """Ornstein–Uhlenbeck-style walk pulled toward a set point.

    ``V_next = V + theta * (target - V) + N(0, sigma)``.  Models metrics
    like CPU load or queue depth that fluctuate around an operating point;
    used by the load-balancing example.
    """

    def __init__(
        self, target: float, theta: float = 0.1, sigma: float = 20.0
    ) -> None:
        if not 0 <= theta <= 1:
            raise ValueError("theta must be within [0, 1]")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.target = float(target)
        self.theta = float(theta)
        self.sigma = float(sigma)

    def step(self, current: float, rng: np.random.Generator) -> float:
        pull = self.theta * (self.target - current)
        return current + pull + rng.normal(0.0, self.sigma)
