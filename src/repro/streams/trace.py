"""Replayable update traces.

A :class:`StreamTrace` is the full input to a simulation run: one initial
value per stream plus a time-ordered sequence of ``(time, stream_id,
value)`` records.  Materializing workloads as traces (instead of sampling
inside the run) guarantees that every protocol in a comparison processes
*identical* data — the paper's figures compare protocols on the same trace.

Traces serialize to ``.npz`` for caching expensive workloads between
benchmark invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class TraceRecord:
    """A single stream update: at *time*, stream *stream_id* takes *value*."""

    time: float
    stream_id: int
    value: float


@dataclass
class StreamTrace:
    """A complete, time-ordered workload for one simulation run.

    Attributes
    ----------
    initial_values:
        ``initial_values[i]`` is stream ``i``'s value at virtual time 0.
    times, stream_ids, values:
        Parallel arrays of update records, sorted by time (FIFO-stable).
    horizon:
        Virtual end time of the run (>= the last record's time).
    metadata:
        Generator parameters, for provenance in results.
    """

    initial_values: np.ndarray
    times: np.ndarray
    stream_ids: np.ndarray
    values: np.ndarray
    horizon: float
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.initial_values = np.asarray(self.initial_values, dtype=np.float64)
        self.times = np.asarray(self.times, dtype=np.float64)
        self.stream_ids = np.asarray(self.stream_ids, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.float64)
        if not (len(self.times) == len(self.stream_ids) == len(self.values)):
            raise ValueError("record arrays must have equal length")
        if len(self.times) and np.any(np.diff(self.times) < 0):
            raise ValueError("trace records must be sorted by time")
        if len(self.times):
            if self.times[0] < 0:
                raise ValueError("record times must be non-negative")
            if self.horizon < self.times[-1]:
                raise ValueError("horizon precedes the last record")
            bad = (self.stream_ids < 0) | (
                self.stream_ids >= len(self.initial_values)
            )
            if np.any(bad):
                raise ValueError("record references an unknown stream id")

    @property
    def n_streams(self) -> int:
        return len(self.initial_values)

    @property
    def n_records(self) -> int:
        return len(self.times)

    def __len__(self) -> int:
        return self.n_records

    def __iter__(self) -> Iterator[TraceRecord]:
        for time, stream_id, value in zip(
            self.times, self.stream_ids, self.values
        ):
            yield TraceRecord(float(time), int(stream_id), float(value))

    def records(self) -> Iterator[TraceRecord]:
        """Alias of iteration, for readability at call sites."""
        return iter(self)

    def restrict_streams(self, n_streams: int) -> "StreamTrace":
        """Project the trace onto the first *n_streams* streams.

        Used by the scalability experiment (Fig. 11): one master trace is
        generated once and sliced per population size, so smaller systems
        see a strict subset of the same update sequence.
        """
        if not 0 < n_streams <= self.n_streams:
            raise ValueError(
                f"n_streams must be in [1, {self.n_streams}], got {n_streams}"
            )
        keep = self.stream_ids < n_streams
        return StreamTrace(
            initial_values=self.initial_values[:n_streams].copy(),
            times=self.times[keep],
            stream_ids=self.stream_ids[keep],
            values=self.values[keep],
            horizon=self.horizon,
            metadata={**self.metadata, "restricted_to": n_streams},
        )

    def truncate(self, horizon: float) -> "StreamTrace":
        """Keep only records at or before *horizon*."""
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        keep = self.times <= horizon
        return StreamTrace(
            initial_values=self.initial_values.copy(),
            times=self.times[keep],
            stream_ids=self.stream_ids[keep],
            values=self.values[keep],
            horizon=horizon,
            metadata={**self.metadata, "truncated_to": horizon},
        )

    def value_at(self, stream_id: int, time: float) -> float:
        """Ground-truth value of *stream_id* at *time* (linear scan).

        Intended for tests and spot checks, not hot paths — the
        correctness oracle tracks values incrementally instead.
        """
        value = float(self.initial_values[stream_id])
        for i in range(self.n_records):
            if self.times[i] > time:
                break
            if self.stream_ids[i] == stream_id:
                value = float(self.values[i])
        return value

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trace to an ``.npz`` file."""
        np.savez_compressed(
            Path(path),
            initial_values=self.initial_values,
            times=self.times,
            stream_ids=self.stream_ids,
            values=self.values,
            horizon=np.array([self.horizon]),
        )

    @classmethod
    def load(cls, path: str | Path) -> "StreamTrace":
        """Read a trace previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls(
                initial_values=data["initial_values"],
                times=data["times"],
                stream_ids=data["stream_ids"],
                values=data["values"],
                horizon=float(data["horizon"][0]),
                metadata={"loaded_from": str(path)},
            )


def merge_traces(traces: list[StreamTrace], horizon: float) -> StreamTrace:
    """Interleave several single-population traces over disjoint id ranges.

    Stream ids of the *i*-th input are offset by the total stream count of
    the inputs before it.  Useful for composing heterogeneous workloads in
    examples.
    """
    if not traces:
        raise ValueError("need at least one trace")
    offsets = np.cumsum([0] + [t.n_streams for t in traces[:-1]])
    initial = np.concatenate([t.initial_values for t in traces])
    times = np.concatenate([t.times for t in traces])
    ids = np.concatenate(
        [t.stream_ids + off for t, off in zip(traces, offsets)]
    )
    values = np.concatenate([t.values for t in traces])
    order = np.argsort(times, kind="stable")
    return StreamTrace(
        initial_values=initial,
        times=times[order],
        stream_ids=ids[order],
        values=values[order],
        horizon=horizon,
        metadata={"merged_from": len(traces)},
    )
