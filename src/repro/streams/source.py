"""The stream source: agent software at the data producer (Figure 3).

Each source holds its current value, the filter constraint installed by
the server (if any), and the membership state the server believes it has.
It decides locally — per the violation rule in
:mod:`repro.streams.filters` — whether a value change must be reported.

One protocol detail the paper leaves implicit: when the server deploys a
*new* constraint, its belief about which side of the bound the source is on
may be stale (e.g. RTP's expanding search deploys a wider ``R`` without
probing every stream).  The deployment message therefore carries the
server's assumed membership; if the source's actual membership differs, it
reports immediately, which the server handles through its normal
maintenance path.  This keeps Correctness Requirement 2 intact without
probing all ``n`` streams on every resolution.

The report-iff-membership-flips mechanics live in the runtime kernel
(:class:`repro.runtime.source.ChannelFilteredSource` +
:class:`repro.runtime.membership.IntervalMembership`); this class only
binds the scalar payload codec and the scalar message vocabulary.
"""

from __future__ import annotations

from repro.network.channel import Channel
from repro.network.messages import (
    ConstraintMessage,
    Message,
    ProbeReplyMessage,
    UpdateMessage,
)
from repro.runtime.membership import IntervalMembership
from repro.runtime.source import ChannelFilteredSource
from repro.streams.filters import FilterConstraint


class StreamSource(ChannelFilteredSource):
    """A single distributed stream source with an adaptive filter.

    Parameters
    ----------
    stream_id:
        Dense integer identifier, also the index into trace arrays.
    initial_value:
        The stream's value at virtual time 0.
    channel:
        The communication channel to the server; the source binds itself.
    """

    def __init__(
        self, stream_id: int, initial_value: float, channel: Channel
    ) -> None:
        super().__init__(
            stream_id, initial_value, IntervalMembership(), channel
        )

    def _coerce(self, payload) -> float:
        return float(payload)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def apply_value(self, value: float, time: float) -> None:
        """Install a new current value; report it if the filter demands."""
        self.apply(value, time)

    # ------------------------------------------------------------------
    # Message vocabulary
    # ------------------------------------------------------------------
    def _update_message(self, time: float) -> Message:
        return UpdateMessage(
            stream_id=self.stream_id, time=time, value=self.value
        )

    def _reply_message(self, time: float) -> Message:
        return ProbeReplyMessage(
            stream_id=self.stream_id, time=time, value=self.value
        )

    def _constraint_of(self, message: Message) -> FilterConstraint:
        assert isinstance(message, ConstraintMessage)
        return FilterConstraint(message.lower, message.upper)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def constraint(self) -> FilterConstraint | None:
        """The filter constraint currently installed (if any)."""
        return self.membership.container

    @property
    def reported_inside(self) -> bool:
        """The membership state the server currently believes."""
        return self.membership.reported_inside

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"StreamSource(id={self.stream_id}, value={self.value:.3f}, "
            f"constraint={self.constraint})"
        )
