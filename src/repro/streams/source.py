"""The stream source: agent software at the data producer (Figure 3).

Each source holds its current value, the filter constraint installed by
the server (if any), and the membership state the server believes it has.
It decides locally — per the violation rule in
:mod:`repro.streams.filters` — whether a value change must be reported.

One protocol detail the paper leaves implicit: when the server deploys a
*new* constraint, its belief about which side of the bound the source is on
may be stale (e.g. RTP's expanding search deploys a wider ``R`` without
probing every stream).  The deployment message therefore carries the
server's assumed membership; if the source's actual membership differs, it
reports immediately, which the server handles through its normal
maintenance path.  This keeps Correctness Requirement 2 intact without
probing all ``n`` streams on every resolution.
"""

from __future__ import annotations

from repro.network.channel import Channel
from repro.network.messages import (
    ConstraintMessage,
    Message,
    MessageKind,
    ProbeReplyMessage,
    ProbeRequestMessage,
    UpdateMessage,
)
from repro.streams.filters import FilterConstraint


class StreamSource:
    """A single distributed stream source with an adaptive filter.

    Parameters
    ----------
    stream_id:
        Dense integer identifier, also the index into trace arrays.
    initial_value:
        The stream's value at virtual time 0.
    channel:
        The communication channel to the server; the source binds itself.
    """

    def __init__(
        self, stream_id: int, initial_value: float, channel: Channel
    ) -> None:
        self.stream_id = stream_id
        self.value = float(initial_value)
        self.channel = channel
        self.constraint: FilterConstraint | None = None
        # Membership of the last value the server knows, relative to the
        # currently installed constraint.  Meaningless when no constraint
        # is installed (the source then reports every change).
        self._reported_inside = False
        channel.bind_source(stream_id, self._handle_message)

    # ------------------------------------------------------------------
    # Data-plane: value changes
    # ------------------------------------------------------------------
    def apply_value(self, value: float, time: float) -> None:
        """Install a new current value; report it if the filter demands."""
        self.value = float(value)
        if self.constraint is None:
            self._report(time)
            return
        inside = self.constraint.contains(self.value)
        if inside != self._reported_inside:
            self._reported_inside = inside
            self._report(time)

    def _report(self, time: float) -> None:
        self.channel.send_to_server(
            UpdateMessage(stream_id=self.stream_id, time=time, value=self.value)
        )

    # ------------------------------------------------------------------
    # Control-plane: messages from the server
    # ------------------------------------------------------------------
    def _handle_message(self, message: Message) -> None:
        if message.kind is MessageKind.PROBE_REQUEST:
            self._handle_probe(message)
        elif message.kind is MessageKind.CONSTRAINT:
            self._handle_constraint(message)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"source received unexpected {message.kind}")

    def _handle_probe(self, message: Message) -> None:
        assert isinstance(message, ProbeRequestMessage)
        # Replying synchronizes the server's knowledge with our value.
        if self.constraint is not None:
            self._reported_inside = self.constraint.contains(self.value)
        self.channel.send_to_server(
            ProbeReplyMessage(
                stream_id=self.stream_id, time=message.time, value=self.value
            )
        )

    def _handle_constraint(self, message: Message) -> None:
        assert isinstance(message, ConstraintMessage)
        self.constraint = FilterConstraint(message.lower, message.upper)
        if self.constraint.is_silencing:
            # Shut-down filters never fire; the belief flag is irrelevant.
            self._reported_inside = self.constraint.contains(self.value)
            return
        assumed = message.assumed_inside
        actual = self.constraint.contains(self.value)
        if assumed is None:
            # Server knows our value exactly (it probed us this round).
            self._reported_inside = actual
            return
        self._reported_inside = bool(assumed)
        if actual != self._reported_inside:
            # Server's belief is stale: self-correct with one update.
            self._reported_inside = actual
            self._report(message.time)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def reported_inside(self) -> bool:
        """The membership state the server currently believes."""
        return self._reported_inside

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"StreamSource(id={self.stream_id}, value={self.value:.3f}, "
            f"constraint={self.constraint})"
        )
