"""Stream sources, adaptive filters, and workload generation.

A *stream source* (Section 3.1) reports a real value that changes at
discrete instants.  An *adaptive filter* — a closed interval ``[l, u]``
installed by the server — suppresses a report unless the value's
membership in the interval flips relative to the last value the server
knows about.  Two degenerate filters "shut a source down" entirely:
``[-inf, +inf]`` (a *false-positive filter*: every value is inside) and
``[+inf, +inf]`` (a *false-negative filter*: every finite value is
outside).

Workloads are materialized ahead of a run as replayable
:class:`~repro.streams.trace.StreamTrace` objects so every protocol is
compared on byte-identical input:

* :func:`~repro.streams.synthetic.generate_synthetic_trace` — Section 6.2's
  model (uniform initial values, exponential inter-update times, Gaussian
  steps);
* :func:`~repro.streams.tcp.generate_tcp_trace` — a synthetic stand-in for
  the LBL Internet Traffic Archive traces of Section 6.1 (800 subnets,
  heavy-tailed bytes-sent values).
"""

from repro.streams.filters import (
    FALSE_NEGATIVE_FILTER,
    FALSE_POSITIVE_FILTER,
    FilterConstraint,
)
from repro.streams.generators import BoundedRandomWalk, RandomWalk, ValueProcess
from repro.streams.source import StreamSource
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.streams.tcp import TcpTraceConfig, generate_tcp_trace
from repro.streams.trace import StreamTrace, TraceRecord

__all__ = [
    "BoundedRandomWalk",
    "FALSE_NEGATIVE_FILTER",
    "FALSE_POSITIVE_FILTER",
    "FilterConstraint",
    "RandomWalk",
    "StreamSource",
    "StreamTrace",
    "SyntheticConfig",
    "TcpTraceConfig",
    "TraceRecord",
    "ValueProcess",
    "generate_synthetic_trace",
    "generate_tcp_trace",
]
