"""The synthetic workload of Section 6.2.

Quoting the paper: "We assume 5000 data streams, and data values are
initially uniformly distributed in the range [0, 1000].  The time between
each data item is generated follows an exponential distribution with a
mean of 20 time units.  When a new data value is generated, its difference
from the previous value follows a normal distribution with a mean of 0 and
standard deviation (sigma) of 20."

:func:`generate_synthetic_trace` reproduces exactly that process.  The
stream count, horizon and sigma are parameters because Figures 12-15 sweep
them; defaults match the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import RandomStreams
from repro.streams.generators import RandomWalk, ValueProcess
from repro.streams.trace import StreamTrace


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the Section 6.2 synthetic workload.

    Attributes
    ----------
    n_streams:
        Number of stream sources (paper: 5000).
    horizon:
        Virtual duration of the run; each stream produces on average
        ``horizon / mean_interarrival`` updates.
    mean_interarrival:
        Mean of the exponential inter-update time (paper: 20).
    sigma:
        Standard deviation of the Gaussian step (paper default: 20;
        Fig. 13 sweeps 20..100).
    value_low, value_high:
        Range of the uniform initial values (paper: [0, 1000]).
    seed:
        Master seed; two configs with equal fields produce identical traces.
    """

    n_streams: int = 5000
    horizon: float = 2000.0
    mean_interarrival: float = 20.0
    sigma: float = 20.0
    value_low: float = 0.0
    value_high: float = 1000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_streams <= 0:
            raise ValueError("n_streams must be positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.value_low >= self.value_high:
            raise ValueError("value_low must be < value_high")


def generate_synthetic_trace(
    config: SyntheticConfig | None = None,
    process: ValueProcess | None = None,
    **overrides,
) -> StreamTrace:
    """Materialize a Section 6.2 workload as a replayable trace.

    Parameters
    ----------
    config:
        Workload parameters; keyword *overrides* are applied on top, so
        ``generate_synthetic_trace(sigma=60)`` tweaks a single field.
    process:
        Optional alternative value-evolution process; defaults to the
        paper's unbounded Gaussian :class:`RandomWalk` with ``config.sigma``.

    Returns
    -------
    StreamTrace
        Time-sorted updates for all streams over ``[0, horizon]``.
    """
    if config is None:
        config = SyntheticConfig()
    if overrides:
        config = SyntheticConfig(
            **{**config.__dict__, **overrides}  # dataclass is flat/frozen
        )
    rng_streams = RandomStreams(config.seed)
    init_rng = rng_streams.get("initial-values")
    arrival_rng = rng_streams.get("interarrival-times")
    step_rng = rng_streams.get("value-steps")
    walk = process if process is not None else RandomWalk(sigma=config.sigma)

    initial_values = init_rng.uniform(
        config.value_low, config.value_high, size=config.n_streams
    )

    all_times: list[np.ndarray] = []
    all_ids: list[np.ndarray] = []
    all_values: list[np.ndarray] = []
    for stream_id in range(config.n_streams):
        times = _exponential_arrivals(
            arrival_rng, config.mean_interarrival, config.horizon
        )
        if len(times) == 0:
            continue
        values = walk.steps(
            float(initial_values[stream_id]), len(times), step_rng
        )
        all_times.append(times)
        all_ids.append(np.full(len(times), stream_id, dtype=np.int64))
        all_values.append(values)

    if all_times:
        times = np.concatenate(all_times)
        ids = np.concatenate(all_ids)
        values = np.concatenate(all_values)
        order = np.argsort(times, kind="stable")
        times, ids, values = times[order], ids[order], values[order]
    else:  # degenerate: horizon shorter than any inter-arrival draw
        times = np.empty(0)
        ids = np.empty(0, dtype=np.int64)
        values = np.empty(0)

    return StreamTrace(
        initial_values=initial_values,
        times=times,
        stream_ids=ids,
        values=values,
        horizon=config.horizon,
        metadata={
            "workload": "synthetic",
            "n_streams": config.n_streams,
            "horizon": config.horizon,
            "mean_interarrival": config.mean_interarrival,
            "sigma": config.sigma,
            "seed": config.seed,
        },
    )


def _exponential_arrivals(
    rng: np.random.Generator, mean: float, horizon: float
) -> np.ndarray:
    """Arrival instants of a Poisson process with the given mean gap.

    Draws in blocks and extends until the horizon is passed, so the number
    of variates consumed adapts to the horizon without a Python-level loop
    per event.
    """
    expected = max(8, int(horizon / mean * 1.3) + 8)
    gaps = rng.exponential(mean, size=expected)
    times = np.cumsum(gaps)
    while times[-1] < horizon:
        more = rng.exponential(mean, size=expected)
        times = np.concatenate([times, times[-1] + np.cumsum(more)])
    return times[times <= horizon]
