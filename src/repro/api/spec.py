"""The declarative vocabulary: a run is a value.

Three frozen dataclasses describe everything about a run *before* any
execution machinery exists:

* :class:`QuerySpec` — *what* is asked: the standing query, the
  tolerance, and which protocol exploits it.
* :class:`Workload` — *what happens*: a replayable trace, either given
  directly or described by generator parameters and materialized
  lazily (and cached, so one ``Workload`` value feeds many runs with
  the identical record sequence — the paper's same-trace comparison
  discipline for free).
* :class:`Deployment` — *where and how*: the physical topology
  (``single()`` or ``sharded(n)``), the replay mode, correctness
  checking, and process parallelism.

The :class:`~repro.api.engine.Engine` compiles a ``(spec, workload,
deployment)`` triple into an executable plan; protocol and trace
construction happen lazily at build/materialize time, so specs are
cheap to construct, compare by value, and ship across process
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from repro.network.latency import as_latency_model
from repro.runtime.session import DEFAULT_BATCH_SIZE, DEFAULT_MIN_CHUNK

#: Stack identifiers (which execution assembly a protocol runs on).
STACK_STREAMS = "streams"
STACK_SPATIAL = "spatial"
STACK_VALUEBASED = "valuebased"

TOPOLOGIES = ("single", "sharded")


def _build_streams(name: str) -> Callable:
    def build(spec: "QuerySpec"):
        from repro.protocols.ft_nrp import FractionToleranceRangeProtocol
        from repro.protocols.ft_rp import FractionToleranceKnnProtocol
        from repro.protocols.no_filter import NoFilterProtocol
        from repro.protocols.rtp import RankToleranceProtocol
        from repro.protocols.zt_nrp import ZeroToleranceRangeProtocol
        from repro.protocols.zt_rp import ZeroToleranceKnnProtocol

        options = dict(spec.options)
        if name == "no-filter":
            return NoFilterProtocol(spec.query)
        if name == "zt-nrp":
            return ZeroToleranceRangeProtocol(spec.query)
        if name == "zt-rp":
            return ZeroToleranceKnnProtocol(spec.query)
        if name == "rtp":
            return RankToleranceProtocol(
                spec.query, spec.require_tolerance(), **options
            )
        if name == "ft-nrp":
            return FractionToleranceRangeProtocol(
                spec.query, spec.require_tolerance(), **options
            )
        assert name == "ft-rp"
        return FractionToleranceKnnProtocol(
            spec.query, spec.require_tolerance(), **options
        )

    return build


def _build_spatial(name: str) -> Callable:
    def build(spec: "QuerySpec"):
        from repro.spatial.protocols import (
            SpatialFractionKnnProtocol,
            SpatialFractionRangeProtocol,
            SpatialNoFilterProtocol,
            SpatialRankToleranceProtocol,
            SpatialZeroKnnProtocol,
            SpatialZeroRangeProtocol,
        )

        options = dict(spec.options)
        if name == "no-filter-2d":
            return SpatialNoFilterProtocol(spec.query)
        if name == "zt-nrp-2d":
            return SpatialZeroRangeProtocol(spec.query)
        if name == "zt-rp-2d":
            return SpatialZeroKnnProtocol(spec.query)
        if name == "rtp-2d":
            return SpatialRankToleranceProtocol(
                spec.query, spec.require_tolerance(), **options
            )
        if name == "ft-nrp-2d":
            return SpatialFractionRangeProtocol(
                spec.query, spec.require_tolerance(), **options
            )
        assert name == "ft-rp-2d"
        return SpatialFractionKnnProtocol(
            spec.query, spec.require_tolerance(), **options
        )

    return build


#: Protocol name -> (stack, builder).  Names are the paper's, lowercased;
#: ``-2d`` marks the spatial generalizations and ``value-eps`` the
#: Olston-style value-window scheme Figure 1 compares against.
PROTOCOLS: dict[str, tuple[str, Callable | None]] = {
    name: (STACK_STREAMS, _build_streams(name))
    for name in ("no-filter", "zt-nrp", "ft-nrp", "rtp", "zt-rp", "ft-rp")
}
PROTOCOLS.update(
    {
        name: (STACK_SPATIAL, _build_spatial(name))
        for name in (
            "no-filter-2d",
            "zt-nrp-2d",
            "ft-nrp-2d",
            "rtp-2d",
            "zt-rp-2d",
            "ft-rp-2d",
        )
    }
)
PROTOCOLS["value-eps"] = (STACK_VALUEBASED, None)


@dataclass(frozen=True)
class QuerySpec:
    """One standing query plus the protocol chosen to serve it.

    Attributes
    ----------
    protocol:
        Protocol name (see :data:`PROTOCOLS`): ``"rtp"``, ``"zt-nrp"``,
        ``"ft-nrp"``, ``"zt-rp"``, ``"ft-rp"``, ``"no-filter"``, their
        ``-2d`` spatial variants, or ``"value-eps"``.
    query:
        The standing query object (``RangeQuery``, ``TopKQuery``,
        ``KnnQuery``, ``KMinQuery``, or a spatial query).
    tolerance:
        ``RankTolerance`` / ``FractionTolerance``; required by the
        tolerance-exploiting protocols, optional (checking-only) for the
        exact ones.
    options:
        Protocol-specific keyword options (e.g. ``selection=`` for
        FT-NRP, ``expand_search=False`` for RTP ablations,
        ``eps=50.0`` for ``value-eps``).
    """

    protocol: str
    query: Any
    tolerance: Any = None
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        name = str(self.protocol).lower()
        if name not in PROTOCOLS:
            known = ", ".join(sorted(PROTOCOLS))
            raise ValueError(
                f"unknown protocol {self.protocol!r}; choose one of: {known}"
            )
        object.__setattr__(self, "protocol", name)
        if self.query is None:
            raise ValueError("QuerySpec requires a query")
        if name == "value-eps" and "eps" not in self.options:
            raise ValueError("value-eps requires options={'eps': <width>}")

    @property
    def stack(self) -> str:
        """Which execution stack serves this spec."""
        return PROTOCOLS[self.protocol][0]

    def require_tolerance(self):
        if self.tolerance is None:
            raise ValueError(
                f"protocol {self.protocol!r} requires a tolerance"
            )
        return self.tolerance

    def build(self):
        """A fresh protocol instance (protocols are single-use)."""
        builder = PROTOCOLS[self.protocol][1]
        if builder is None:
            raise TypeError(
                f"{self.protocol!r} has no protocol object; the engine "
                "runs it directly"
            )
        return builder(self)


@dataclass(frozen=True)
class Workload:
    """A replayable trace, given directly or described by parameters.

    Use the constructors — :meth:`from_trace`, :meth:`synthetic`,
    :meth:`tcp`, :meth:`moving_objects` — rather than ``__init__``.
    ``materialize()`` generates (once, cached) and returns the trace;
    generation is deterministic in the parameters, so equal workload
    values always produce identical record sequences.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    # The cached trace is derived state: it must not participate in
    # equality (two equal-parameter workloads stay equal after one
    # materializes — and ndarray comparison would raise in __eq__).
    trace: Any = field(default=None, compare=False, repr=False)

    _KINDS = ("trace", "synthetic", "tcp", "moving_objects")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"workload kind must be one of {self._KINDS}, "
                f"got {self.kind!r}"
            )
        if self.kind == "trace" and self.trace is None:
            raise ValueError("kind='trace' requires a trace object")

    @classmethod
    def from_trace(cls, trace) -> "Workload":
        """Wrap an already-materialized trace."""
        return cls(kind="trace", trace=trace)

    @classmethod
    def synthetic(cls, **params) -> "Workload":
        """The Section-6.2 synthetic model; params as
        :class:`repro.streams.synthetic.SyntheticConfig`."""
        return cls(kind="synthetic", params=dict(params))

    @classmethod
    def tcp(cls, **params) -> "Workload":
        """The TCP connection workload; params as
        :class:`repro.streams.tcp.TcpTraceConfig`."""
        return cls(kind="tcp", params=dict(params))

    @classmethod
    def moving_objects(cls, **params) -> "Workload":
        """The spatial moving-objects workload; params as
        :class:`repro.spatial.workloads.MovingObjectsConfig`."""
        return cls(kind="moving_objects", params=dict(params))

    def materialize(self):
        """The trace (generated on first call, then cached)."""
        if self.trace is not None:
            return self.trace
        if self.kind == "synthetic":
            from repro.streams.synthetic import (
                SyntheticConfig,
                generate_synthetic_trace,
            )

            trace = generate_synthetic_trace(SyntheticConfig(**self.params))
        elif self.kind == "tcp":
            from repro.streams.tcp import TcpTraceConfig, generate_tcp_trace

            trace = generate_tcp_trace(TcpTraceConfig(**self.params))
        else:
            assert self.kind == "moving_objects"
            from repro.spatial.workloads import (
                MovingObjectsConfig,
                generate_moving_objects_trace,
            )

            trace = generate_moving_objects_trace(
                MovingObjectsConfig(**self.params)
            )
        object.__setattr__(self, "trace", trace)
        return trace


@dataclass(frozen=True)
class Deployment:
    """The physical shape of a run.

    Attributes
    ----------
    topology:
        ``"single"`` — the paper's one logical server — or
        ``"sharded"`` — the population partitioned into ``n_shards``
        contiguous ranges behind per-shard servers with a k-way-merge
        coordinator (rank-query ledger semantics unchanged; see
        ``repro.server.sharded``).  Every stack shards: the scalar
        protocols, the value-window scheme, and — via the geometric
        quiescence planes — the spatial ``-2d`` protocols.
    n_shards:
        Shard count (``>= 1``; must be ``>= 2`` for ``sharded``).
    replay_mode, batch_size, min_chunk:
        As :class:`repro.harness.config.RunConfig`.
    check_every, strict:
        Continuous tolerance checking cadence (``0`` disables; checking
        forces per-event replay).
    parallel, max_workers:
        Process parallelism.  Under ``sharded``, protocols whose
        maintenance needs no server feedback (``decomposable_maintenance``)
        replay their shards concurrently on a process pool; coupled
        protocols run on the shard transport — worker processes behind
        an epoch-stepped coordinator message bus
        (``repro/server/transport.py``) with ledgers byte-identical to
        sequential sharded serving.  The transport speaks both the
        scalar vocabulary (RTP, ZT-RP, FT-RP, FT-NRP: probe/constraint
        intervals) and the spatial one (the ``-2d`` protocols: point
        frames and region-constraint frames scattered into the
        geometric plane), and checking runs (``check_every > 0``)
        route through it with coordinator-side oracle probes at epoch
        boundaries.  Sweeps fan combinations out regardless of
        topology.  Latency models compose with ``parallel=True``:
        messages whose modeled delivery falls between transport epochs
        ride the coordinator's in-flight plane (``repro/server/
        transport.py``), which merges every worker's pending heap under
        the channel's own ``(delivery time, send seq)`` discipline, so
        the parallel ledger stays byte-identical to sequential sharded
        serving under the same model.
    latency:
        The channel delivery discipline.  ``None`` (default) is the
        paper's synchronous channel; a non-negative number is a
        symmetric fixed delay; a :class:`repro.network.latency.
        LatencyModel` (``FixedLatency``, ``UniformLatency``,
        ``ExponentialLatency``) gives per-direction / distributional
        delays.  ``latency=0`` deliberately compiles to the
        latency-modeled channel with inline delivery — the
        differential-testing configuration proven byte-identical to the
        synchronous channel.  With checking enabled, a latency-modeled
        run classifies each violation as inherent-to-latency vs a
        protocol bug (DESIGN.md §8) — on the scalar and spatial stacks
        alike.  ``parallel=True`` composes on every sharded path:
        decomposable protocols fan out (each worker drains its own
        engine; decomposable sources decide reports locally, so
        delivery timing never changes the message multiset), and
        coupled protocols run the shard transport with in-flight
        deliveries stepped on the coordinator's merged plane.
        Unsupported only for the multi-query stack, whose coordinator
        bypasses the channel.
    durable:
        ``None`` (default) or a :class:`repro.durability.policy.
        DurabilityPolicy`: the run keeps a write-ahead journal (and,
        per the policy, periodic snapshots and memmap-backed state
        planes) under the policy's run directory, recoverable to a
        byte-identical message ledger after a crash.  Scalar single and
        sharded stacks only; the incompatible knob combinations —
        ``parallel=True`` (worker processes own the sources, so one
        journal cannot observe their charges), a latency model (the
        engine queue is never empty between segments, so no consistent
        snapshot cut exists yet), and ``check_every > 0`` (oracle
        callbacks are not journaled) — are rejected here, at
        construction.
    """

    topology: str = "single"
    n_shards: int = 1
    replay_mode: str = "auto"
    batch_size: int = DEFAULT_BATCH_SIZE
    min_chunk: int = DEFAULT_MIN_CHUNK
    check_every: int = 0
    strict: bool = False
    parallel: bool = False
    max_workers: int | None = None
    latency: Any = None
    durable: Any = None

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"topology must be one of {TOPOLOGIES}, got {self.topology!r}"
            )
        if not isinstance(self.n_shards, int) or isinstance(
            self.n_shards, bool
        ):
            raise TypeError("n_shards must be an int")
        if self.topology == "single" and self.n_shards != 1:
            raise ValueError("single topology runs exactly one shard")
        if self.topology == "sharded" and self.n_shards < 2:
            raise ValueError(
                "sharded topology needs n_shards >= 2 "
                "(use Deployment.single() for one server)"
            )
        # Normalize the latency knob to a model (or None) up front, so
        # invalid values fail at construction and equal deployments
        # compare equal whether built from a number or a model.
        object.__setattr__(self, "latency", as_latency_model(self.latency))
        if self.durable is not None:
            from repro.durability.policy import DurabilityPolicy

            if not isinstance(self.durable, DurabilityPolicy):
                raise TypeError(
                    "durable must be a DurabilityPolicy (or None), got "
                    f"{type(self.durable).__name__}"
                )
            if self.parallel:
                raise ValueError(
                    "durable runs do not support parallel=True: worker "
                    "processes own the sources, so a single write-ahead "
                    "journal cannot observe their ledger charges; drop "
                    "parallel or the durability policy"
                )
            if self.latency is not None:
                raise ValueError(
                    "durable runs do not support a latency model: with "
                    "messages in flight the engine queue is never empty "
                    "between segments, so no consistent snapshot cut "
                    "exists; drop latency or the durability policy"
                )
            if self.check_every > 0:
                raise ValueError(
                    "durable runs do not support check_every > 0: oracle "
                    "callbacks are not journaled, so a recovered run "
                    "could not reproduce the checker's observations; "
                    "check the same spec in a separate non-durable run"
                )
        # Reuse RunConfig's validation for the shared knobs.
        self.run_config()

    @classmethod
    def single(cls, **knobs) -> "Deployment":
        """One logical server (the paper's Figure-3 system)."""
        return cls(topology="single", n_shards=1, **knobs)

    @classmethod
    def sharded(cls, n_shards: int, **knobs) -> "Deployment":
        """``n_shards`` shard servers behind a merging coordinator."""
        return cls(topology="sharded", n_shards=n_shards, **knobs)

    @classmethod
    def from_run_config(cls, config) -> "Deployment":
        """Lift a legacy :class:`RunConfig` onto a single-server deployment."""
        return cls.single(
            replay_mode=config.replay_mode,
            batch_size=config.batch_size,
            min_chunk=config.min_chunk,
            check_every=config.check_every,
            strict=config.strict,
        )

    def run_config(self, label: str = ""):
        """The legacy :class:`RunConfig` projection of this deployment."""
        from repro.harness.config import RunConfig

        return RunConfig(
            check_every=self.check_every,
            strict=self.strict,
            label=label,
            replay_mode=self.replay_mode,
            batch_size=self.batch_size,
            min_chunk=self.min_chunk,
        )

    def with_checking(self, check_every: int, strict: bool = False):
        """A copy with a different checking cadence."""
        return replace(self, check_every=check_every, strict=strict)

    def describe(self) -> str:
        """Human-readable topology tag for reports."""
        base = (
            "single"
            if self.topology == "single"
            else f"sharded({self.n_shards})"
        )
        if self.latency is not None:
            base = f"{base}+latency"
        if self.durable is not None:
            base = f"{base}+durable"
        return base
