"""``repro.api`` — the declarative deployment facade.

A run is a value: *what* is asked (:class:`QuerySpec`), *what happens*
(:class:`Workload`), and *where/how it executes* (:class:`Deployment`).
The :class:`Engine` compiles the triple into an executable plan over the
runtime kernel and returns one unified :class:`RunReport` — ledger,
violations, timing — whichever of the four stacks (scalar streams,
spatial, value-window, multi-query) the spec targets.

The deployment axis is first-class: the same ``(spec, workload)`` pair
runs on one server (``Deployment.single()``) or on a sharded topology
(``Deployment.sharded(n)``) with *byte-identical message ledgers* —
rank queries are served by per-shard incremental rank views merged with
a k-way heap at the coordinator (see ``repro.server.sharded`` for the
argument, and ``tests/api/test_sharded_equivalence.py`` for the proof
obligations).

Quickstart
----------
>>> from repro.api import Deployment, Engine, QuerySpec, Workload
>>> from repro import RangeQuery, FractionTolerance
>>> report = Engine().run(
...     QuerySpec(
...         protocol="ft-nrp",
...         query=RangeQuery(400.0, 600.0),
...         tolerance=FractionTolerance(eps_plus=0.2, eps_minus=0.2),
...     ),
...     Workload.synthetic(n_streams=100, horizon=200.0, seed=7),
...     Deployment.single(check_every=1),
... )
>>> report.tolerance_ok
True

Scaling out is one argument::

    Engine().run(spec, workload, Deployment.sharded(4))
"""

from repro.api.engine import Engine, run
from repro.api.report import RunReport
from repro.api.spec import (
    PROTOCOLS,
    Deployment,
    QuerySpec,
    Workload,
)
from repro.api.sweep import run_grid, sweep_values

__all__ = [
    "Deployment",
    "Engine",
    "PROTOCOLS",
    "QuerySpec",
    "RunReport",
    "Workload",
    "run",
    "run_grid",
    "sweep_values",
]
