"""Parameter sweeps over the facade.

Both helpers optionally fan combinations out over a process pool
(``parallel=True``) so figure sweeps use all cores.  Parallel execution
requires *run_one* and its results to be picklable — module-level
functions qualify, lambdas and closures do not — and preserves the
serial iteration order of the results.

(Moved from ``repro.harness.sweep``, which now re-exports these with a
deprecation warning.)
"""

from __future__ import annotations

import itertools
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Mapping


def _invoke(run_one: Callable[..., Any], params: dict) -> Any:
    """Top-level trampoline so submitted calls are picklable."""
    return run_one(**params)


def _execute(
    run_one: Callable[..., Any],
    param_sets: list[dict],
    parallel: bool,
    max_workers: int | None,
) -> list[Any]:
    if not parallel or len(param_sets) <= 1:
        return [run_one(**params) for params in param_sets]
    try:
        pickle.dumps(run_one)
    except Exception as error:
        raise ValueError(
            "parallel sweeps need a picklable run_one (a module-level "
            "function, not a lambda or closure); either refactor it or "
            "drop parallel=True"
        ) from error
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [
            pool.submit(_invoke, run_one, params) for params in param_sets
        ]
        return [future.result() for future in futures]


def sweep_values(
    run_one: Callable[..., Any],
    parameter: str,
    values: Iterable[Any],
    *,
    parallel: bool = False,
    max_workers: int | None = None,
) -> list[Any]:
    """Run *run_one* once per value of a single swept *parameter*."""
    param_sets = [{parameter: value} for value in values]
    return _execute(run_one, param_sets, parallel, max_workers)


def run_grid(
    run_one: Callable[..., Any],
    grid: Mapping[str, Iterable[Any]],
    *,
    parallel: bool = False,
    max_workers: int | None = None,
) -> list[dict]:
    """Run the cartesian product of *grid* through *run_one*.

    Returns one dict per combination: the grid coordinates plus a
    ``"result"`` key with whatever *run_one* returned.  Iteration order is
    the natural nested-loop order of the grid's insertion order, so rows
    come out grouped the way the paper's figures group their series —
    with ``parallel=True`` the rows are computed concurrently but
    returned in that same order.
    """
    names = list(grid)
    param_sets = [
        dict(zip(names, combo))
        for combo in itertools.product(*(list(grid[name]) for name in names))
    ]
    results = _execute(run_one, param_sets, parallel, max_workers)
    return [
        {**params, "result": result}
        for params, result in zip(param_sets, results)
    ]
