"""The unified run report: one result shape across all four stacks."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Any, Mapping

from repro.network.accounting import LedgerSnapshot
from repro.network.messages import MessageKind


def _json_safe(value: Any, path: str) -> Any:
    """Normalize *value* to plain JSON types, or raise naming *path*.

    ``extras`` feed straight into artifact files and result rows
    (``json.dumps(report.row())``), so anything a stack tucks in here
    must serialize.  Rather than finding out at dump time — far from
    the offending producer — the report normalizes at construction:
    numpy scalars unwrap, mappings/sequences/sets recurse (sets sort,
    for deterministic artifacts), paths become strings, and anything
    else fails *now* with the key path that put it there.
    """
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        # numpy scalar (0-d): unwrap to the matching Python type.
        # Checked before the primitive passthrough — np.float64 and
        # np.bool_ subclass float/int and would otherwise slip through
        # still carrying their numpy type.
        return _json_safe(value.item(), path)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {
            str(key): _json_safe(item, f"{path}.{key}")
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [
            _json_safe(item, f"{path}[{index}]")
            for index, item in enumerate(value)
        ]
    if isinstance(value, (set, frozenset)):
        return sorted(_json_safe(item, f"{path}{{}}") for item in value)
    if isinstance(value, PurePath):
        return str(value)
    raise TypeError(
        f"RunReport extras must be JSON-serializable: {path} holds "
        f"{type(value).__name__} ({value!r})"
    )


@dataclass(frozen=True)
class RunReport:
    """Outcome of one :meth:`Engine.run` — ledger, violations, timing.

    Every stack-specific result (``RunResult``, ``SpatialRunResult``,
    ``MultiQueryResult``, ``ValueToleranceResult``) projects onto this
    shape, so comparisons across stacks and topologies read the same
    fields.  ``raw`` keeps the stack-specific result for callers that
    need its extra detail.
    """

    protocol: str
    stack: str
    topology: str
    ledger: LedgerSnapshot
    n_streams: int
    n_records: int
    wall_seconds: float
    final_answer: frozenset[int] = frozenset()
    checks: int = 0
    violations: tuple[str, ...] = ()
    label: str = ""
    extras: Mapping[str, Any] = field(default_factory=dict)
    #: Per-query answers (multi-query runs only).
    answers: Mapping[str, frozenset[int]] | None = None
    #: The stack-specific result object this report was built from.
    raw: Any = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "extras", _json_safe(dict(self.extras), "extras")
        )

    # ------------------------------------------------------------------
    # The paper's metrics
    # ------------------------------------------------------------------
    @property
    def maintenance_messages(self) -> int:
        """The headline metric: total maintenance-phase messages."""
        return self.ledger.maintenance_total

    @property
    def initialization_messages(self) -> int:
        return self.ledger.initialization_total

    @property
    def total_messages(self) -> int:
        return self.ledger.total

    @property
    def update_messages(self) -> int:
        return self.ledger.maintenance_of(MessageKind.UPDATE)

    @property
    def probe_messages(self) -> int:
        return self.ledger.maintenance_of(
            MessageKind.PROBE_REQUEST
        ) + self.ledger.maintenance_of(MessageKind.PROBE_REPLY)

    @property
    def constraint_messages(self) -> int:
        return self.ledger.maintenance_of(MessageKind.CONSTRAINT)

    @property
    def tolerance_ok(self) -> bool:
        """True when every sampled check passed (or checking was off)."""
        return not self.violations

    def row(self) -> dict:
        """Flatten into a reporting-friendly dict."""
        row = {
            "protocol": self.protocol,
            "stack": self.stack,
            "topology": self.topology,
            "label": self.label,
            "messages": self.maintenance_messages,
            "updates": self.update_messages,
            "probes": self.probe_messages,
            "constraints": self.constraint_messages,
            "n_streams": self.n_streams,
            "n_records": self.n_records,
            "tolerance_ok": self.tolerance_ok,
            "wall_seconds": self.wall_seconds,
        }
        row.update(self.extras)
        return row
