"""The deployment compiler: specs in, unified reports out.

:class:`Engine` turns a ``(QuerySpec, Workload, Deployment)`` triple
into an executable plan and runs it.  Compilation is a pair of small
decisions:

1. **Assembly** — which :class:`~repro.runtime.session.ExecutionSession`
   builder matches the spec's stack and the deployment's topology
   (``for_streams`` vs ``for_streams_sharded``, etc.).
2. **Schedule** — whether the plan runs in-process or across
   processes: a sharded deployment with ``parallel=True`` replays the
   shards of a *decomposable* protocol (no server feedback during
   maintenance, e.g. ZT-NRP) on independent pool workers and merges
   the per-shard ledgers; a *coupled* protocol runs on the shard
   transport — scalar vocabularies (RTP, ZT-RP, FT-RP, FT-NRP) on
   :class:`repro.server.transport.TransportShardedServer`, spatial
   vocabularies (the ``-2d`` protocols) on
   :class:`repro.server.transport.SpatialTransportShardedServer` —
   worker processes replay their shards under an epoch-stepped
   coordinator whose ledgers are byte-identical to sequential sharded
   serving, checking runs (``check_every > 0``) included; everything
   else runs the sequential coordinator in-process.

The module-level ``_execute_*`` functions are the former bodies of the
stack-specific entrypoints (``run_protocol``, ``run_spatial_protocol``,
``run_multi_query``); those old names survive as thin deprecation shims
delegating here, so results are ledger-identical across the rename.
"""

from __future__ import annotations

import copy
import time as _time
from concurrent.futures import ProcessPoolExecutor
from typing import Mapping

from repro.api.report import RunReport
from repro.api.spec import (
    STACK_SPATIAL,
    STACK_STREAMS,
    STACK_VALUEBASED,
    Deployment,
    QuerySpec,
    Workload,
)
from repro.correctness.checker import ToleranceChecker
from repro.correctness.oracle import Oracle
from repro.correctness.staleness import StalenessWindow, tag_reason
from repro.harness.results import RunResult
from repro.network.accounting import LedgerSnapshot
from repro.runtime.session import ExecutionSession


def _as_workload(workload) -> Workload:
    """Accept a Workload or a bare trace object."""
    if isinstance(workload, Workload):
        return workload
    return Workload.from_trace(workload)


def _collect_extras(protocol) -> dict:
    """Harvest optional protocol-specific counters for the result row."""
    extras: dict = {}
    for attr in (
        "reinitializations",
        "recomputations",
        "expansions",
        "n_plus",
        "n_minus",
        "count",
    ):
        value = getattr(protocol, attr, None)
        if isinstance(value, (int, float)):
            extras[attr] = value
    return extras


# ----------------------------------------------------------------------
# Scalar streams stack
# ----------------------------------------------------------------------
def _execute_streams(
    trace,
    protocol,
    query=None,
    tolerance=None,
    deployment: Deployment | None = None,
    label: str = "",
) -> RunResult:
    """Replay *trace* against a scalar *protocol* under *deployment*."""
    deployment = deployment or Deployment.single()
    if deployment.durable is not None:
        # Deployment validation already rejected the incompatible knobs
        # (parallel, latency, check_every); both scalar topologies run
        # through the durable WAL loop.
        from repro.durability.runner import execute_durable_streams

        return execute_durable_streams(trace, protocol, deployment, label)
    if (
        deployment.topology == "sharded"
        and deployment.parallel
        and deployment.check_every == 0
        and getattr(protocol, "decomposable_maintenance", False)
    ):
        return _execute_streams_fanout(trace, protocol, deployment, label)
    if deployment.topology == "sharded" and deployment.parallel:
        # Coupled maintenance: worker processes under the epoch-stepped
        # transport coordinator.  Checking runs ride along — the
        # coordinator holds the full trace, so it applies the oracle
        # itself and checks at epoch boundaries (transport.py replay).
        return _execute_streams_transport(
            trace, protocol, query, tolerance, deployment, label
        )

    if deployment.topology == "sharded":
        session = ExecutionSession.for_streams_sharded(
            trace, protocol, deployment.n_shards, latency=deployment.latency
        )
    else:
        session = ExecutionSession.for_streams(
            trace, protocol, latency=deployment.latency
        )

    checker: ToleranceChecker | None = None
    oracle: Oracle | None = None
    if deployment.check_every > 0:
        if query is None:
            query = getattr(protocol, "query", None)
        if query is None:
            raise ValueError("checking requires a query")
        oracle = Oracle(trace.initial_values)
        oracle.register_query(query)
        staleness = None
        if deployment.latency is not None:
            # Latency-modeled run: classify each violation as inherent
            # to the modeled staleness vs a genuine protocol bug.
            staleness = StalenessWindow(session.latency_channels)
        checker = ToleranceChecker(
            oracle=oracle,
            query=query,
            tolerance=tolerance,
            answer_of=lambda: protocol.answer,
            every=deployment.check_every,
            strict=deployment.strict,
            staleness=staleness,
        )

    session.initialize(time=0.0)
    if checker is not None:
        checker.check_now(0.0)

    session.replay_trace(
        trace,
        oracle_apply=oracle.apply if oracle is not None else None,
        after_apply=checker.check if checker is not None else None,
        mode=deployment.replay_mode,
        batch_size=deployment.batch_size,
        min_chunk=deployment.min_chunk,
    )

    extras = _collect_extras(protocol)
    if session.last_replay_stats is not None:
        extras["replay"] = dict(session.last_replay_stats)
    return RunResult(
        protocol=protocol.name,
        ledger=session.snapshot(),
        checker=checker.report if checker is not None else None,
        n_streams=trace.n_streams,
        n_records=trace.n_records,
        final_answer=protocol.answer,
        label=label,
        extras=extras,
    )


def _restrict_to_shard(trace, lo: int, hi: int):
    """The shard's sub-trace, re-indexed to local stream ids."""
    from repro.streams.trace import StreamTrace

    keep = (trace.stream_ids >= lo) & (trace.stream_ids < hi)
    return StreamTrace(
        initial_values=trace.initial_values[lo:hi].copy(),
        times=trace.times[keep],
        stream_ids=trace.stream_ids[keep] - lo,
        values=trace.values[keep],
        horizon=trace.horizon,
        metadata={**trace.metadata, "shard": (lo, hi)},
    )


def _shard_replay_worker(job):
    """One shard's independent replay (runs in a pool worker).

    Valid only for decomposable protocols: maintenance sends nothing
    server-to-source, so the shard's message sequence depends only on
    its own records and the merged per-shard ledgers equal the
    single-server ledger exactly.  A latency model rides along (frozen
    dataclasses pickle): each worker drains its own engine, and since
    decomposable sources decide reports locally at record time, delivery
    timing never changes which messages are sent.
    """
    shard_trace, protocol, replay_mode, batch_size, min_chunk, lo, latency = (
        job
    )
    session = ExecutionSession.for_streams(shard_trace, protocol, latency=latency)
    session.initialize(time=0.0)
    session.replay_trace(
        shard_trace, mode=replay_mode, batch_size=batch_size,
        min_chunk=min_chunk,
    )
    answer = frozenset(int(i) + lo for i in protocol.answer)
    extras = _collect_extras(protocol)
    if session.last_replay_stats is not None:
        extras["replay"] = dict(session.last_replay_stats)
    return session.snapshot(), answer, extras


def _merge_replay_stats(parts: list[dict]) -> dict:
    """Fold per-shard replay stats into one fleet-level stats dict.

    Counters sum; the mode/kernel labels collapse to ``"mixed"`` when
    the shards disagree (e.g. one shard bailed to per-event while the
    rest stayed on the run kernel); a bailout position is the earliest
    any shard bailed, ``None`` when none did.
    """
    merged = {
        key: sum(int(part.get(key, 0)) for part in parts)
        for key in (
            "records",
            "dispatches",
            "staged",
            "columnar_reports",
            "chunk_scans",
            "suffix_rescans",
            "broadcast_truncations",
            "inflight_truncations",
        )
    }
    for label in ("mode", "kernel"):
        seen = {part.get(label) for part in parts}
        merged[label] = seen.pop() if len(seen) == 1 else "mixed"
    bailouts = [
        part["dispatch_bailout_at"]
        for part in parts
        if part.get("dispatch_bailout_at") is not None
    ]
    merged["dispatch_bailout_at"] = min(bailouts) if bailouts else None
    merged["workers"] = len(parts)
    return merged


def _merge_snapshots(parts: list[LedgerSnapshot]) -> LedgerSnapshot:
    initialization: dict = {}
    maintenance: dict = {}
    for part in parts:
        for kind, count in part.initialization.items():
            initialization[kind] = initialization.get(kind, 0) + count
        for kind, count in part.maintenance.items():
            maintenance[kind] = maintenance.get(kind, 0) + count
    return LedgerSnapshot(
        initialization=initialization, maintenance=maintenance
    )


def _execute_streams_fanout(
    trace, protocol, deployment: Deployment, label: str
) -> RunResult:
    """Sharded + parallel replay of a decomposable protocol."""
    from repro.state.sharding import shard_ranges

    ranges = shard_ranges(trace.n_streams, deployment.n_shards)
    jobs = [
        (
            _restrict_to_shard(trace, lo, hi),
            copy.deepcopy(protocol),
            deployment.replay_mode,
            deployment.batch_size,
            deployment.min_chunk,
            lo,
            deployment.latency,
        )
        for lo, hi in ranges
    ]
    max_workers = deployment.max_workers or len(ranges)
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        parts = list(pool.map(_shard_replay_worker, jobs))

    answer: frozenset[int] = frozenset()
    extras: dict = {}
    replay_parts: list[dict] = []
    for _, shard_answer, shard_extras in parts:
        answer |= shard_answer
        for key, value in shard_extras.items():
            if key == "replay":
                replay_parts.append(value)
                continue
            extras[key] = extras.get(key, 0) + value
    if replay_parts:
        extras["replay"] = _merge_replay_stats(replay_parts)
    return RunResult(
        protocol=protocol.name,
        ledger=_merge_snapshots([snapshot for snapshot, _, _ in parts]),
        checker=None,
        n_streams=trace.n_streams,
        n_records=trace.n_records,
        final_answer=answer,
        label=label,
        extras=extras,
    )


def _execute_streams_transport(
    trace, protocol, query, tolerance, deployment: Deployment, label: str
) -> RunResult:
    """Sharded + parallel replay of a *coupled* protocol.

    Worker processes own the shard traces and source populations; the
    protocol runs once, at the epoch-stepped coordinator, whose message
    ledger is byte-identical to sequential sharded serving (see
    ``repro/server/transport.py`` and DESIGN.md §10).  A checking run
    (``check_every > 0``) applies the oracle at the coordinator and
    checks at epoch boundaries — checks charge nothing, so the ledger
    and violation sequence match the sequential checking run while the
    workers keep their batched pre-scan.
    """
    from repro.server.transport import TransportShardedServer

    server = TransportShardedServer(
        trace,
        protocol,
        deployment.n_shards,
        latency=deployment.latency,
        replay_mode=deployment.replay_mode,
        batch_size=deployment.batch_size,
        min_chunk=deployment.min_chunk,
    )
    checker: ToleranceChecker | None = None
    oracle: Oracle | None = None
    if deployment.check_every > 0:
        if query is None:
            query = getattr(protocol, "query", None)
        if query is None:
            raise ValueError("checking requires a query")
        oracle = Oracle(trace.initial_values)
        oracle.register_query(query)
        staleness = None
        if deployment.latency is not None:
            # The coordinator's merged in-flight plane models exactly
            # the quantities the sequential run reads off its per-shard
            # channels (messages in flight, late deliveries, lagging
            # streams), so it serves as the staleness window's channel.
            staleness = StalenessWindow([server.in_flight_plane])
        checker = ToleranceChecker(
            oracle=oracle,
            query=query,
            tolerance=tolerance,
            answer_of=lambda: protocol.answer,
            every=deployment.check_every,
            strict=deployment.strict,
            staleness=staleness,
        )
    with server:
        server.initialize(0.0)
        if checker is not None:
            checker.check_now(0.0)
        worker_stats = server.replay(
            horizon=trace.horizon,
            oracle_apply=oracle.apply if oracle is not None else None,
            after_apply=checker.check if checker is not None else None,
        )
        transport_stats = server.transport_stats()

    extras = _collect_extras(protocol)
    replay = _merge_replay_stats(worker_stats)
    replay["transport"] = transport_stats
    extras["replay"] = replay
    return RunResult(
        protocol=protocol.name,
        ledger=server.snapshot(),
        checker=checker.report if checker is not None else None,
        n_streams=trace.n_streams,
        n_records=trace.n_records,
        final_answer=protocol.answer,
        label=label,
        extras=extras,
    )


# ----------------------------------------------------------------------
# Spatial stack
# ----------------------------------------------------------------------
def _execute_spatial(
    trace,
    protocol,
    query=None,
    tolerance=None,
    deployment: Deployment | None = None,
):
    """Replay a spatial *trace* under any topology.

    ``Deployment.sharded(n)`` runs the sharded spatial coordinator
    (ledger byte-identical to single-server; see
    ``repro.server.sharded.ShardedSpatialServer``); adding
    ``parallel=True`` moves the shards onto worker processes under the
    spatial shard transport
    (:class:`repro.server.transport.SpatialTransportShardedServer`),
    checking runs included.  Latency models compose with the transport:
    nonzero models run with externally-stepped worker channels whose
    pending deliveries cross the process boundary on the coordinator's
    in-flight plane, byte-identical to sequential sharded serving.
    """
    from repro.spatial.runner import execute_spatial

    deployment = deployment or Deployment.single()
    if deployment.durable is not None:
        raise ValueError(
            "durable deployments are not yet supported for spatial "
            "protocols: the spatial stack's object-dtype containers "
            "column cannot live in a memmap plane and its point traces "
            "have no journal record type yet; use the scalar stacks for "
            "durable runs"
        )
    if deployment.topology == "sharded" and deployment.parallel:
        return _execute_spatial_transport(
            trace, protocol, query, tolerance, deployment
        )
    return execute_spatial(
        trace,
        protocol,
        query=query,
        tolerance=tolerance,
        config=deployment.run_config(),
        n_shards=deployment.n_shards,
        latency=deployment.latency,
    )


def _execute_spatial_transport(
    trace, protocol, query, tolerance, deployment: Deployment
):
    """Sharded + parallel replay of a coupled *spatial* protocol.

    The spatial mirror of :func:`_execute_streams_transport`: worker
    processes own the shard point populations and AABB pre-scans, the
    protocol runs once at the epoch-stepped coordinator, and a checking
    run evaluates the spatial tolerance at epoch boundaries against a
    coordinator-side :class:`~repro.spatial.oracle.SpatialOracle`.
    Returns the same :class:`~repro.spatial.runner.SpatialRunResult`
    shape as the sequential executor, with the transport's coordination
    counters attached to ``replay_stats``.
    """
    from repro.server.transport import SpatialTransportShardedServer
    from repro.spatial.oracle import SpatialOracle
    from repro.spatial.runner import (
        SpatialRunResult,
        SpatialToleranceViolationError,
        _evaluate,
    )

    oracle: SpatialOracle | None = None
    staleness: StalenessWindow | None = None
    if deployment.check_every > 0:
        if query is None:
            query = getattr(protocol, "query", None)
        if query is None:
            raise ValueError("checking requires a query")
        oracle = SpatialOracle(trace.initial_points)

    server = SpatialTransportShardedServer(
        trace,
        protocol,
        deployment.n_shards,
        latency=deployment.latency,
        replay_mode=deployment.replay_mode,
        batch_size=deployment.batch_size,
        min_chunk=deployment.min_chunk,
    )
    if oracle is not None and deployment.latency is not None:
        # The merged in-flight plane models the same evidence the
        # sequential run reads off its per-shard channels.
        staleness = StalenessWindow([server.in_flight_plane])

    checker: ToleranceChecker | None = None
    with server:
        server.initialize(0.0)
        if oracle is not None:
            bound_oracle, bound_query = oracle, query
            checker = ToleranceChecker(
                oracle=None,
                query=None,
                tolerance=tolerance,
                answer_of=None,
                every=deployment.check_every,
                strict=deployment.strict,
                staleness=staleness,
                evaluate=lambda: _evaluate(
                    protocol, bound_oracle, bound_query, tolerance
                ),
                error_cls=SpatialToleranceViolationError,
                check_offset=deployment.check_every - 1,
            )
            checker.check_now(0.0)
        worker_stats = server.replay(
            horizon=trace.horizon,
            oracle_apply=oracle.apply if oracle is not None else None,
            after_apply=checker.check if checker is not None else None,
        )
        transport_stats = server.transport_stats()

    replay_stats = _merge_replay_stats(worker_stats)
    replay_stats["transport"] = transport_stats
    result = SpatialRunResult(
        protocol=protocol.name,
        ledger=server.snapshot(),
        n_streams=trace.n_streams,
        n_records=trace.n_records,
        final_answer=protocol.answer,
        classified=staleness is not None,
        replay_stats=replay_stats,
    )
    if checker is not None:
        report = checker.report
        result.checks = report.checks
        result.violations = [
            f"t={v.time}: {tag_reason(v.reason, v.classification)}"
            for v in report.violations
        ]
        result.violations_inherent_latency = report.inherent_count
        result.violations_protocol_bug = report.protocol_bug_count
    return result


# ----------------------------------------------------------------------
# Multi-query stack
# ----------------------------------------------------------------------
def _execute_multiquery(trace, queries, deployment: Deployment | None = None):
    """Run several protocols over one shared population; single only."""
    from repro.multiquery.runner import execute_multi_query

    deployment = deployment or Deployment.single()
    if deployment.durable is not None:
        raise ValueError(
            "durable deployments are not supported for the multi-query "
            "stack: its coordinator delivers shared updates to protocol "
            "slots directly, bypassing the channel and ledger charge "
            "points the journal mirrors; run each query durably on its "
            "own single-query deployment instead"
        )
    if deployment.topology != "single":
        raise ValueError(
            "the multi-query stack supports only Deployment.single()"
        )
    if deployment.latency is not None:
        raise ValueError(
            "latency-modeled delivery is not supported for the multi-query "
            "stack: its coordinator delivers shared updates to protocol "
            "slots directly, bypassing the channel, so there is no wire "
            "on which messages could fly; use the single-query stacks for "
            "staleness studies"
        )
    return execute_multi_query(trace, queries, config=deployment.run_config())


# ----------------------------------------------------------------------
# Value-window stack
# ----------------------------------------------------------------------
def _execute_value_window(
    trace, query, eps: float, deployment: Deployment | None = None
):
    from repro.valuebased.protocol import run_value_tolerance

    deployment = deployment or Deployment.single()
    if deployment.durable is not None:
        raise ValueError(
            "durable deployments are not yet supported for the "
            "value-window stack: its runner owns its own session "
            "assembly and does not thread a journaling ledger; use the "
            "scalar stacks for durable runs"
        )
    return run_value_tolerance(
        trace,
        query,
        eps,
        check_every=deployment.check_every,
        replay_mode=deployment.replay_mode,
        n_shards=deployment.n_shards,
        latency=deployment.latency,
    )


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
class Engine:
    """Compiles declarative run descriptions into executions.

    >>> from repro.api import Deployment, Engine, QuerySpec, Workload
    >>> from repro import RangeQuery
    >>> engine = Engine()
    >>> report = engine.run(
    ...     QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0)),
    ...     Workload.synthetic(n_streams=100, horizon=100.0, seed=1),
    ... )
    >>> report.tolerance_ok
    True

    The engine itself is stateless apart from its default deployment;
    one instance can run any number of specs, and the same ``(spec,
    workload)`` pair re-runs identically under any topology.
    """

    def __init__(self, deployment: Deployment | None = None) -> None:
        self.deployment = deployment or Deployment.single()

    # ------------------------------------------------------------------
    # Declarative entry
    # ------------------------------------------------------------------
    def run(
        self,
        spec: QuerySpec,
        workload: Workload,
        deployment: Deployment | None = None,
        label: str = "",
    ) -> RunReport:
        """Execute one spec over one workload; returns a unified report."""
        deployment = deployment or self.deployment
        workload = _as_workload(workload)
        trace = workload.materialize()
        started = _time.perf_counter()

        if spec.stack == STACK_STREAMS:
            result = _execute_streams(
                trace,
                spec.build(),
                query=spec.query,
                tolerance=spec.tolerance,
                deployment=deployment,
                label=label,
            )
            return self._report_from_run_result(
                result, STACK_STREAMS, deployment, started, label
            )
        if spec.stack == STACK_SPATIAL:
            result = _execute_spatial(
                trace,
                spec.build(),
                query=spec.query,
                tolerance=spec.tolerance,
                deployment=deployment,
            )
            extras: dict = {}
            if result.classified:
                extras["violations_inherent_latency"] = (
                    result.violations_inherent_latency
                )
                extras["violations_protocol_bug"] = (
                    result.violations_protocol_bug
                )
            if result.replay_stats is not None:
                extras["replay"] = result.replay_stats
            return RunReport(
                protocol=result.protocol,
                stack=STACK_SPATIAL,
                topology=deployment.describe(),
                ledger=result.ledger,
                n_streams=result.n_streams,
                n_records=result.n_records,
                wall_seconds=_time.perf_counter() - started,
                final_answer=result.final_answer,
                checks=result.checks,
                violations=tuple(result.violations),
                label=label,
                extras=extras,
                raw=result,
            )
        assert spec.stack == STACK_VALUEBASED
        result = _execute_value_window(
            trace, spec.query, float(spec.options["eps"]), deployment
        )
        return RunReport(
            protocol="value-eps",
            stack=STACK_VALUEBASED,
            topology=deployment.describe(),
            ledger=result.ledger,
            n_streams=trace.n_streams,
            n_records=trace.n_records,
            wall_seconds=_time.perf_counter() - started,
            final_answer=frozenset(),
            checks=result.rank_samples,
            violations=()
            if result.value_guarantee_held
            else ("value guarantee violated",),
            label=label,
            extras={
                "eps": result.eps,
                "worst_rank": result.worst_rank,
                "mean_rank_error": result.mean_rank_error,
                "value_guarantee_held": result.value_guarantee_held,
            },
            raw=result,
        )

    def run_queries(
        self,
        specs: Mapping[str, QuerySpec],
        workload: Workload,
        deployment: Deployment | None = None,
        label: str = "",
    ) -> RunReport:
        """Run several specs as one shared multi-query deployment."""
        deployment = deployment or self.deployment
        workload = _as_workload(workload)
        trace = workload.materialize()
        queries = {
            query_id: (spec.build(), spec.query, spec.tolerance)
            for query_id, spec in specs.items()
        }
        started = _time.perf_counter()
        result = _execute_multiquery(trace, queries, deployment)
        return RunReport(
            protocol="multi-query",
            stack="multiquery",
            topology=deployment.describe(),
            ledger=result.ledger,
            n_streams=trace.n_streams,
            n_records=trace.n_records,
            wall_seconds=_time.perf_counter() - started,
            final_answer=frozenset(),
            checks=result.checks,
            violations=tuple(result.violations),
            label=label,
            extras={
                "shared_updates": result.shared_updates,
                "logical_deliveries": result.logical_deliveries,
                "sharing_factor": result.sharing_factor,
            },
            answers=dict(result.answers),
            raw=result,
        )

    # ------------------------------------------------------------------
    # Escape hatch for pre-built protocol instances
    # ------------------------------------------------------------------
    def run_protocol(
        self,
        trace,
        protocol,
        query=None,
        tolerance=None,
        deployment: Deployment | None = None,
        label: str = "",
    ) -> RunReport:
        """Run an already-constructed scalar protocol instance.

        For ablations and tests that tweak protocol internals before
        running; figure-style runs should prefer :meth:`run` with a
        :class:`QuerySpec`.
        """
        deployment = deployment or self.deployment
        started = _time.perf_counter()
        result = _execute_streams(
            trace,
            protocol,
            query=query,
            tolerance=tolerance,
            deployment=deployment,
            label=label,
        )
        return self._report_from_run_result(
            result, STACK_STREAMS, deployment, started, label
        )

    def _report_from_run_result(
        self,
        result: RunResult,
        stack: str,
        deployment: Deployment,
        started: float,
        label: str,
    ) -> RunReport:
        checker = result.checker
        violations: tuple[str, ...] = ()
        checks = 0
        extras = dict(result.extras)
        if checker is not None:
            checks = checker.checks
            violations = tuple(
                f"t={violation.time}: "
                + tag_reason(violation.reason, violation.classification)
                for violation in checker.violations
            )
            if checker.violation_count > len(checker.violations):
                violations += (
                    f"... and {checker.violation_count - len(checker.violations)} more",
                )
            if checker.classified:
                # Staleness-window mode: surface the violation split.
                extras["violations_inherent_latency"] = checker.inherent_count
                extras["violations_protocol_bug"] = checker.protocol_bug_count
        return RunReport(
            protocol=result.protocol,
            stack=stack,
            topology=deployment.describe(),
            ledger=result.ledger,
            n_streams=result.n_streams,
            n_records=result.n_records,
            wall_seconds=_time.perf_counter() - started,
            final_answer=result.final_answer,
            checks=checks,
            violations=violations,
            label=label,
            extras=extras,
            raw=result,
        )


def run(
    spec: QuerySpec,
    workload: Workload,
    deployment: Deployment | None = None,
    label: str = "",
) -> RunReport:
    """Module-level convenience: ``Engine().run(...)``."""
    return Engine().run(spec, workload, deployment, label=label)
