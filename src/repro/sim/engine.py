"""The simulation engine: a virtual clock over an event heap.

The paper's evaluation (Section 6) runs each protocol inside CSIM 19.  The
only kernel facilities those experiments require are (1) a virtual clock,
(2) the ability to schedule callbacks at future virtual times, and (3) a
bounded run.  :class:`SimulationEngine` provides exactly that, with
deterministic FIFO ordering for simultaneous events so that two runs with
the same seed produce identical message counts.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.events import Event, EventQueue, SimulationError


class SimulationEngine:
    """A deterministic discrete-event simulation loop.

    Example
    -------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule_at(5.0, lambda: fired.append(engine.now))
    >>> engine.run()
    >>> fired
    [5.0]
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired since construction (or :meth:`reset`)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    def schedule_at(
        self, time: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule *action* at absolute virtual time *time*.

        Raises
        ------
        SimulationError
            If *time* lies in the virtual past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        return self._queue.push(time, action, label)

    def schedule_after(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule *action* after a non-negative *delay* from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, action, label)

    def run(self, until: float | None = None) -> None:
        """Fire events in time order.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            this time; the clock is then advanced to *until*.  If omitted,
            run until the queue drains.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                self._now = event.time
                self._events_processed += 1
                event.action()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Fire a single event; return ``False`` if none was pending."""
        if not self._queue:
            return False
        event = self._queue.pop()
        self._now = event.time
        self._events_processed += 1
        event.action()
        return True

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._events_processed = 0
