"""Event primitives for the discrete-event kernel.

An :class:`Event` couples a firing time with a zero-argument callback.
Events with equal firing times fire in the order they were scheduled
(FIFO tie-breaking via a monotonically increasing sequence number), which
keeps simulations fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


class SimulationError(Exception):
    """Raised when the simulation kernel is used incorrectly."""


@dataclass(order=True)
class Event:
    """A scheduled callback in virtual time.

    Attributes
    ----------
    time:
        Virtual firing time.
    seq:
        Monotonic sequence number used for FIFO tie-breaking; assigned by
        the :class:`EventQueue`.
    action:
        Zero-argument callable invoked when the event fires.
    label:
        Optional human-readable tag, useful in tests and debugging.
    cancelled:
        Lazily-deleted flag: cancelled events stay in the heap but are
        skipped when popped.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so it is skipped when it reaches the heap top."""
        self.cancelled = True


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects.

    Cancellation is lazy: :meth:`Event.cancel` flips a flag and the event is
    discarded when popped, so cancellation is O(1) and pops remain
    O(log n) amortized.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule *action* at virtual time *time* and return the event."""
        event = Event(time=time, seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises
        ------
        SimulationError
            If the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise SimulationError("pop from an empty event queue")

    def peek_time(self) -> float | None:
        """Return the firing time of the earliest live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
