"""Named, independently-seeded random streams.

Workload generation draws from several logically independent random sources
(inter-update times, value steps, subnet popularity, ...).  Deriving each
from the same master seed via :func:`numpy.random.SeedSequence.spawn` keeps
runs reproducible while guaranteeing the streams do not alias each other —
changing how many variates one stream consumes never perturbs another.
"""

from __future__ import annotations

import numpy as np


class RandomStreams:
    """A factory of named :class:`numpy.random.Generator` instances.

    Each distinct name deterministically maps to its own child seed of the
    master seed, so ``RandomStreams(42).get("steps")`` is identical across
    runs and independent of ``RandomStreams(42).get("arrivals")``.

    Example
    -------
    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("arrivals")
    >>> b = streams.get("arrivals")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._generators: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was built from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use."""
        if name not in self._generators:
            # Hash the name into stable 32-bit words so the child sequence
            # depends only on (master seed, name).
            name_words = [b for b in name.encode("utf-8")]
            sequence = np.random.SeedSequence([self._seed, *name_words])
            self._generators[name] = np.random.Generator(np.random.PCG64(sequence))
        return self._generators[name]

    def fork(self, salt: int) -> "RandomStreams":
        """Return a new factory whose streams are independent of this one.

        Useful for per-trial seeding inside a sweep: ``rng.fork(trial)``.
        """
        return RandomStreams(seed=(self._seed * 1_000_003 + salt) % (2**63))
