"""Run-time statistics: counters, tallies, and time-weighted averages.

These mirror the statistics facilities of CSIM (``counters``, ``tables`` and
``qtables``) that the paper's harness would have used to report message
counts and answer-set sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class Counter:
    """A monotonically non-decreasing event counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError("Counter can only move forward")
        self._count += by

    def reset(self) -> None:
        self._count = 0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Counter({self.name!r}, count={self._count})"


@dataclass
class TallySummary:
    """Frozen summary of a :class:`Tally`."""

    count: int
    mean: float
    variance: float
    minimum: float
    maximum: float

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


class Tally:
    """Streaming moments of an observed quantity (Welford's algorithm)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def minimum(self) -> float:
        return self._min

    @property
    def maximum(self) -> float:
        return self._max

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); zero for fewer than 2 samples."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    def record(self, value: float) -> None:
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def summary(self) -> TallySummary:
        return TallySummary(
            count=self._count,
            mean=self._mean,
            variance=self.variance,
            minimum=self._min,
            maximum=self._max,
        )

    def reset(self) -> None:
        self.__init__(self.name)


@dataclass
class TimeWeightedStat:
    """Time-weighted average of a piecewise-constant quantity.

    Record a new level whenever the quantity changes; the mean weights each
    level by how long it was held.  Used e.g. for the average answer-set
    size |A(t)| over a run.
    """

    name: str = ""
    _last_time: float = field(default=0.0, repr=False)
    _last_value: float = field(default=0.0, repr=False)
    _weighted_sum: float = field(default=0.0, repr=False)
    _started: bool = field(default=False, repr=False)
    _start_time: float = field(default=0.0, repr=False)

    def record(self, time: float, value: float) -> None:
        """Register that the quantity takes *value* from *time* onward."""
        if not self._started:
            self._started = True
            self._start_time = time
        else:
            if time < self._last_time:
                raise ValueError("time moved backwards")
            self._weighted_sum += self._last_value * (time - self._last_time)
        self._last_time = time
        self._last_value = value

    def mean(self, now: float) -> float:
        """Time-weighted mean over [first record, *now*]."""
        if not self._started or now <= self._start_time:
            return 0.0
        total = self._weighted_sum + self._last_value * (now - self._last_time)
        return total / (now - self._start_time)
