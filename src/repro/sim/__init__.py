"""Discrete-event simulation kernel.

This subpackage replaces CSIM 19, the commercial discrete-event simulator
the paper used for its evaluation (Section 6).  It provides:

* :class:`~repro.sim.engine.SimulationEngine` — a virtual-clock event loop
  driven by a binary heap, with deterministic FIFO tie-breaking;
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.EventQueue`
  — the scheduling primitives;
* :mod:`repro.sim.rng` — named, independently-seeded random streams so that
  workload realizations are reproducible and protocols can be compared on
  identical inputs;
* :mod:`repro.sim.stats` — counters, tallies and time-weighted statistics
  collected during a run.
"""

from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RandomStreams
from repro.sim.stats import Counter, Tally, TimeWeightedStat

__all__ = [
    "SimulationEngine",
    "Event",
    "EventQueue",
    "RandomStreams",
    "Counter",
    "Tally",
    "TimeWeightedStat",
]
