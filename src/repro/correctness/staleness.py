"""Staleness-window classification of tolerance violations.

Under the synchronous channel, correctness requirement 2 holds by
construction and every checker violation is a protocol bug.  Under a
:class:`~repro.network.latency.LatencyChannel` the requirement is
deliberately relaxed, so the checker must split observed violations into
two populations:

* **inherent to latency** — the modeled staleness can account for the
  breach;
* **protocol bug** — it provably cannot, so the implementation itself is
  wrong.

The split rests on one exact fact and one conservative regime rule:

1. **The synchronous prefix is provable.**  Until the first *deferred*
   delivery (a message that actually spent time in flight), a
   latency-modeled run is byte-identical to a synchronous run of the
   same trace: every message so far was delivered inline.  A violation
   observed in that prefix with nothing in flight would occur verbatim
   at ``latency=0`` — a protocol bug, exactly.
2. **Beyond the prefix, attribution is conservative toward latency.**
   Once any message has arrived late, the server may have resolved
   constraints against stale knowledge and deployed mis-sized bounds; the
   resulting violating state can persist long after the network goes
   quiet (observed with FT-RP: a bound computed from in-flight-stale
   ranks keeps the answer out of tolerance through an otherwise silent
   stretch).  No check-time evidence can cheaply distinguish that from a
   genuine bug, so every violation in the stale regime — in flight,
   recently delivered within ``window``, or merely after the first late
   delivery — is classified inherent.

A real protocol bug is therefore *never* mislabeled in the prefix, and a
bug that only manifests after staleness begins is deliberately deferred
to the other half of the harness: the differential ``latency=0`` suite
(tests/network/test_latency_equivalence.py), whose byte-identity and
violation-freedom checks expose it without any staleness ambiguity.
See DESIGN.md §8.3.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.network.latency import LatencyChannel

#: Classification labels attached to :class:`repro.correctness.checker.
#: Violation` records in staleness-window mode.
INHERENT_LATENCY = "inherent-latency"
PROTOCOL_BUG = "protocol-bug"


def strict_should_raise(classification: str) -> bool:
    """The strict-mode policy, shared by every checking stack: abort on
    anything except an inherent-latency breach — those are the
    phenomenon a latency study observes, not a failure."""
    return classification != INHERENT_LATENCY


def tag_reason(reason: str, classification: str) -> str:
    """Render a violation reason with its classification suffix."""
    if classification:
        return f"{reason} [{classification}]"
    return reason


class StalenessWindow:
    """Classifies check-time violations by latency evidence.

    Parameters
    ----------
    channels:
        The session's channels; non-latency channels are ignored (they
        are never "active" — delivery is instantaneous).
    window:
        Look-back horizon in virtual time.  ``0`` (the default) counts
        only messages literally in flight plus the stale-regime rule; a
        positive window additionally counts streams whose last delivery
        happened within ``[t - window, t]`` as lagging.
    """

    def __init__(self, channels: Iterable, window: float = 0.0) -> None:
        # Duck-typed: anything exposing the LatencyChannel evidence API
        # qualifies — the shard transport passes its merged in-flight
        # plane here, which models the same quantities for messages
        # whose flight crosses the process boundary.
        self.channels: Sequence[LatencyChannel] = [
            channel
            for channel in channels
            if isinstance(channel, LatencyChannel)
            or hasattr(channel, "deferred_delivered_count")
        ]
        if window < 0:
            raise ValueError(f"window must be non-negative, got {window}")
        self.window = float(window)

    # ------------------------------------------------------------------
    # Evidence
    # ------------------------------------------------------------------
    def in_flight_count(self) -> int:
        """Messages currently held in flight across all channels."""
        return sum(channel.in_flight_count for channel in self.channels)

    @property
    def stale_regime(self) -> bool:
        """True once any message has been delivered late.

        Before that instant the run is byte-identical to a synchronous
        run (every delivery so far was inline), so violations are
        provably the protocol's own; after it, deployed constraints may
        derive from stale resolutions indefinitely.
        """
        return any(
            channel.deferred_delivered_count for channel in self.channels
        )

    def lagging_streams(self, time: float) -> set[int]:
        """Streams whose server-side belief may legitimately be stale.

        The union of streams with a message in flight and — when the
        window is positive — streams delivered within the window.
        """
        lagging: set[int] = set()
        for channel in self.channels:
            lagging |= channel.in_flight_stream_ids()
            if self.window > 0.0:
                lagging |= channel.recently_delivered_streams(
                    time, self.window
                )
        return lagging

    def quiet(self, time: float) -> bool:
        """True when no latency evidence is live at virtual *time*.

        Quiet does **not** imply trustworthy: in the stale regime a quiet
        instant can still carry mis-sized constraints (see the module
        docstring) — which is why :meth:`classify` consults both.
        """
        for channel in self.channels:
            if channel.in_flight_count:
                return False
            if self.window > 0.0 and channel.recently_delivered_streams(
                time, self.window
            ):
                return False
        return True

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify(self, time: float) -> str:
        """Attribute a violation observed at virtual *time*."""
        if self.quiet(time) and not self.stale_regime:
            return PROTOCOL_BUG
        return INHERENT_LATENCY
