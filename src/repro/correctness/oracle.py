"""The ground-truth oracle.

Holds the true current value of every stream, updated as the harness
applies trace records, and answers "what is the exact answer set right
now?" for any entity-based query.  Range-query truth is maintained
incrementally (O(1) per update); rank-based truth is computed on demand
(O(n) argpartition), which the checker amortizes via sampling when runs
are large.
"""

from __future__ import annotations

import numpy as np

from repro.queries.base import EntityQuery, NonRankBasedQuery, RankBasedQuery
from repro.queries.range_query import RangeQuery


class Oracle:
    """Ground-truth view of all stream values."""

    def __init__(self, initial_values: np.ndarray) -> None:
        self._values = np.asarray(initial_values, dtype=np.float64).copy()
        if self._values.ndim != 1:
            raise ValueError("initial_values must be one-dimensional")
        # Incrementally maintained membership sets, one per registered
        # range query (identified by object id).
        self._range_queries: dict[int, RangeQuery] = {}
        self._range_members: dict[int, set[int]] = {}
        # Other registered queries (rank-based and non-rank-based): their
        # truth is computed on demand, but registering them up front
        # validates support before the first check instead of at it.
        self._on_demand_queries: dict[int, EntityQuery] = {}

    @property
    def n_streams(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        """Read-only view of the true value vector."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def value_of(self, stream_id: int) -> float:
        return float(self._values[stream_id])

    def register_query(self, query: EntityQuery) -> None:
        """Register any supported query for truth maintenance.

        Range queries get O(1)-per-update incremental membership; rank
        and other non-rank queries are validated and tracked, with truth
        computed on demand at check time.  Unsupported types raise
        immediately instead of failing at the first check.
        """
        if isinstance(query, RangeQuery):
            self.register_range_query(query)
            return
        if isinstance(query, (RankBasedQuery, NonRankBasedQuery)):
            self._on_demand_queries.setdefault(id(query), query)
            return
        raise TypeError(f"unsupported query type {type(query)!r}")

    def register_range_query(self, query: RangeQuery) -> None:
        """Enable O(1)-per-update truth maintenance for *query*."""
        key = id(query)
        if key in self._range_queries:
            return
        self._range_queries[key] = query
        members = np.nonzero(query.matches_array(self._values))[0]
        self._range_members[key] = set(int(i) for i in members)

    @property
    def registered_queries(self) -> list[EntityQuery]:
        """Every query registered with this oracle, range or not."""
        return [
            *self._range_queries.values(),
            *self._on_demand_queries.values(),
        ]

    def apply(self, stream_id: int, value: float) -> None:
        """Record that *stream_id* now holds *value*."""
        self._values[stream_id] = value
        for key, query in self._range_queries.items():
            members = self._range_members[key]
            if query.matches(value):
                members.add(stream_id)
            else:
                members.discard(stream_id)

    def true_answer(self, query: EntityQuery) -> frozenset[int]:
        """The exact answer set of *query* for the current values."""
        if isinstance(query, RangeQuery):
            key = id(query)
            if key in self._range_members:
                return frozenset(self._range_members[key])
            return query.true_answer(self._values)
        if isinstance(query, (RankBasedQuery, NonRankBasedQuery)):
            return query.true_answer(self._values)
        raise TypeError(f"unsupported query type {type(query)!r}")
