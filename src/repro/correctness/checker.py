"""Continuous validation of tolerance constraints.

The paper's Correctness Requirements (Section 3.5):

1. at every point in time with no resolution in progress, all running
   queries remain valid within their tolerance constraints;
2. immediately after a resolution completes, the constraint is satisfied
   (values assumed frozen during resolution).

Our default channel delivers messages synchronously, so "resolution" is
atomic within a simulation event; checking right after each applied trace
record therefore validates both requirements at every instant the paper
quantifies over.

Under a latency-modeled channel requirement 2 is deliberately relaxed, so
the checker gains a *staleness-window mode*: pass a
:class:`~repro.correctness.staleness.StalenessWindow` and every observed
violation is classified as ``inherent-latency`` (the network was active —
some data-plane message in flight or recently delivered, so belief and
truth legitimately diverge) or ``protocol-bug`` (the network was quiet,
the state is indistinguishable from a zero-latency quiescent instant, and
the protocol's own guarantee should have held).  See
``repro.correctness.staleness`` for why the split is network-level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.correctness.oracle import Oracle
from repro.correctness.staleness import (
    INHERENT_LATENCY,
    PROTOCOL_BUG,
    StalenessWindow,
    strict_should_raise,
)
from repro.queries.base import EntityQuery, RankBasedQuery
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance


class ToleranceViolationError(AssertionError):
    """Raised in strict mode when a protocol breaks its tolerance."""


@dataclass(frozen=True)
class Violation:
    """One observed tolerance breach.

    ``classification`` is empty outside staleness-window mode; in it,
    either ``"inherent-latency"`` or ``"protocol-bug"``.
    """

    time: float
    reason: str
    classification: str = ""


@dataclass
class CheckerReport:
    """Aggregate outcome of a checked run.

    ``violations`` retains at most ``max_violations`` detailed records;
    ``violation_count`` counts every breach regardless.
    """

    checks: int = 0
    violation_count: int = 0
    violations: list[Violation] = field(default_factory=list)
    #: Staleness-window mode tallies; both stay zero outside it.
    classified: bool = False
    inherent_count: int = 0
    protocol_bug_count: int = 0

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    @property
    def latency_clean(self) -> bool:
        """In staleness-window mode: no violation blamed on the protocol."""
        return self.protocol_bug_count == 0

    @property
    def violation_rate(self) -> float:
        if self.checks == 0:
            return 0.0
        return self.violation_count / self.checks


class ToleranceChecker:
    """Validates a protocol's answer set against ground truth.

    Parameters
    ----------
    oracle:
        The ground-truth value store.
    query:
        The standing query under test.
    tolerance:
        Either a :class:`RankTolerance` or a :class:`FractionTolerance`;
        ``None`` demands the exact answer (zero tolerance).
    answer_of:
        Callable returning the protocol's current answer set.
    every:
        Check every *every*-th invocation (1 = every event); lets large
        benchmark runs sample instead of paying O(n) per event.
    strict:
        Raise :class:`ToleranceViolationError` on the first breach instead
        of accumulating it — the mode unit tests use.  In
        staleness-window mode only ``protocol-bug`` violations raise;
        inherent-latency breaches are the phenomenon under study and are
        accumulated even when strict.
    max_violations:
        Retain at most this many violation records (counters keep going).
    staleness:
        A :class:`~repro.correctness.staleness.StalenessWindow` enabling
        classification of every violation; ``None`` (the default, and
        the only sound choice under the synchronous channel) records
        violations unclassified.
    evaluate:
        Override of the built-in scalar evaluation: a callable returning
        a violation reason string or ``None``.  The spatial stack plugs
        its geometric evaluation in here, so classification, sampling,
        truncation, and strict handling live in one place.  With an
        override, ``oracle``/``query``/``tolerance``/``answer_of`` are
        unused and may be ``None``.
    error_cls:
        The exception type strict mode raises — stacks keep their own
        (e.g. ``SpatialToleranceViolationError``).
    check_offset:
        Which of each ``every``-length window's ticks fires, in
        ``[0, every)``.  The scalar engine checks ticks ``1, 1+every,
        ...`` (offset 0); the spatial runner historically checked ticks
        ``every, 2*every, ...`` (offset ``every - 1``), and its check
        count — and thus its strict-mode behaviour — is part of the
        recorded results, so the phase is a parameter rather than a
        convention change.
    """

    def __init__(
        self,
        oracle: Oracle | None,
        query: EntityQuery | None,
        tolerance: RankTolerance | FractionTolerance | None,
        answer_of: Callable[[], Iterable[int]] | None,
        every: int = 1,
        strict: bool = False,
        max_violations: int = 100,
        staleness: StalenessWindow | None = None,
        evaluate: Callable[[], str | None] | None = None,
        error_cls: type[AssertionError] = ToleranceViolationError,
        check_offset: int = 0,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        if not 0 <= check_offset < every:
            raise ValueError("check_offset must be in [0, every)")
        if evaluate is None:
            if oracle is None or query is None or answer_of is None:
                raise TypeError(
                    "oracle, query and answer_of are required without an "
                    "evaluate override"
                )
            if isinstance(tolerance, RankTolerance) and not isinstance(
                query, RankBasedQuery
            ):
                raise TypeError("rank tolerance requires a rank-based query")
        self.oracle = oracle
        self.query = query
        self.tolerance = tolerance
        self.answer_of = answer_of
        self.every = every
        self.strict = strict
        self.max_violations = max_violations
        self.staleness = staleness
        self.error_cls = error_cls
        self.check_offset = check_offset
        if evaluate is not None:
            self._evaluate = evaluate
        self.report = CheckerReport(classified=staleness is not None)
        self._tick = 0

    def check(self, time: float) -> Violation | None:
        """Validate the current answer; honours the sampling interval."""
        self._tick += 1
        if (self._tick - 1) % self.every != self.check_offset:
            return None
        return self.check_now(time)

    def check_now(self, time: float) -> Violation | None:
        """Validate immediately, ignoring the sampling interval."""
        self.report.checks += 1
        reason = self._evaluate()
        if reason is None:
            return None
        classification = ""
        if self.staleness is not None:
            classification = self.staleness.classify(time)
            if classification == INHERENT_LATENCY:
                self.report.inherent_count += 1
            else:
                assert classification == PROTOCOL_BUG
                self.report.protocol_bug_count += 1
        violation = Violation(
            time=time, reason=reason, classification=classification
        )
        self.report.violation_count += 1
        if len(self.report.violations) < self.max_violations:
            self.report.violations.append(violation)
        if self.strict and strict_should_raise(classification):
            raise self.error_cls(f"t={time}: {reason}")
        return violation

    def _evaluate(self) -> str | None:
        assert self.answer_of is not None and self.oracle is not None
        answer = set(int(i) for i in self.answer_of())
        if isinstance(self.tolerance, RankTolerance):
            assert isinstance(self.query, RankBasedQuery)
            return self.tolerance.violation(
                answer, self.query, self.oracle.values
            )
        true_set = self.oracle.true_answer(self.query)
        if isinstance(self.tolerance, FractionTolerance):
            return self.tolerance.violation(answer, true_set)
        # Zero tolerance: answers must match exactly.
        if answer != true_set:
            extra = answer - true_set
            missing = true_set - answer
            return (
                f"exact answer required: {len(extra)} spurious, "
                f"{len(missing)} missing"
            )
        return None
