"""Ground-truth tracking and tolerance validation.

The simulator — unlike the server — sees every stream's true value.  The
:class:`~repro.correctness.oracle.Oracle` maintains that ground truth as
trace records are applied; the
:class:`~repro.correctness.checker.ToleranceChecker` compares the
protocol's answer set against it after every processed event, verifying
the paper's Correctness Requirements 1 and 2 continuously.
"""

from repro.correctness.checker import (
    CheckerReport,
    ToleranceChecker,
    ToleranceViolationError,
    Violation,
)
from repro.correctness.oracle import Oracle

__all__ = [
    "CheckerReport",
    "Oracle",
    "ToleranceChecker",
    "ToleranceViolationError",
    "Violation",
]
