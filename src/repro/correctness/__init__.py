"""Ground-truth tracking and tolerance validation.

The simulator — unlike the server — sees every stream's true value.  The
:class:`~repro.correctness.oracle.Oracle` maintains that ground truth as
trace records are applied; the
:class:`~repro.correctness.checker.ToleranceChecker` compares the
protocol's answer set against it after every processed event, verifying
the paper's Correctness Requirements 1 and 2 continuously.  Under a
latency-modeled channel the checker's staleness-window mode
(:class:`~repro.correctness.staleness.StalenessWindow`) additionally
classifies each violation as inherent-to-latency or a protocol bug.
"""

from repro.correctness.checker import (
    CheckerReport,
    ToleranceChecker,
    ToleranceViolationError,
    Violation,
)
from repro.correctness.oracle import Oracle
from repro.correctness.staleness import (
    INHERENT_LATENCY,
    PROTOCOL_BUG,
    StalenessWindow,
)

__all__ = [
    "CheckerReport",
    "INHERENT_LATENCY",
    "Oracle",
    "PROTOCOL_BUG",
    "StalenessWindow",
    "ToleranceChecker",
    "ToleranceViolationError",
    "Violation",
]
