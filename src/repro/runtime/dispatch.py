"""Deferred delivery: the re-entrancy discipline shared by every host.

Deploying a constraint whose ``assumed_inside`` belief turns out stale
makes the source report *immediately* — while the protocol is still
inside the current maintenance (or initialization) step.  Every host in
this repo (scalar server, spatial server, multi-query coordinator) must
therefore queue deliveries that arrive mid-step and drain them after the
step completes, so a protocol handler is never re-entered.  This mixin
implements that discipline once.
"""

from __future__ import annotations

from collections import deque
from typing import Callable


class DeferredDeliveryMixin:
    """Queue deliveries that arrive while a handler is running.

    Subclasses call :meth:`_init_delivery` in their constructor, route
    every inbound delivery through :meth:`_deliver`, and implement
    :meth:`_handle_delivery` with the actual protocol callback.  Items
    arriving during a handler — including while :meth:`_drain_pending`
    is mid-drain — are appended to the queue and picked up by the same
    drain loop, never nested.
    """

    def _init_delivery(self) -> None:
        self._busy = False
        self._pending: deque = deque()

    def _deliver(self, item) -> None:
        """Dispatch *item* now, or queue it if a handler is running."""
        if self._busy:
            self._pending.append(item)
            return
        self._dispatch_one(item)
        self._drain_pending()

    def _guarded_call(self, fn: Callable, *args) -> None:
        """Run *fn* with deliveries deferred, then drain the queue."""
        self._busy = True
        try:
            fn(*args)
        finally:
            self._busy = False
        self._drain_pending()

    def _dispatch_one(self, item) -> None:
        self._busy = True
        try:
            self._handle_delivery(item)
        finally:
            self._busy = False

    def _drain_pending(self) -> None:
        while self._pending:
            self._dispatch_one(self._pending.popleft())

    def _handle_delivery(self, item) -> None:
        """Invoke the protocol for one delivered item."""
        raise NotImplementedError
