"""The shared runtime kernel behind all four stacks.

One source core (:class:`FilteredSource` + a :class:`MembershipStrategy`),
one assembly/replay core (:class:`ExecutionSession`), and one deferred
delivery discipline (:class:`DeferredDeliveryMixin`) — the scalar,
spatial, value-window and multi-query stacks are thin specializations of
these three pieces.
"""

from repro.runtime.dispatch import DeferredDeliveryMixin
from repro.runtime.membership import (
    REPORT,
    ContainmentMembership,
    IntervalMembership,
    MembershipStrategy,
    RecenteringWindowMembership,
    RegionMembership,
    SlottedMembership,
)
from repro.runtime.session import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_MIN_CHUNK,
    REPLAY_MODES,
    ExecutionSession,
)
from repro.runtime.source import ChannelFilteredSource, FilteredSource

__all__ = [
    "REPORT",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MIN_CHUNK",
    "REPLAY_MODES",
    "ChannelFilteredSource",
    "ContainmentMembership",
    "DeferredDeliveryMixin",
    "ExecutionSession",
    "FilteredSource",
    "IntervalMembership",
    "MembershipStrategy",
    "RecenteringWindowMembership",
    "RegionMembership",
    "SlottedMembership",
]
