"""The generic filtered source: the mechanism half of the runtime kernel.

:class:`FilteredSource` implements, exactly once, the behaviour every
stack's source used to duplicate: install the new payload, ask the
membership strategy whether that flips a filter, and report if so.
:class:`ChannelFilteredSource` adds the control plane shared by the
channel-backed stacks — probe requests resync-and-reply, constraint
deployments run the self-correction rule.

Stack-specific classes (``StreamSource``, ``SpatialStreamSource``,
``WindowFilterSource``, ``MultiQuerySource``) are thin specializations:
a payload codec (:meth:`FilteredSource._coerce`), a message vocabulary,
and a membership strategy.
"""

from __future__ import annotations

from repro.network.channel import Channel
from repro.network.messages import Message, MessageKind
from repro.runtime.membership import REPORT, MembershipStrategy


class FilteredSource:
    """A source that reports iff its membership flips.

    Parameters
    ----------
    stream_id:
        Dense integer identifier, also the index into trace arrays.
    initial_payload:
        The source's payload (value or point) at virtual time 0.
    membership:
        The strategy deciding when a payload change must be reported.
    """

    def __init__(
        self, stream_id: int, initial_payload, membership: MembershipStrategy
    ) -> None:
        self.stream_id = int(stream_id)
        self.membership = membership
        self.value = self._coerce(initial_payload)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def apply(self, payload, time: float) -> None:
        """Install a new payload; report if the filter demands it."""
        self.value = self._coerce(payload)
        tags = self.membership.evaluate(self.value)
        if tags is not None:
            self._emit(time, tags)

    def assign(self, payload) -> None:
        """Install a payload *without* filter evaluation.

        Only valid for records already proven quiescent — the batched
        replay fast path applies those in bulk, bypassing per-event
        dispatch entirely.
        """
        self.value = self._coerce(payload)

    # ------------------------------------------------------------------
    # Specialization points
    # ------------------------------------------------------------------
    def _coerce(self, payload):
        """Normalize an incoming payload (e.g. ``float``, ``as_point``)."""
        return payload

    def _emit(self, time: float, tags) -> None:
        """Deliver one report; *tags* is :data:`REPORT` or a slot list."""
        raise NotImplementedError


class ChannelFilteredSource(FilteredSource):
    """A filtered source wired to a :class:`Channel`.

    Handles the two server-to-source message kinds uniformly: a probe
    request resynchronizes the membership and replies with the current
    payload; a constraint deployment installs the new filter and sends
    one self-correcting report when the server's belief was stale.
    """

    def __init__(
        self,
        stream_id: int,
        initial_payload,
        membership: MembershipStrategy,
        channel: Channel,
    ) -> None:
        super().__init__(stream_id, initial_payload, membership)
        self.channel = channel
        channel.bind_source(self.stream_id, self._handle_message)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _emit(self, time: float, tags) -> None:
        self.channel.send_to_server(self._update_message(time))

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _handle_message(self, message: Message) -> None:
        if message.kind is MessageKind.PROBE_REQUEST:
            # Replying synchronizes the server's knowledge with our value.
            self.membership.resync(self.value)
            self.channel.send_to_server(self._reply_message(message.time))
            return
        if message.kind is MessageKind.CONSTRAINT:
            container = self._constraint_of(message)
            if self.membership.install(
                container, message.assumed_inside, self.value
            ):
                self._emit(message.time, REPORT)
            return
        raise RuntimeError(  # pragma: no cover - defensive
            f"source received unexpected {message.kind}"
        )

    # ------------------------------------------------------------------
    # Message vocabulary (stack-specific)
    # ------------------------------------------------------------------
    def _update_message(self, time: float) -> Message:
        raise NotImplementedError

    def _reply_message(self, time: float) -> Message:
        raise NotImplementedError

    def _constraint_of(self, message: Message):
        """Extract the container carried by a CONSTRAINT message."""
        raise RuntimeError(
            f"{type(self).__name__} received unexpected {message.kind}"
        )
