"""The execution session: one assembly + one replay loop for all stacks.

An :class:`ExecutionSession` owns the Figure-3 system of one run — the
discrete-event engine, the message ledger, the channel, the sources and
the host (server or coordinator) — and provides the single
:meth:`~ExecutionSession.replay` loop every runner uses.

``replay`` has three modes:

* **event** — the faithful per-record path: each trace record fires as a
  simulation event, the source evaluates its filter, messages flow.
  Required whenever per-record callbacks (oracle maintenance, tolerance
  checking) are active.
* **batch** — the columnar dispatch kernel (DESIGN.md §9): each trace
  chunk is evaluated columnarly against the currently-deployed
  constraint bounds, grouped into per-stream *runs* (stable argsort),
  and drained through a heap of per-run first crossings.  Records that
  provably cannot flip any filter (*quiescent* records) are applied in
  bulk windows; only actual crossings go through the per-event
  machinery, and the state table's constraint-plane watch tells the
  kernel exactly which runs a dispatch invalidated.
* **batch-chunk** — the pre-kernel fast path: first-hit chunk scanning
  with whole-chunk rescans after every dispatch.  Kept selectable so
  the dispatch benchmark can race the two fast paths.

Because quiescent records produce no messages by definition and every
crossing dispatches at its own virtual time through the same source
code path, the resulting :class:`MessageLedger` snapshot of either fast
path is byte-identical to the per-event path's.

The pre-scan reads the deployed bounds and believed memberships directly
from the session's :class:`~repro.state.table.StreamStateTable` columns
(one table per standing query): source membership strategies write their
filter state through to the table (:meth:`~repro.runtime.membership.
MembershipStrategy.bind_state`), so the columns *are* the live filter
state — no per-source polling, no dirty-tracking, no rebuilds.

Scalar payloads are tested against the scalar interval columns; vector
payloads (the spatial stack) against the table's *geometric plane* —
the deployed regions' inscribed/circumscribed bboxes — via
:meth:`~repro.state.table.StreamStateTable.geometric_quiescence_mask`.
The geometric test is conservative: a record the boxes cannot decide is
treated as a potential violation and dispatches per-event, so ledger
byte-identity holds exactly as in the scalar case.

``mode="auto"`` picks batch exactly when it is both safe (no callbacks)
and useful (at least one stream has a scalar or geometric filter
installed).
"""

from __future__ import annotations

import heapq
from typing import Callable, Sequence

import numpy as np

from repro.network.accounting import MessageLedger, Phase
from repro.network.channel import Channel
from repro.network.messages import MessageKind
from repro.network.latency import LatencyChannel, as_latency_model
from repro.runtime.source import FilteredSource
from repro.sim.engine import SimulationEngine
from repro.state.runs import first_true_per_run, segment_runs
from repro.state.table import StreamStateTable

#: Chunk size of the batched quiescence pre-scan.
DEFAULT_BATCH_SIZE = 4096

#: Minimum pre-scan chunk: below this, numpy call overhead beats the
#: per-event loop anyway.  The adaptive chunk heuristic never shrinks a
#: window below it; tunable per run via ``Deployment``/``RunConfig``.
DEFAULT_MIN_CHUNK = 32

#: ``"batch"`` is the run-based columnar dispatch kernel (DESIGN.md §9);
#: ``"batch-chunk"`` keeps the previous first-hit chunk loop selectable
#: so the dispatch benchmark can race the two fast paths.
REPLAY_MODES = ("auto", "event", "batch", "batch-chunk")


def in_flight_barrier(channels):
    """``(earliest delivery time, lagging stream ids)`` over latency
    channels, or ``(None, empty)`` when nothing flies.

    While a message is in flight the pre-scan's claims are unsafe in
    two ways: the in-flight streams' table rows mix deployed-but-not-
    installed bounds with the source's old filter state, and any
    delivery can run a protocol step that rewrites *other* streams'
    bounds.  The batched loop therefore treats in-flight streams as
    always-potential and never claims quiescence at or past the
    earliest pending delivery.

    Shared with the shard transport's workers, whose pre-scan must
    re-check the same barrier against their local heaps — the
    coordinator's merged in-flight plane holds the extracted uplink
    half, so a worker's barrier covers exactly the deliveries that
    stayed local (pending constraint installs).
    """
    t_barrier = None
    lagging: set[int] = set()
    for channel in channels:
        t = channel.next_delivery_time
        if t is not None:
            t_barrier = t if t_barrier is None else min(t_barrier, t)
            lagging |= channel.in_flight_stream_ids()
    return t_barrier, lagging


class ExecutionSession:
    """Engine + ledger + channel + sources + host, assembled once.

    Parameters
    ----------
    sources:
        The source population, indexed by stream id.
    host:
        The server-side owner (``Server``, ``SpatialServer``,
        ``MultiQueryCoordinator`` or ``None`` for bare assemblies).
    initialize:
        Callable running the initialization phase at a given time;
        defaults to ``host.initialize`` when the host has one.
    """

    def __init__(
        self,
        *,
        sources: Sequence[FilteredSource],
        ledger: MessageLedger | None = None,
        engine: SimulationEngine | None = None,
        channel: Channel | None = None,
        channels: Sequence[Channel] | None = None,
        host=None,
        initialize: Callable[[float], None] | None = None,
    ) -> None:
        self.engine = engine or SimulationEngine()
        self.ledger = ledger or MessageLedger()
        self.channel = channel
        #: Every channel in the assembly: one for single-server
        #: topologies, one per shard for sharded ones.  The batched
        #: replay taps each of them for deferred-write flushing.
        if channels is not None:
            self.channels = list(channels)
        else:
            self.channels = [channel] if channel is not None else []
        #: Channels with a latency-modeled delivery discipline: the
        #: replay loops must respect their in-flight barriers and drain
        #: them at end of run.
        self.latency_channels = [
            c for c in self.channels if isinstance(c, LatencyChannel)
        ]
        self.sources = sources
        self.host = host
        if initialize is None and host is not None:
            initialize = getattr(host, "initialize", None)
        self._initialize = initialize
        #: Session-owned state table (hostless assemblies only; hosted
        #: sessions use the host's table(s)).
        self.state: StreamStateTable | None = None
        #: Counters of the most recent :meth:`replay` (resolved mode,
        #: dispatches, staged records, kernel truncations/bailouts);
        #: surfaced through ``RunReport`` extras.
        self.last_replay_stats: dict | None = None
        self._bind_state()

    def _bind_state(self) -> None:
        """Bind every source's membership to a state-table row.

        Hosts with per-query tables (the multi-query coordinator) bind
        their own sources; otherwise the host's table — or a session-owned
        one for bare assemblies — becomes the write-through target.
        Strategies without scalar filter state ignore the binding.
        """
        if self.host is not None and hasattr(self.host, "state_tables"):
            return
        table = getattr(self.host, "state", None)
        if table is None and self.sources:
            table = self.state = StreamStateTable(len(self.sources))
        if table is None:
            return
        for source in self.sources:
            source.membership.bind_state(table, source.stream_id)

    def _state_tables(self) -> list[StreamStateTable]:
        """Every state table whose constraint columns guard a filter."""
        if self.host is not None:
            tables = getattr(self.host, "state_tables", None)
            if tables is not None:
                return list(tables.values())
            table = getattr(self.host, "state", None)
            if table is not None:
                return [table]
        return [self.state] if self.state is not None else []

    # ------------------------------------------------------------------
    # Builders: one per stack
    # ------------------------------------------------------------------
    @staticmethod
    def _make_channel(
        ledger: MessageLedger,
        engine: SimulationEngine,
        latency,
        channel_index: int = 0,
    ) -> Channel:
        """The deployment's delivery discipline: ``latency=None`` is the
        synchronous channel; anything else (including ``0``) compiles to
        a :class:`~repro.network.latency.LatencyChannel` draining through
        *engine* — ``latency=0`` keeps a distinct code path on purpose,
        so the differential suite can prove it byte-identical.
        ``channel_index`` salts the model's RNG streams so per-shard
        channels draw independent delay sequences."""
        model = as_latency_model(latency)
        if model is None:
            return Channel(ledger)
        return LatencyChannel(ledger, engine, model, channel_index=channel_index)

    @classmethod
    def for_streams(
        cls, trace, protocol, latency=None, *, ledger=None, state_factory=None
    ) -> "ExecutionSession":
        """Scalar stack: ``StreamSource`` population + ``Server``.

        ``ledger`` substitutes the session's accounting object (the
        durability tier passes a journaling subclass); ``state_factory``
        substitutes the server's state-table constructor (memmap-backed
        planes).  Both default to the plain RAM objects.
        """
        from repro.server.server import Server
        from repro.streams.source import StreamSource

        engine = SimulationEngine()
        ledger = ledger if ledger is not None else MessageLedger()
        channel = cls._make_channel(ledger, engine, latency)
        sources = [
            StreamSource(stream_id, value, channel)
            for stream_id, value in enumerate(trace.initial_values)
        ]
        server = Server(channel, protocol, state_factory=state_factory)
        return cls(
            sources=sources,
            ledger=ledger,
            engine=engine,
            channel=channel,
            host=server,
        )

    @classmethod
    def _sharded_parts(
        cls,
        trace,
        n_shards: int,
        make_source,
        initials=None,
        latency=None,
        ledger=None,
    ):
        """Shared sharded assembly: ranges, engine, per-shard channels
        (one ledger, each compiled to the deployment's delivery
        discipline), and sources built by ``make_source(stream_id,
        initial, channel)`` in global id order.  ``initials`` defaults
        to the trace's ``initial_values`` (scalar stacks); spatial
        builders pass ``initial_points``."""
        from repro.state.sharding import shard_ranges

        if initials is None:
            initials = trace.initial_values
        ranges = shard_ranges(trace.n_streams, n_shards)
        engine = SimulationEngine()
        ledger = ledger if ledger is not None else MessageLedger()
        channels = [
            cls._make_channel(ledger, engine, latency, channel_index=index)
            for index in range(len(ranges))
        ]
        sources = [
            make_source(stream_id, initials[stream_id], channel)
            for channel, (lo, hi) in zip(channels, ranges)
            for stream_id in range(lo, hi)
        ]
        return ranges, engine, ledger, channels, sources

    @classmethod
    def for_streams_sharded(
        cls,
        trace,
        protocol,
        n_shards: int,
        latency=None,
        *,
        ledger=None,
        state_factory=None,
    ) -> "ExecutionSession":
        """Scalar stack over a sharded topology.

        The population is partitioned into contiguous id ranges, one
        ``Channel`` + :class:`~repro.server.sharded.ShardServer` per
        shard (every channel charging the *same* ledger), coordinated by
        a :class:`~repro.server.sharded.ShardedServer` hosting the
        protocol.  Message ledgers are byte-identical to
        :meth:`for_streams` — see ``repro.server.sharded``.
        """
        from repro.server.sharded import ShardedServer
        from repro.streams.source import StreamSource

        ranges, engine, ledger, channels, sources = cls._sharded_parts(
            trace, n_shards, StreamSource, latency=latency, ledger=ledger
        )
        coordinator = ShardedServer(
            channels, protocol, ranges, state_factory=state_factory
        )
        return cls(
            sources=sources,
            ledger=ledger,
            engine=engine,
            channel=None,
            channels=channels,
            host=coordinator,
        )

    @classmethod
    def for_spatial(cls, trace, protocol, latency=None) -> "ExecutionSession":
        """Spatial stack: ``SpatialStreamSource`` + ``SpatialServer``."""
        from repro.spatial.server import SpatialServer
        from repro.spatial.source import SpatialStreamSource

        engine = SimulationEngine()
        ledger = MessageLedger()
        channel = cls._make_channel(ledger, engine, latency)
        sources = [
            SpatialStreamSource(
                stream_id, trace.initial_points[stream_id], channel
            )
            for stream_id in range(trace.n_streams)
        ]
        server = SpatialServer(channel, protocol)
        return cls(
            sources=sources,
            ledger=ledger,
            engine=engine,
            channel=channel,
            host=server,
        )

    @classmethod
    def for_spatial_sharded(
        cls, trace, protocol, n_shards: int, latency=None
    ) -> "ExecutionSession":
        """Spatial stack over a sharded topology.

        The point population is partitioned exactly as
        :meth:`for_streams_sharded` partitions scalar streams: one
        ``Channel`` + :class:`~repro.server.sharded.SpatialShardServer`
        per contiguous id range (every channel charging the *same*
        ledger), coordinated by a :class:`~repro.server.sharded.
        ShardedSpatialServer` hosting the protocol.  Message ledgers are
        byte-identical to :meth:`for_spatial` — the geometric plane of
        the coordinator's table is aliased by every shard view, so the
        batched AABB pre-scan works unchanged.
        """
        from repro.server.sharded import ShardedSpatialServer
        from repro.spatial.source import SpatialStreamSource

        ranges, engine, ledger, channels, sources = cls._sharded_parts(
            trace,
            n_shards,
            SpatialStreamSource,
            initials=trace.initial_points,
            latency=latency,
        )
        coordinator = ShardedSpatialServer(channels, protocol, ranges)
        return cls(
            sources=sources,
            ledger=ledger,
            engine=engine,
            channel=None,
            channels=channels,
            host=coordinator,
        )

    @classmethod
    def for_windows(cls, trace, width: float, latency=None) -> "ExecutionSession":
        """Value-window stack: ``WindowFilterSource`` population.

        The caller binds its own server-side handler on ``.channel`` and
        runs initialization via ``initialize(run=...)``.
        """
        from repro.valuebased.source import WindowFilterSource

        engine = SimulationEngine()
        ledger = MessageLedger()
        channel = cls._make_channel(ledger, engine, latency)
        sources = [
            WindowFilterSource(stream_id, value, channel, width=width)
            for stream_id, value in enumerate(trace.initial_values)
        ]
        return cls(
            sources=sources, ledger=ledger, engine=engine, channel=channel
        )

    @classmethod
    def for_windows_sharded(
        cls, trace, width: float, n_shards: int, latency=None
    ) -> "ExecutionSession":
        """Value-window stack over per-shard channels (shared ledger).

        The window scheme has no server-to-source maintenance traffic,
        so sharding it is pure channel partitioning; the caller binds
        its handler on every channel in ``.channels``.  Ledgers are
        byte-identical to :meth:`for_windows` because each source's
        report decisions are purely local.
        """
        from repro.valuebased.source import WindowFilterSource

        _, engine, ledger, channels, sources = cls._sharded_parts(
            trace,
            n_shards,
            lambda stream_id, value, channel: WindowFilterSource(
                stream_id, value, channel, width=width
            ),
            latency=latency,
        )
        return cls(
            sources=sources,
            ledger=ledger,
            engine=engine,
            channel=None,
            channels=channels,
        )

    @classmethod
    def for_multiquery(cls, initial_values) -> "ExecutionSession":
        """Shared stack: ``MultiQuerySource`` + ``MultiQueryCoordinator``.

        The coordinator is the session's ``host``; register standing
        queries on it before :meth:`initialize`.
        """
        from repro.multiquery.coordinator import MultiQueryCoordinator

        ledger = MessageLedger()
        coordinator = MultiQueryCoordinator(ledger)
        coordinator.attach_sources(initial_values)
        return cls(
            sources=coordinator.sources,
            ledger=ledger,
            channel=None,
            host=coordinator,
            initialize=coordinator.initialize_all,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initialize(
        self, time: float = 0.0, run: Callable[[float], None] | None = None
    ) -> None:
        """Run the initialization phase; messages are charged to it."""
        run = run or self._initialize
        self.ledger.phase = Phase.INITIALIZATION
        if run is not None:
            run(time)
        self.ledger.phase = Phase.MAINTENANCE

    def snapshot(self):
        """Freeze the ledger for results reporting."""
        return self.ledger.snapshot()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(
        self,
        times: np.ndarray,
        stream_ids: np.ndarray,
        payloads: np.ndarray,
        *,
        horizon: float | None = None,
        oracle_apply: Callable[[int, float], None] | None = None,
        after_apply: Callable[[float], None] | None = None,
        mode: str = "auto",
        batch_size: int = DEFAULT_BATCH_SIZE,
        min_chunk: int = DEFAULT_MIN_CHUNK,
    ) -> None:
        """Feed the record arrays through the assembled system.

        Parameters
        ----------
        times, stream_ids, payloads:
            Parallel, time-sorted record arrays (``payloads`` is 1-D for
            scalar stacks, ``(m, d)`` for spatial).
        horizon:
            Virtual end time; the engine clock is advanced to it.
        oracle_apply:
            Ground-truth maintenance hook, called *before* each record is
            applied.  Forces per-event replay.
        after_apply:
            Correctness hook, called with the record time *after* each
            record is applied.  Forces per-event replay.
        mode:
            ``"auto"`` | ``"event"`` | ``"batch"`` | ``"batch-chunk"``.
        batch_size:
            Chunk size of the batched quiescence pre-scan.
        min_chunk:
            Floor of the adaptive chunk heuristic: a lively stretch
            shrinks the scan window, but never below this.
        """
        mode = self._resolve_mode(mode, payloads, oracle_apply, after_apply)
        stats = {
            "mode": mode,
            "kernel": None,
            "records": int(len(times)),
            "dispatches": 0,
            "staged": 0,
            "columnar_reports": 0,
            "chunk_scans": 0,
            "suffix_rescans": 0,
            "broadcast_truncations": 0,
            "inflight_truncations": 0,
            "dispatch_bailout_at": None,
        }
        self.last_replay_stats = stats
        if mode == "batch":
            self._replay_run_kernel(
                times, stream_ids, payloads, horizon, batch_size, min_chunk,
                stats,
            )
        elif mode == "batch-chunk":
            self._replay_chunked(
                times, stream_ids, payloads, horizon, batch_size, min_chunk,
                stats,
            )
        else:
            stats["dispatches"] = int(len(times))
            self._replay_events(
                times, stream_ids, payloads, horizon, oracle_apply, after_apply
            )
        # A bounded run can leave messages scheduled past the horizon;
        # deliver them so the final state reflects every sent message
        # (a no-op for the synchronous discipline and for latency=0).
        for channel in self.latency_channels:
            channel.drain_in_flight()

    def replay_trace(self, trace, **kwargs) -> None:
        """Replay a ``StreamTrace`` or ``SpatialTrace`` object."""
        payloads = getattr(trace, "values", None)
        if payloads is None:
            payloads = trace.points
        self.replay(
            trace.times,
            trace.stream_ids,
            payloads,
            horizon=trace.horizon,
            **kwargs,
        )

    def _resolve_mode(self, mode, payloads, oracle_apply, after_apply) -> str:
        if mode not in REPLAY_MODES:
            raise ValueError(
                f"replay mode must be one of {REPLAY_MODES}, got {mode!r}"
            )
        if mode == "event":
            return "event"
        # Batching is *sound* only without per-record callbacks (they
        # must observe every record).
        if oracle_apply is not None or after_apply is not None:
            return "event"
        ndim = np.ndim(payloads)
        if ndim not in (1, 2):
            return "event"
        if mode == "auto":
            # Pre-scanning pays off only when some stream carries a
            # columnar filter: scalar intervals for 1-D payloads, the
            # geometric plane's region bboxes for 2-D (spatial) ones.
            tables = self._state_tables()
            if ndim == 1 and not any(t.scannable.any() for t in tables):
                return "event"
            if ndim == 2 and not any(t.geo_scannable.any() for t in tables):
                return "event"
        return "batch" if mode == "auto" else mode

    # ------------------------------------------------------------------
    # Per-event path
    # ------------------------------------------------------------------
    def _replay_events(
        self, times, stream_ids, payloads, horizon, oracle_apply, after_apply
    ) -> None:
        """Fire each record as a simulation event.

        Records are pre-sorted, so each fired event schedules its
        successor — O(1) heap work per record instead of heaping the
        whole trace up front.
        """
        n = len(times)
        engine = self.engine
        sources = self.sources
        if n:

            def fire(index: int) -> Callable[[], None]:
                def action() -> None:
                    stream_id = int(stream_ids[index])
                    payload = payloads[index]
                    time = float(times[index])
                    if oracle_apply is not None:
                        oracle_apply(stream_id, payload)
                    sources[stream_id].apply(payload, time)
                    if after_apply is not None:
                        after_apply(time)
                    nxt = index + 1
                    if nxt < n:
                        engine.schedule_at(float(times[nxt]), fire(nxt))

                return action

            engine.schedule_at(float(times[0]), fire(0))
        engine.run(until=horizon)

    # ------------------------------------------------------------------
    # Batched fast paths
    # ------------------------------------------------------------------
    # Bail out to per-event replay when, after a fair sample, more than
    # this fraction of records dispatched: the workload is too lively for
    # pre-scanning to pay off.  The run kernel tolerates a much higher
    # rate than the chunk loop because a dispatch costs it one heap pop
    # and a suffix check instead of a whole-chunk rescan.
    _BAILOUT_RATE = 0.25
    _BAILOUT_MIN_DISPATCHES = 64
    _RUN_BAILOUT_RATE = 0.6
    _RUN_BAILOUT_MIN_DISPATCHES = 512
    # A dispatch whose protocol reaction rewrites more than this many
    # *other* streams' constraint rows (a broadcast/reinitialization) is
    # cheaper to handle by truncating the chunk and rescanning than by
    # re-validating suffixes one stream at a time.
    _BROADCAST_CAP = 32

    def _in_flight_barrier(self):
        return in_flight_barrier(self.latency_channels)

    def _dispatch_record(self, deferred, stream_ids, payloads, times, j) -> None:
        """Run one record through the faithful per-event machinery."""
        stream_id = int(stream_ids[j])
        time = float(times[j])
        if time > self.engine.now:
            self.engine.run(until=time)
        deferred.flush_for_dispatch(stream_id)
        self.sources[stream_id].apply(payloads[j], time)

    def _replay_chunked(
        self, times, stream_ids, payloads, horizon, batch_size, min_chunk,
        stats,
    ) -> None:
        """The first-hit chunk loop (the pre-kernel batched fast path).

        Scans each chunk for its *first* potential violation, stages the
        quiescent prefix, dispatches the hit per-event and rescans from
        the next record.  Kept selectable as ``mode="batch-chunk"`` so
        the dispatch benchmark can race it against the run kernel; the
        ledger is byte-identical to both other paths.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if min_chunk < 1:
            raise ValueError("min_chunk must be >= 1")
        stats["kernel"] = "chunk"
        n = len(times)
        prescan = _StatePrescan(self._state_tables())
        deferred = _DeferredAssignments(self.sources, self.channels, payloads)
        dispatches = 0
        # Adaptive chunk: track the typical quiescent run length so a
        # lively stretch rescans small windows, a calm one big ones.
        avg_run = float(batch_size)
        try:
            i = 0
            while i < n:
                chunk = int(min(batch_size, max(min_chunk, 4 * avg_run)))
                end = min(i + chunk, n)
                forced_hit = None
                lagging: set[int] = set()
                if self.latency_channels:
                    t_barrier, lagging = self._in_flight_barrier()
                    if t_barrier is not None:
                        # Claim nothing at or past the pending delivery.
                        cap = i + int(
                            np.searchsorted(
                                times[i:end], t_barrier, side="left"
                            )
                        )
                        if cap == i:
                            # Next record needs the delivery first:
                            # dispatching it per-event runs the engine up
                            # to its time, draining what is due.
                            forced_hit = 0
                        else:
                            end = cap
                ids_chunk = stream_ids[i:end]
                vals_chunk = payloads[i:end]
                if forced_hit is not None:
                    hit = forced_hit
                else:
                    stats["chunk_scans"] += 1
                    hit = prescan.first_potential(ids_chunk, vals_chunk)
                    if lagging:
                        # In-flight streams are never provably quiescent.
                        lag_hits = np.nonzero(
                            np.isin(
                                ids_chunk,
                                np.fromiter(
                                    lagging, dtype=np.int64, count=len(lagging)
                                ),
                            )
                        )[0]
                        if lag_hits.size:
                            first_lag = int(lag_hits[0])
                            hit = (
                                first_lag
                                if hit is None
                                else min(hit, first_lag)
                            )
                if hit is None:
                    deferred.stage(ids_chunk, vals_chunk)
                    stats["staged"] += len(ids_chunk)
                    avg_run = min(float(batch_size), 2.0 * max(avg_run, 1.0))
                    i = end
                    continue
                if hit > 0:
                    deferred.stage(ids_chunk[:hit], vals_chunk[:hit])
                    stats["staged"] += hit
                avg_run = 0.75 * avg_run + 0.25 * hit
                j = i + hit
                self._dispatch_record(deferred, stream_ids, payloads, times, j)
                i = j + 1
                dispatches += 1
                # The state-table columns are live views, so re-reading
                # bounds after a broadcast costs nothing; the only
                # overhead left is chunk re-scans, which the dispatch-rate
                # bailout below keeps bounded.
                if (
                    dispatches >= self._BAILOUT_MIN_DISPATCHES
                    and dispatches > self._BAILOUT_RATE * i
                ):
                    break
        finally:
            deferred.close()
        stats["dispatches"] += dispatches
        if i < n:
            # Too lively: finish faithfully on the per-event path.
            stats["dispatch_bailout_at"] = int(i)
            stats["dispatches"] += n - i
            self._replay_events(
                times[i:], stream_ids[i:], payloads[i:], horizon, None, None
            )
            return
        if horizon is None or horizon > self.engine.now:
            self.engine.run(until=horizon)

    def _replay_run_kernel(
        self, times, stream_ids, payloads, horizon, batch_size, min_chunk,
        stats,
    ) -> None:
        """The columnar dispatch kernel (DESIGN.md §9).

        Each chunk is evaluated columnarly in one shot — the crossing
        mask over the live constraint columns — then grouped into
        per-stream runs (stable argsort).  A heap of per-run first
        crossings drives dispatch in strict time order: the provably-
        quiescent window before each crossing is bulk-staged, the
        crossing record runs through the per-event machinery, and the
        constraint-plane watch reports exactly which streams the
        protocol's reaction touched, so only those runs' suffixes are
        re-validated.  Ledger byte-identity with per-event replay holds
        because every record either dispatches at its own virtual time
        through the same source code path, or is staged while provably
        unable to flip any filter.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if min_chunk < 1:
            raise ValueError("min_chunk must be >= 1")
        bulk_table = self._columnar_bulk_table(payloads)
        if bulk_table is not None:
            self._replay_columnar(
                times, stream_ids, payloads, horizon, batch_size, bulk_table,
                stats,
            )
            return
        stats["kernel"] = "run"
        n = len(times)
        tables = self._state_tables()
        prescan = _StatePrescan(tables)
        deferred = _DeferredAssignments(self.sources, self.channels, payloads)
        dispatches = 0
        # Adaptive chunk: consumption-driven — truncations (broadcasts,
        # in-flight barriers) shrink the scan window, clean chunks grow
        # it back toward ``batch_size``.
        avg_consumed = float(batch_size)
        for table in tables:
            table.watch_constraints()
        try:
            i = 0
            while i < n:
                chunk = int(
                    min(batch_size, max(min_chunk, 4 * avg_consumed))
                )
                end = min(i + chunk, n)
                lagging: set[int] = set()
                if self.latency_channels:
                    t_barrier, lagging = self._in_flight_barrier()
                    if t_barrier is not None:
                        # Claim nothing at or past the pending delivery.
                        cap = i + int(
                            np.searchsorted(
                                times[i:end], t_barrier, side="left"
                            )
                        )
                        if cap == i:
                            # Next record needs the delivery first:
                            # dispatching it per-event runs the engine up
                            # to its time, draining what is due.
                            self._dispatch_record(
                                deferred, stream_ids, payloads, times, i
                            )
                            dispatches += 1
                            i += 1
                            continue
                        end = cap
                consumed, chunk_dispatches = self._run_kernel_chunk(
                    stream_ids[i:end],
                    payloads[i:end],
                    times,
                    i,
                    prescan,
                    deferred,
                    tables,
                    lagging,
                    stats,
                )
                i += consumed
                dispatches += chunk_dispatches
                if consumed == end - (i - consumed):
                    avg_consumed = min(
                        float(batch_size), 2.0 * max(avg_consumed, 1.0)
                    )
                else:
                    avg_consumed = 0.75 * avg_consumed + 0.25 * consumed
                if (
                    dispatches >= self._RUN_BAILOUT_MIN_DISPATCHES
                    and dispatches > self._RUN_BAILOUT_RATE * i
                ):
                    break
        finally:
            deferred.close()
            for table in tables:
                table.unwatch_constraints()
        stats["dispatches"] += dispatches
        if i < n:
            # Too lively even for the kernel: finish per-event.
            stats["dispatch_bailout_at"] = int(i)
            stats["dispatches"] += n - i
            self._replay_events(
                times[i:], stream_ids[i:], payloads[i:], horizon, None, None
            )
            return
        if horizon is None or horizon > self.engine.now:
            self.engine.run(until=horizon)

    def _run_kernel_chunk(
        self,
        ids_chunk,
        vals_chunk,
        times,
        base,
        prescan,
        deferred,
        tables,
        lagging,
        stats,
    ) -> tuple[int, int]:
        """Drain one chunk through the run kernel.

        Returns ``(records consumed, records dispatched)``; consuming
        fewer records than the chunk holds means the chunk was truncated
        (broadcast-scale invalidation or an in-flight latency message)
        and the caller must rescan from the truncation point.
        """
        stats["chunk_scans"] += 1
        # Stale watch entries (initialization, earlier chunks' protocol
        # reactions) are already reflected in the live columns this scan
        # is about to read; drop them.
        for table in tables:
            table.drain_constraint_watch()
        mask = prescan.crossing_mask(ids_chunk, vals_chunk)
        if lagging:
            # In-flight streams are never provably quiescent.
            mask = mask | np.isin(
                ids_chunk,
                np.fromiter(lagging, dtype=np.int64, count=len(lagging)),
            )
        n_chunk = len(ids_chunk)
        if not mask.any():
            deferred.stage(ids_chunk, vals_chunk)
            stats["staged"] += n_chunk
            return n_chunk, 0
        # Group the chunk into per-stream runs and seed the dispatch heap
        # with each run's first crossing (chunk position order == time
        # order, so the heap pops crossings exactly as per-event replay
        # would reach them).
        order, starts, run_ids = segment_runs(ids_chunk)
        n_runs = len(run_ids)
        counts = np.diff(starts)
        run_of_pos = np.empty(n_chunk, dtype=np.intp)
        run_of_pos[order] = np.repeat(
            np.arange(n_runs, dtype=np.intp), counts
        )
        rank_in_run = np.empty(n_chunk, dtype=np.intp)
        rank_in_run[order] = np.arange(n_chunk, dtype=np.intp) - np.repeat(
            starts[:-1], counts
        )
        first = first_true_per_run(mask[order], starts)
        epoch = [0] * n_runs
        heap = [
            (int(order[g]), int(r), 0)
            for r, g in enumerate(first)
            if g >= 0
        ]
        heapq.heapify(heap)
        run_of_stream: dict[int, int] | None = None
        engine = self.engine
        sources = self.sources
        latency_channels = self.latency_channels
        cursor = 0
        chunk_dispatches = 0

        def rescan_suffix(r: int, lo_grouped: int) -> None:
            """Re-validate run *r* from grouped index *lo_grouped* on
            against the now-live columns; push its new first crossing."""
            epoch[r] += 1
            hi_grouped = int(starts[r + 1])
            if lo_grouped >= hi_grouped:
                return
            stats["suffix_rescans"] += 1
            suffix = order[lo_grouped:hi_grouped]
            sub = prescan.crossing_mask(
                ids_chunk[suffix], vals_chunk[suffix]
            )
            hits = np.nonzero(sub)[0]
            if hits.size:
                heapq.heappush(
                    heap, (int(suffix[hits[0]]), r, epoch[r])
                )

        while heap:
            pos, r, ep = heapq.heappop(heap)
            if ep != epoch[r]:
                continue
            if pos > cursor:
                # Everything before the crossing is provably quiescent
                # under the columns it was scanned against, which are
                # still live: stage it in bulk.
                deferred.stage(
                    ids_chunk[cursor:pos], vals_chunk[cursor:pos]
                )
                stats["staged"] += pos - cursor
            stream_id = int(ids_chunk[pos])
            time = float(times[base + pos])
            if time > engine.now:
                engine.run(until=time)
            deferred.flush_for_dispatch(stream_id)
            sources[stream_id].apply(vals_chunk[pos], time)
            cursor = pos + 1
            chunk_dispatches += 1
            if latency_channels:
                t_next, _ = self._in_flight_barrier()
                if t_next is not None:
                    # A latency message is in flight: no claim is safe at
                    # or past its delivery.  Truncate; the caller rescans
                    # from here with a fresh barrier.
                    stats["inflight_truncations"] += 1
                    return cursor, chunk_dispatches
            touched: list[int] = []
            for table in tables:
                noted = table.drain_constraint_watch()
                if noted:
                    touched.extend(noted)
            # The dispatched stream's own suffix is always re-validated:
            # even an untouched filter keeps dispatching when the stream
            # carries none (the ~guarded rule).
            rescan_suffix(r, int(starts[r]) + int(rank_in_run[pos]) + 1)
            if touched:
                others = set(touched)
                others.discard(stream_id)
                if len(others) > self._BROADCAST_CAP:
                    # Broadcast-scale reaction: rescanning the remainder
                    # wholesale beats per-stream suffix checks.
                    stats["broadcast_truncations"] += 1
                    return cursor, chunk_dispatches
                if others:
                    if run_of_stream is None:
                        run_of_stream = dict(
                            zip(run_ids.tolist(), range(n_runs))
                        )
                    for other in others:
                        r_other = run_of_stream.get(int(other))
                        if r_other is None:
                            continue
                        # Only positions the cursor has not yet claimed
                        # are still pending for this run.
                        span = order[
                            starts[r_other] : starts[r_other + 1]
                        ]
                        lo = int(np.searchsorted(span, cursor))
                        rescan_suffix(r_other, int(starts[r_other]) + lo)
        if cursor < n_chunk:
            deferred.stage(ids_chunk[cursor:], vals_chunk[cursor:])
            stats["staged"] += n_chunk - cursor
        return n_chunk, chunk_dispatches

    def _columnar_bulk_table(self, payloads) -> StreamStateTable | None:
        """The one state table when crossings themselves are columnar.

        The fully-columnar path (DESIGN.md §9) applies *every* record —
        quiescent or crossing — as window operations, so it is sound
        only when a dispatch's entire observable effect is derivable
        from the constraint columns: the hosted protocol declares
        ``columnar_maintenance`` (reports mutate nothing but the answer
        mask), every source carries a plain deployed interval, no
        silencers rewrite report decisions, no listeners or channel taps
        observe per-message traffic, and no latency model puts reports
        in flight.  Anything else returns ``None`` and the run-heap
        kernel handles the replay.
        """
        if np.ndim(payloads) != 1 or self.latency_channels:
            return None
        protocol = getattr(self.host, "protocol", None)
        if not getattr(protocol, "columnar_maintenance", False):
            return None
        tables = self._state_tables()
        if len(tables) != 1:
            return None
        table = tables[0]
        if not (bool(table.known.all()) and bool(table.scannable.all())):
            return None
        if table.silencer.any() or table._listeners:
            return None
        if any(channel._taps for channel in self.channels):
            return None
        from repro.runtime.membership import IntervalMembership

        for source in self.sources:
            membership = source.membership
            if (
                type(membership) is not IntervalMembership
                or membership.container is None
            ):
                return None
        return table

    def _replay_columnar(
        self, times, stream_ids, payloads, horizon, batch_size, table, stats
    ) -> None:
        """Apply whole chunks — crossings included — columnarly.

        For a ``columnar_maintenance`` protocol a source's belief after
        record ``k`` always equals record ``k``'s containment (a report
        happens exactly when consecutive containments differ), so each
        run's report positions are one vectorized ``diff`` over its
        containment sequence seeded with the table's believed
        membership.  The ledger is charged the exact report count, the
        value/constraint/answer planes take each run's final report, and
        sources are resynchronized once at close — byte-identical to
        per-event replay, with no Python in the loop at all.
        """
        stats["kernel"] = "columnar"
        n = len(times)
        deferred = _DeferredAssignments(self.sources, self.channels, payloads)
        dirty = np.zeros(len(self.sources), dtype=bool)
        ledger = self.ledger
        try:
            i = 0
            while i < n:
                end = min(i + batch_size, n)
                ids_chunk = stream_ids[i:end]
                vals_chunk = payloads[i:end]
                stats["chunk_scans"] += 1
                order, starts, run_ids = segment_runs(ids_chunk)
                contains = (table.lower[ids_chunk] <= vals_chunk) & (
                    vals_chunk <= table.upper[ids_chunk]
                )
                grouped = contains[order]
                previous = np.empty_like(grouped)
                previous[1:] = grouped[:-1]
                previous[starts[:-1]] = table.inside[run_ids]
                report_grouped = grouped != previous
                report_idx = np.nonzero(report_grouped)[0]
                if report_idx.size:
                    ledger.record_kind(
                        MessageKind.UPDATE, int(report_idx.size)
                    )
                    stats["columnar_reports"] += int(report_idx.size)
                    # Each reporting run's *last* report is what the
                    # server remembers: value plane, believed side,
                    # answer membership.
                    last = (
                        np.searchsorted(report_idx, starts[1:], side="left")
                        - 1
                    )
                    first = np.searchsorted(
                        report_idx, starts[:-1], side="left"
                    )
                    reported = last >= first
                    last_report = report_idx[last[reported]]
                    pos = order[last_report]
                    rows = ids_chunk[pos]
                    table.values[rows] = vals_chunk[pos]
                    table.report_time[rows] = times[i:end][pos]
                    final_inside = grouped[last_report]
                    table.inside[rows] = final_inside
                    table.answer_assign_rows(rows, final_inside)
                    dirty[rows] = True
                deferred.stage(ids_chunk, vals_chunk)
                stats["staged"] += end - i
                i = end
        finally:
            deferred.close()
            # One belief resync per reporting source replaces the
            # per-report write-through of the event path.
            for row in np.nonzero(dirty)[0].tolist():
                membership = self.sources[row].membership
                membership.reported_inside = bool(table.inside[row])
        if horizon is None or horizon > self.engine.now:
            self.engine.run(until=horizon)


class _DeferredAssignments:
    """Lazily materialized quiescent writes.

    A quiescent record only changes its source's stored value — nothing
    observable happens until somebody *reads* that value.  So the batched
    replay stages quiescent writes in one numpy vector (two vectorized
    scatters per chunk, last write per stream winning) and flushes a
    source's value only at its next read point:

    * a server-to-source message (probe request or constraint) is about
      to be handled — caught by a channel tap, which runs before the
      source's handler;
    * the source itself is about to dispatch a record per-event;
    * the replay ends (or bails out to the per-event path).

    Sharded assemblies have one channel per shard; the tap is attached
    to every one, so a server-to-source message on any shard flushes its
    target.  Without channels (the multi-query coordinator talks to its
    sources directly) every staged write is flushed before each
    dispatch.

    The shard-transport workers (``repro/server/transport.py``) reuse
    this class and :class:`_StatePrescan` verbatim: each worker process
    stages its shard's quiescent prefixes against its own table and
    flushes through its own channel's taps, so the process boundary
    changes where the primitives run, not what they prove.
    """

    def __init__(
        self, sources, channels: Sequence[Channel], payloads=None
    ) -> None:
        self._sources = sources
        self._channels = list(channels)
        # Scalar stacks stage into a vector; spatial ones into an (n, d)
        # matrix shaped like the trace's payload rows.
        shape: tuple[int, ...] = (len(sources),)
        self._vector = payloads is not None and np.ndim(payloads) == 2
        if self._vector:
            shape = (len(sources), np.shape(payloads)[1])
        self._values = np.empty(shape, dtype=np.float64)
        self._touched = np.zeros(len(sources), dtype=bool)
        for channel in self._channels:
            channel.add_tap(self._tap)

    def close(self) -> None:
        self.flush_all()
        for channel in self._channels:
            channel.remove_tap(self._tap)

    def _tap(self, message) -> None:
        if not message.kind.is_uplink:
            self.flush_one(message.stream_id)

    def stage(self, ids_chunk, vals_chunk) -> None:
        """Record a run of quiescent writes (later records win)."""
        self._values[ids_chunk] = vals_chunk
        self._touched[ids_chunk] = True

    def _staged_payload(self, stream_id: int):
        # Vector rows must be copied out: the staging matrix keeps being
        # scattered into, and spatial sources adopt ndarray payloads
        # without copying.
        value = self._values[stream_id]
        return value.copy() if self._vector else value

    def flush_one(self, stream_id: int) -> None:
        if self._touched[stream_id]:
            self._touched[stream_id] = False
            self._sources[stream_id].assign(self._staged_payload(stream_id))

    def flush_for_dispatch(self, stream_id: int) -> None:
        """Make values readable before a record dispatches per-event."""
        if self._channels:
            # Other sources' reads are flushed by the channel taps.
            self.flush_one(stream_id)
        else:
            self.flush_all()

    def flush_all(self) -> None:
        for stream_id in np.nonzero(self._touched)[0].tolist():
            self._touched[stream_id] = False
            self._sources[stream_id].assign(self._staged_payload(stream_id))


class _StatePrescan:
    """Vectorized "can this record flip any filter?" test.

    Reads the deployed bounds and believed memberships straight from the
    live :class:`~repro.state.table.StreamStateTable` columns — one table
    per standing query, written through by the source membership
    strategies — so there is nothing to poll, tap, or rebuild: the
    columns *are* the filter state at every instant.

    A record is quiescent iff, for every table, either the stream has no
    columnar filter in that table (that query cannot be proven to flip)
    or the filter provably keeps its believed membership: for scalar
    payloads an interval containment equal to the believed side, for
    vector payloads the table's conservative AABB quiescence mask
    (:meth:`~repro.state.table.StreamStateTable.
    geometric_quiescence_mask`).  Streams with no columnar filter in
    *any* table always dispatch — with no filters installed a source
    reports every change, and an undecidable region record must run
    exact geometry per-event.
    """

    def __init__(self, tables: Sequence[StreamStateTable]) -> None:
        self._tables = list(tables)

    def crossing_mask(self, ids_chunk, vals_chunk) -> np.ndarray:
        """Which records might flip a filter, evaluated columnarly.

        ``True`` marks a *potential* crossing — a record that must take
        the per-event path; ``False`` is a proof of quiescence against
        the live columns.  Without any table every record dispatches.
        """
        geometric = vals_chunk.ndim == 2
        potential: np.ndarray | None = None
        guarded: np.ndarray | None = None
        for table in self._tables:
            if geometric:
                scan = table.geo_scannable[ids_chunk]
                quiescent = table.geometric_quiescence_mask(
                    vals_chunk, ids_chunk
                )
                flips = scan & ~quiescent
            else:
                scan = table.scannable[ids_chunk]
                new_inside = (table.lower[ids_chunk] <= vals_chunk) & (
                    vals_chunk <= table.upper[ids_chunk]
                )
                flips = scan & (new_inside != table.inside[ids_chunk])
            potential = flips if potential is None else potential | flips
            guarded = scan if guarded is None else guarded | scan
        if potential is None or guarded is None:
            return np.ones(len(ids_chunk), dtype=bool)
        # Filterless streams report every change.
        potential |= ~guarded
        return potential

    def first_potential(self, ids_chunk, vals_chunk) -> int | None:
        """Index of the first record that might flip a filter, if any."""
        hits = np.nonzero(self.crossing_mask(ids_chunk, vals_chunk))[0]
        if hits.size == 0:
            return None
        return int(hits[0])
