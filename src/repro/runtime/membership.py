"""Membership strategies: the policy half of the runtime kernel.

Every stack in this repo implements the same Section-3.1 contract — a
source reports iff its *membership* (as the server believes it) flips —
but each stack flips membership against a different shape of state:

* :class:`IntervalMembership` — one scalar :class:`FilterConstraint`
  (the paper's adaptive filters, ``repro.streams``);
* :class:`RegionMembership` — one d-dimensional :class:`Region`
  (``repro.spatial``);
* :class:`RecenteringWindowMembership` — an Olston-style value window
  that recenters on every report (``repro.valuebased``);
* :class:`SlottedMembership` — one constraint slot per standing query
  (``repro.multiquery``).

A strategy owns the belief state and answers three questions: does this
new payload demand a report (:meth:`~MembershipStrategy.evaluate`), how
to resynchronize after a probe (:meth:`~MembershipStrategy.resync`), and
— for the batched replay fast path — which scalar interval bounds make a
record provably quiescent (:meth:`~MembershipStrategy.quiescence_rows`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class _Report:
    """Sentinel: report with no slot tags (single-filter stacks)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "<REPORT>"


#: Returned by :meth:`MembershipStrategy.evaluate` to demand an untagged
#: report.  Distinct from a (possibly empty) slot-tag list so that
#: multi-query sources can tell "no filters at all: notify everyone"
#: apart from "these specific slots flipped".
REPORT = _Report()

#: A quiescence row: ``(lower, upper, believed_inside)``.  A scalar value
#: ``v`` is quiescent for the row iff ``(lower <= v <= upper)`` equals
#: ``believed_inside``.
QuiescenceRow = tuple[float, float, bool]


def run_flip_index(rows, values) -> int | None:
    """Scalar-loop oracle for a run's first filter-flipping record.

    Given one stream's quiescence *rows* and the run of scalar payloads
    *values* it is about to report (time-ascending), return the index of
    the first payload whose containment disagrees with a row's believed
    membership, or ``None`` when the whole run is provably quiescent.
    ``rows`` follows the :meth:`MembershipStrategy.quiescence_rows`
    contract, so ``None`` rows (unbatchable source) flip at index 0.

    This is deliberately the naive per-event loop: the columnar dispatch
    kernel's vectorized first-crossing (``repro.state.runs``) must agree
    with it on every input — the property suite checks exactly that.
    Bulk application of the quiescent prefix ``values[:flip]`` is then
    sound by construction: none of those payloads would have reported.
    """
    if rows is None:
        return 0 if len(values) else None
    for index, value in enumerate(values):
        value = float(value)
        for lower, upper, believed_inside in rows:
            if (lower <= value <= upper) != bool(believed_inside):
                return index
    return None


def deployment_outcome(
    container, assumed_inside: bool | None, payload
) -> tuple[bool, bool]:
    """The deployment rule every stack shares, in one place.

    Returns ``(believed_inside, must_report)``.  The post-deployment
    belief always converges to the actual containment: a silencing
    filter's belief is irrelevant, fresh knowledge (``assumed_inside is
    None``) is exact, a matching belief already agrees, and a stale one
    is self-corrected.  A report is due exactly in that last case — a
    non-silencing deployment carrying a belief the payload contradicts.
    """
    actual = container.contains(payload)
    must_report = (
        not container.is_silencing
        and assumed_inside is not None
        and bool(assumed_inside) != actual
    )
    return actual, must_report


class MembershipStrategy(ABC):
    """The report-iff-membership-flips policy of one source."""

    def bind_state(self, table, stream_id: int) -> None:
        """Attach a :class:`~repro.state.table.StreamStateTable` row.

        Bound strategies *write through* their filter state — scalar
        bounds (or region quiescence boxes) and believed membership — to
        the table's constraint columns, making the table the single
        source of truth the batched replay pre-scan reads.  The default
        is a no-op: strategies with no columnar form stay unbound, and
        their sources always dispatch per-event.
        """

    @abstractmethod
    def evaluate(self, payload):
        """Judge a freshly-installed *payload*.

        Returns ``None`` for "stay silent", :data:`REPORT` for a plain
        report, or a non-empty list of slot tags for a tagged report.
        Implementations mutate their belief state as a side effect, so
        the caller must emit the report whenever the return is not
        ``None``.
        """

    @abstractmethod
    def resync(self, payload) -> None:
        """Probe semantics: align every belief with the actual payload."""

    def install(self, container, assumed_inside: bool | None, payload) -> bool:
        """Deploy *container* as the new filter; return ``True`` iff the
        server's *assumed_inside* belief was stale and one self-correcting
        report must be sent (the deployment rule shared by all stacks)."""
        raise TypeError(f"{type(self).__name__} does not accept deployments")

    def quiescence_rows(self) -> list[QuiescenceRow] | None:
        """Scalar bounds for the batched-replay quiescence pre-scan.

        ``None`` means this source is not batchable right now (no filter
        installed, or non-scalar membership): every record targeting it
        must take the per-event path.  Otherwise, a record is quiescent —
        provably unable to flip any filter — iff *every* returned row
        agrees that containment equals the believed membership.
        """
        return None


class ContainmentMembership(MembershipStrategy):
    """Membership against a single installed container.

    The container only needs ``contains(payload) -> bool`` and an
    ``is_silencing`` property; :class:`repro.streams.filters.FilterConstraint`
    and :class:`repro.spatial.geometry.Region` both qualify.  With no
    container installed the source reports every change (the bare-stream
    baseline).
    """

    def __init__(self) -> None:
        self.container = None
        self.reported_inside = False

    def evaluate(self, payload):
        if self.container is None:
            return REPORT
        inside = self.container.contains(payload)
        if inside != self.reported_inside:
            self.reported_inside = inside
            return REPORT
        return None

    def resync(self, payload) -> None:
        if self.container is not None:
            self.reported_inside = self.container.contains(payload)

    def install(self, container, assumed_inside: bool | None, payload) -> bool:
        self.container = container
        self.reported_inside, must_report = deployment_outcome(
            container, assumed_inside, payload
        )
        return must_report


class IntervalMembership(ContainmentMembership):
    """Scalar closed-interval membership (the paper's filters).

    When bound to a state table the installed bounds and the believed
    membership are written through on every mutation, so the batched
    replay pre-scan can read them columnar without polling sources.
    """

    def __init__(self) -> None:
        super().__init__()
        self._table = None
        self._row = -1

    def bind_state(self, table, stream_id: int) -> None:
        self._table = table
        self._row = int(stream_id)
        self._write_through()

    def _write_through(self) -> None:
        if self._table is None:
            return
        if self.container is None:
            self._table.clear_filter(self._row)
        else:
            self._table.set_filter(
                self._row,
                self.container.lower,
                self.container.upper,
                self.reported_inside,
            )

    def evaluate(self, payload):
        result = super().evaluate(payload)
        if result is not None and self._table is not None:
            self._table.set_inside(self._row, self.reported_inside)
        return result

    def resync(self, payload) -> None:
        super().resync(payload)
        if self._table is not None and self.container is not None:
            self._table.set_inside(self._row, self.reported_inside)

    def install(self, container, assumed_inside: bool | None, payload) -> bool:
        must_report = super().install(container, assumed_inside, payload)
        self._write_through()
        return must_report

    def quiescence_rows(self) -> list[QuiescenceRow] | None:
        if self.container is None:
            return None
        return [
            (self.container.lower, self.container.upper, self.reported_inside)
        ]


class RegionMembership(ContainmentMembership):
    """d-dimensional region membership, batched via quiescence boxes.

    When bound to a state table the installed region's axis-aligned
    quiescence boxes (:meth:`repro.spatial.geometry.Region.
    quiescence_bboxes`) and the believed membership are written through
    to the table's *geometric plane* on every mutation — the spatial
    mirror of :class:`IntervalMembership`'s scalar write-through.  The
    batched replay pre-scan then decides quiescence columnar-side with
    one vectorized AABB test; regions that cannot bound themselves with
    boxes (``quiescence_bboxes`` returning ``None``) leave the row
    unscannable and their sources dispatch per-event as before.
    """

    def __init__(self) -> None:
        super().__init__()
        self._table = None
        self._row = -1
        self._dimension: int | None = None

    def bind_state(self, table, stream_id: int) -> None:
        self._table = table
        self._row = int(stream_id)
        self._write_through()

    def _write_through(self) -> None:
        if self._table is None:
            return
        if self.container is None or self._dimension is None:
            self._table.clear_region_filter(self._row)
            return
        boxes = self.container.quiescence_bboxes(self._dimension)
        if boxes is None:
            self._table.clear_region_filter(self._row)
        else:
            self._table.record_region_deploy(self._row, *boxes)
        self._table.set_inside(self._row, self.reported_inside)

    def evaluate(self, payload):
        result = super().evaluate(payload)
        if result is not None and self._table is not None:
            self._table.set_inside(self._row, self.reported_inside)
        return result

    def resync(self, payload) -> None:
        super().resync(payload)
        if self._table is not None and self.container is not None:
            self._table.set_inside(self._row, self.reported_inside)

    def install(self, container, assumed_inside: bool | None, payload) -> bool:
        must_report = super().install(container, assumed_inside, payload)
        self._dimension = len(payload)
        self._write_through()
        return must_report


class RecenteringWindowMembership(MembershipStrategy):
    """An Olston-style ``±width/2`` window that travels with the data.

    A payload inside the window is, by definition, what the server
    believes; escaping it triggers a report *and* recenters the window on
    the reported value, so the believed membership is always "inside".
    No constraints are deployed during maintenance.
    """

    def __init__(self, width: float, center: float) -> None:
        if width < 0:
            raise ValueError("window width must be non-negative")
        self.width = float(width)
        self.center = float(center)
        self._table = None
        self._row = -1

    def bind_state(self, table, stream_id: int) -> None:
        self._table = table
        self._row = int(stream_id)
        self._write_through()

    def _write_through(self) -> None:
        if self._table is None:
            return
        half = self.width / 2.0
        self._table.set_filter(
            self._row, self.center - half, self.center + half, True
        )

    def evaluate(self, payload):
        # Written as the same closed-interval comparison the batched
        # pre-scan uses (quiescence_rows), not abs(payload - center):
        # the two are equivalent in real arithmetic but can disagree by
        # one ulp in floating point, which would let batch mode stage a
        # record the per-event path reports and break byte-identity.
        half = self.width / 2.0
        if not (self.center - half <= payload <= self.center + half):
            self.center = payload
            self._write_through()
            return REPORT
        return None

    def resync(self, payload) -> None:
        self.center = payload
        self._write_through()

    def quiescence_rows(self) -> list[QuiescenceRow] | None:
        half = self.width / 2.0
        return [(self.center - half, self.center + half, True)]


class SlottedMembership(MembershipStrategy):
    """One constraint slot per standing query (multi-query sharing).

    Each slot holds the constraint a query deployed plus the membership
    that query's protocol believes.  Evaluation returns the list of
    flipped slot tags so one physical update can be forwarded precisely;
    with no slots installed at all the source behaves like a bare stream
    (:data:`REPORT`: notify every query).
    """

    def __init__(self) -> None:
        self.constraints: dict[str, object] = {}
        self.reported_inside: dict[str, bool] = {}
        self._tables: dict[str, object] | None = None
        self._row = -1

    def bind_slot_states(self, tables: dict, stream_id: int) -> None:
        """Attach the per-query state-table registry (shared, live dict).

        Each slot tag that also keys *tables* writes its filter state
        through to that query's table row; tags without a registered
        table (ad-hoc slots in unit tests) are simply not mirrored.
        """
        self._tables = tables
        self._row = int(stream_id)
        for tag in self.constraints:
            self._write_slot(tag)

    def _write_slot(self, tag: str) -> None:
        if self._tables is None:
            return
        table = self._tables.get(tag)
        if table is None:
            return
        constraint = self.constraints[tag]
        table.set_filter(
            self._row,
            constraint.lower,
            constraint.upper,
            self.reported_inside[tag],
        )

    def _write_slot_inside(self, tag: str) -> None:
        if self._tables is None:
            return
        table = self._tables.get(tag)
        if table is not None:
            table.set_inside(self._row, self.reported_inside[tag])

    def evaluate(self, payload):
        if not self.constraints:
            return REPORT
        flipped: list[str] | None = None
        for tag, constraint in self.constraints.items():
            if constraint.is_silencing:
                continue
            inside = constraint.contains(payload)
            if inside != self.reported_inside[tag]:
                self.reported_inside[tag] = inside
                self._write_slot_inside(tag)
                if flipped is None:
                    flipped = []
                flipped.append(tag)
        return flipped

    def resync(self, payload) -> None:
        for tag, constraint in self.constraints.items():
            self.reported_inside[tag] = constraint.contains(payload)
            self._write_slot_inside(tag)

    def resync_slot(self, tag: str, payload) -> None:
        """Probe semantics for one slot only."""
        constraint = self.constraints.get(tag)
        if constraint is not None:
            self.reported_inside[tag] = constraint.contains(payload)
            self._write_slot_inside(tag)

    def install_slot(
        self, tag: str, constraint, assumed_inside: bool | None, payload
    ) -> bool:
        """Deploy into one slot; returns ``True`` iff the slot must
        self-correct with a report tagged *tag*."""
        self.constraints[tag] = constraint
        self.reported_inside[tag], must_report = deployment_outcome(
            constraint, assumed_inside, payload
        )
        self._write_slot(tag)
        return must_report

    def slot(self, tag: str):
        """The constraint currently installed for *tag* (or ``None``)."""
        return self.constraints.get(tag)

    def quiescence_rows(self) -> list[QuiescenceRow] | None:
        if not self.constraints:
            return None
        return [
            (c.lower, c.upper, self.reported_inside[tag])
            for tag, c in self.constraints.items()
        ]
