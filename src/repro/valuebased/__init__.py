"""Value-based tolerance: the prior art the paper argues against.

Earlier adaptive-filter work (Olston et al., SIGMOD 2003 — reference [17]
of the paper) expresses error tolerance as a *numeric* bound ``eps``:
each source holds a window of width ``eps`` centred on its last reported
value and reports only when its value escapes the window, so the server
knows every value to within ``eps/2``.  For a top-k query this guarantees
the *values* of the returned streams are within ``eps`` of the true
k-th-best value — but says nothing directly about their *ranks*.

Figure 1 of the paper argues this is the wrong interface for
entity-based queries: a small ``eps`` wastes the tolerance (no message
savings), a large one lets the returned entity rank arbitrarily far from
the true answer, and picking a good ``eps`` requires knowing the data's
spread.  This package implements the value-based protocol so the
argument can be *measured*: ``repro.experiments.figure01`` sweeps
``eps`` and reports messages and observed rank error side by side with
RTP, whose rank guarantee is direct.
"""

from repro.valuebased.protocol import (
    ValueToleranceResult,
    ValueToleranceTopKProtocol,
    run_value_tolerance,
)
from repro.valuebased.source import WindowFilterSource

__all__ = [
    "ValueToleranceResult",
    "ValueToleranceTopKProtocol",
    "WindowFilterSource",
    "run_value_tolerance",
]
