"""Sources with Olston-style self-recentering value windows.

Unlike the paper's filters — fixed intervals installed by the server,
violated on *membership flips* — a value window travels with the data:
after each report the window recenters on the reported value.  No
constraint messages are needed during maintenance; the width is fixed at
installation.  On the runtime kernel this is just
:class:`repro.runtime.membership.RecenteringWindowMembership` bound to
the scalar message vocabulary.
"""

from __future__ import annotations

from repro.network.channel import Channel
from repro.network.messages import Message, ProbeReplyMessage, UpdateMessage
from repro.runtime.membership import RecenteringWindowMembership
from repro.runtime.source import ChannelFilteredSource


class WindowFilterSource(ChannelFilteredSource):
    """A source reporting when its value escapes a +-width/2 window."""

    def __init__(
        self,
        stream_id: int,
        initial_value: float,
        channel: Channel,
        width: float,
    ) -> None:
        membership = RecenteringWindowMembership(
            width=width, center=float(initial_value)
        )
        super().__init__(stream_id, initial_value, membership, channel)
        self.width = float(width)

    def _coerce(self, payload) -> float:
        return float(payload)

    def apply_value(self, value: float, time: float) -> None:
        """Install a new value; report iff it escapes the window."""
        self.apply(value, time)

    # ------------------------------------------------------------------
    # Message vocabulary
    # ------------------------------------------------------------------
    def _update_message(self, time: float) -> Message:
        return UpdateMessage(
            stream_id=self.stream_id, time=time, value=self.value
        )

    def _reply_message(self, time: float) -> Message:
        return ProbeReplyMessage(
            stream_id=self.stream_id, time=time, value=self.value
        )

    def _constraint_of(self, message: Message):
        raise RuntimeError(
            f"window source received unexpected {message.kind}"
        )

    @property
    def center(self) -> float:
        """The value the server currently believes (window centre)."""
        return self.membership.center
