"""Sources with Olston-style self-recentering value windows.

Unlike the paper's filters — fixed intervals installed by the server,
violated on *membership flips* — a value window travels with the data:
after each report the window recenters on the reported value.  No
constraint messages are needed during maintenance; the width is fixed at
installation.
"""

from __future__ import annotations

from repro.network.channel import Channel
from repro.network.messages import (
    Message,
    MessageKind,
    ProbeReplyMessage,
    ProbeRequestMessage,
    UpdateMessage,
)


class WindowFilterSource:
    """A source reporting when its value escapes a +-width/2 window."""

    def __init__(
        self,
        stream_id: int,
        initial_value: float,
        channel: Channel,
        width: float,
    ) -> None:
        if width < 0:
            raise ValueError("window width must be non-negative")
        self.stream_id = stream_id
        self.value = float(initial_value)
        self.width = float(width)
        self.channel = channel
        self._center = float(initial_value)
        channel.bind_source(stream_id, self._handle_message)

    def apply_value(self, value: float, time: float) -> None:
        """Install a new value; report iff it escapes the window."""
        self.value = float(value)
        if abs(self.value - self._center) > self.width / 2.0:
            self._center = self.value
            self.channel.send_to_server(
                UpdateMessage(
                    stream_id=self.stream_id, time=time, value=self.value
                )
            )

    def _handle_message(self, message: Message) -> None:
        if message.kind is MessageKind.PROBE_REQUEST:
            assert isinstance(message, ProbeRequestMessage)
            self._center = self.value  # the server now knows us exactly
            self.channel.send_to_server(
                ProbeReplyMessage(
                    stream_id=self.stream_id,
                    time=message.time,
                    value=self.value,
                )
            )
            return
        raise RuntimeError(  # pragma: no cover - defensive
            f"window source received unexpected {message.kind}"
        )

    @property
    def center(self) -> float:
        """The value the server currently believes (window centre)."""
        return self._center
