"""The value-tolerance top-k protocol and its measurement harness.

The server answers a top-k query from the window centres it knows; the
value guarantee is ``eps`` (every known value is within ``eps/2`` of the
truth, so every returned stream's true value is within ``eps`` of the
true k-th best).  The harness additionally measures what the user
actually cares about for an entity-based query — the *true ranks* of the
returned streams — to quantify Figure 1's complaint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.correctness.oracle import Oracle
from repro.network.accounting import LedgerSnapshot
from repro.queries.base import RankBasedQuery
from repro.queries.rank import ranked_ids
from repro.runtime.session import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_MIN_CHUNK,
    ExecutionSession,
)
from repro.sim.stats import Tally
from repro.streams.trace import StreamTrace


class ValueToleranceTopKProtocol:
    """Server side of the value-window scheme for a rank-based query."""

    name = "value-eps"

    def __init__(self, query: RankBasedQuery, eps: float) -> None:
        if eps < 0:
            raise ValueError("eps must be non-negative")
        self.query = query
        self.eps = float(eps)
        self._known: np.ndarray | None = None
        self._cache: frozenset[int] | None = None

    def seed(self, values: dict[int, float]) -> None:
        """Install the initial collection of window centres."""
        self._known = np.empty(len(values), dtype=np.float64)
        for stream_id, value in values.items():
            self._known[stream_id] = value
        self._cache = None

    def on_update(self, stream_id: int, value: float) -> None:
        assert self._known is not None, "seed() must run first"
        self._known[stream_id] = value
        self._cache = None

    @property
    def answer(self) -> frozenset[int]:
        """The k best streams by *known* (window-centre) values."""
        if self._known is None:
            return frozenset()
        if self._cache is None:
            order = ranked_ids(self.query, self._known)
            self._cache = frozenset(int(i) for i in order[: self.query.k])
        return self._cache


@dataclass
class ValueToleranceResult:
    """Cost and answer-quality outcome of a value-tolerance run."""

    eps: float
    maintenance_messages: int
    worst_rank: int
    mean_rank_error: float
    value_guarantee_held: bool
    rank_samples: int = 0
    extras: dict = field(default_factory=dict)
    #: Full message-ledger snapshot (for the unified RunReport).
    ledger: "LedgerSnapshot | None" = None


def run_value_tolerance(
    trace: StreamTrace,
    query: RankBasedQuery,
    eps: float,
    check_every: int = 1,
    replay_mode: str = "auto",
    batch_size: int = DEFAULT_BATCH_SIZE,
    min_chunk: int = DEFAULT_MIN_CHUNK,
    n_shards: int = 1,
    latency=None,
) -> ValueToleranceResult:
    """Replay *trace* under value tolerance *eps*; measure rank quality.

    ``worst_rank`` is the worst true rank any returned stream held at a
    checkpoint; ``mean_rank_error`` averages ``max(0, rank - k)`` over
    all sampled answer members.  ``value_guarantee_held`` verifies the
    scheme's own contract: every known value within ``eps/2`` of truth.
    With ``check_every=0`` no rank quality is sampled and the batched
    replay fast path applies.  ``n_shards > 1`` partitions the sources
    over per-shard channels (one ledger); window reports are purely
    local decisions, so the ledger is identical to the single-channel
    run.
    """
    if n_shards > 1:
        session = ExecutionSession.for_windows_sharded(
            trace, width=eps, n_shards=n_shards, latency=latency
        )
    else:
        session = ExecutionSession.for_windows(trace, width=eps, latency=latency)
    protocol = ValueToleranceTopKProtocol(query, eps)
    for channel in session.channels:
        channel.bind_server(
            lambda message: protocol.on_update(message.stream_id, message.value)
        )

    # Initialization: one snapshot of every value (charged separately).
    session.initialize(
        run=lambda time: protocol.seed(
            {
                stream_id: source.value
                for stream_id, source in enumerate(session.sources)
            }
        )
    )

    worst_rank = query.k
    rank_error = Tally("rank-error")
    guarantee_held = True
    oracle_apply = None
    after_apply = None
    if check_every:
        oracle = Oracle(trace.initial_values)
        oracle_apply = oracle.apply
        tick = 0

        def after_apply(time: float) -> None:
            nonlocal tick, worst_rank, guarantee_held
            tick += 1
            if tick % check_every != 0:
                return
            order = ranked_ids(query, oracle.values)
            positions = {int(s): i + 1 for i, s in enumerate(order)}
            for member in protocol.answer:
                rank = positions[member]
                worst_rank = max(worst_rank, rank)
                rank_error.record(max(0, rank - query.k))
            drift = np.max(
                np.abs(oracle.values - protocol._known)  # noqa: SLF001
            )
            if drift > eps / 2.0 + 1e-9:
                guarantee_held = False

    session.replay_trace(
        trace,
        oracle_apply=oracle_apply,
        after_apply=after_apply,
        mode=replay_mode,
        batch_size=batch_size,
        min_chunk=min_chunk,
    )

    return ValueToleranceResult(
        eps=eps,
        maintenance_messages=session.ledger.maintenance_total,
        worst_rank=worst_rank,
        mean_rank_error=rank_error.mean if rank_error.count else 0.0,
        value_guarantee_held=guarantee_held,
        rank_samples=rank_error.count,
        ledger=session.snapshot(),
    )
