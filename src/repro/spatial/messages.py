"""Vector-valued message types.

Mirrors :mod:`repro.network.messages` with payloads generalized to
points and regions; the same :class:`~repro.network.messages.MessageKind`
taxonomy (and hence the same ledger accounting) applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.messages import Message, MessageKind
from repro.spatial.geometry import Region


@dataclass(frozen=True)
class PointUpdateMessage(Message):
    """Source-to-server report of a vector value."""

    point: np.ndarray = field(default_factory=lambda: np.zeros(1))

    @property
    def kind(self) -> MessageKind:
        return MessageKind.UPDATE


@dataclass(frozen=True)
class PointProbeRequestMessage(Message):
    """Server-to-source request for the current point."""

    @property
    def kind(self) -> MessageKind:
        return MessageKind.PROBE_REQUEST


@dataclass(frozen=True)
class PointProbeReplyMessage(Message):
    """Source-to-server probe reply carrying the current point."""

    point: np.ndarray = field(default_factory=lambda: np.zeros(1))

    @property
    def kind(self) -> MessageKind:
        return MessageKind.PROBE_REPLY


@dataclass(frozen=True)
class RegionConstraintMessage(Message):
    """Server-to-source deployment of a region filter.

    ``assumed_inside`` carries the server's membership belief exactly as
    in the 1-D :class:`~repro.network.messages.ConstraintMessage`.
    """

    region: Region = None  # type: ignore[assignment]
    assumed_inside: bool | None = None

    @property
    def kind(self) -> MessageKind:
        return MessageKind.CONSTRAINT
