"""Vector-valued message types and their columnar wire frames.

Mirrors :mod:`repro.network.messages` with payloads generalized to
points and regions; the same :class:`~repro.network.messages.MessageKind`
taxonomy (and hence the same ledger accounting) applies.

The second half of this module is the spatial RPC *frame* codec used by
the process shard transport (DESIGN.md §10).  A frame packs one epoch
batch of points or regions into contiguous little-endian numpy buffers
— x/y columns for point batches, constraint-rect columns for region
batches — so a worker epoch is one recv plus one vectorized scatter
instead of a per-object pickle loop.  Regions that have no columnar
encoding (unions, custom subclasses) ride along through a pickled
escape row, so the frame vocabulary is total over the region algebra.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

import numpy as np

from repro.network.frames import le_column
from repro.network.messages import Message, MessageKind
from repro.spatial.geometry import (
    ALL_SPACE,
    EMPTY_REGION,
    BallRegion,
    BoxRegion,
    Region,
)


@dataclass(frozen=True)
class PointUpdateMessage(Message):
    """Source-to-server report of a vector value."""

    point: np.ndarray = field(default_factory=lambda: np.zeros(1))

    @property
    def kind(self) -> MessageKind:
        return MessageKind.UPDATE


@dataclass(frozen=True)
class PointProbeRequestMessage(Message):
    """Server-to-source request for the current point."""

    @property
    def kind(self) -> MessageKind:
        return MessageKind.PROBE_REQUEST


@dataclass(frozen=True)
class PointProbeReplyMessage(Message):
    """Source-to-server probe reply carrying the current point."""

    point: np.ndarray = field(default_factory=lambda: np.zeros(1))

    @property
    def kind(self) -> MessageKind:
        return MessageKind.PROBE_REPLY


@dataclass(frozen=True)
class RegionConstraintMessage(Message):
    """Server-to-source deployment of a region filter.

    ``assumed_inside`` carries the server's membership belief exactly as
    in the 1-D :class:`~repro.network.messages.ConstraintMessage`.
    """

    region: Region = None  # type: ignore[assignment]
    assumed_inside: bool | None = None

    @property
    def kind(self) -> MessageKind:
        return MessageKind.CONSTRAINT


# ---------------------------------------------------------------------------
# Columnar wire frames (shard-transport RPC payloads, DESIGN.md §10)
# ---------------------------------------------------------------------------

#: Region kind codes in a :class:`RegionBatchFrame`'s ``kinds`` column.
REGION_BOX = 0  #: params row = ``lows ‖ highs`` (2d columns, exact)
REGION_BALL = 1  #: params row = ``center ‖ radius`` (d+1 columns used)
REGION_ALL_SPACE = 2  #: no params (the false-positive silencer)
REGION_EMPTY = 3  #: no params (the false-negative silencer)
REGION_PICKLED = 4  #: params[0] = index into ``blobs`` (escape hatch)

_POINT_I8 = np.dtype("<i8")
_POINT_F8 = np.dtype("<f8")


# One coercion helper serves every frame family (scalar in-flight
# frames included): repro.network.frames owns it.
_le_column = le_column


@dataclass(frozen=True)
class PointBatchFrame:
    """One epoch batch of stream points on the wire.

    Three parallel little-endian columns: ``rows`` (``<i8`` local or
    global stream rows), ``points`` (``(m, d)`` ``<f8`` coordinate
    matrix, one x/y/… column per dimension) and ``times`` (``<f8``
    report times).  The receiver scatters all three in one vectorized
    assignment.
    """

    rows: np.ndarray
    points: np.ndarray
    times: np.ndarray

    @property
    def dimension(self) -> int:
        return int(self.points.shape[1])

    def __len__(self) -> int:
        return len(self.rows)


def pack_points(rows, points, times, dimension: int) -> PointBatchFrame:
    """Frame a point batch as contiguous little-endian columns.

    ``rows``/``times`` may be any integer/float sequences; ``points`` is
    an ``(m, d)`` matrix (or any nested sequence coercible to one).
    Empty batches are legal and keep the declared *dimension* so the
    receiver can still validate shapes.
    """
    rows = _le_column(rows, _POINT_I8)
    if rows.ndim != 1:
        raise ValueError("rows must be a 1-D column")
    m = len(rows)
    points = _le_column(points, _POINT_F8, shape=(m, int(dimension)))
    times = _le_column(times, _POINT_F8, shape=(m,))
    return PointBatchFrame(rows=rows, points=points, times=times)


@dataclass(frozen=True)
class RegionBatchFrame:
    """One epoch batch of region constraints on the wire.

    ``kinds`` is a ``uint8`` code column (:data:`REGION_BOX` …);
    ``params`` is an ``(m, 2d)`` ``<f8`` matrix whose row layout depends
    on the kind — boxes store their constraint rect as ``lows ‖ highs``,
    balls store ``center ‖ radius`` (remaining columns zero), silencers
    store nothing.  Regions with no columnar encoding are pickled into
    ``blobs`` and referenced by index from ``params[row, 0]``, keeping
    the frame total over the region algebra without giving up the
    contiguous fast path for the common kinds.
    """

    dimension: int
    kinds: np.ndarray
    params: np.ndarray
    blobs: tuple[bytes, ...] = ()

    def __len__(self) -> int:
        return len(self.kinds)


def pack_regions(regions, dimension: int) -> RegionBatchFrame:
    """Encode an ordered region batch as a :class:`RegionBatchFrame`.

    Protocols deploy *shared* region objects (one silencer or query box
    across many streams), so encoding caches by object identity — each
    distinct object is analyzed once regardless of batch size.
    """
    dimension = int(dimension)
    regions = list(regions)
    m = len(regions)
    width = max(2 * dimension, dimension + 1, 1)
    kinds = np.zeros(m, dtype=np.uint8)
    params = np.zeros((m, width), dtype=_POINT_F8)
    blobs: list[bytes] = []
    encoded: dict[int, tuple[int, np.ndarray | None]] = {}
    blob_index: dict[int, int] = {}
    for i, region in enumerate(regions):
        key = id(region)
        cached = encoded.get(key)
        if cached is None:
            cached = _encode_region(region, dimension, blobs, blob_index)
            encoded[key] = cached
        kind, row = cached
        kinds[i] = kind
        if row is not None:
            params[i, : len(row)] = row
    return RegionBatchFrame(
        dimension=dimension, kinds=kinds, params=params, blobs=tuple(blobs)
    )


def _encode_region(
    region: Region,
    dimension: int,
    blobs: list[bytes],
    blob_index: dict[int, int],
) -> tuple[int, np.ndarray | None]:
    if region is ALL_SPACE:
        return REGION_ALL_SPACE, None
    if region is EMPTY_REGION:
        return REGION_EMPTY, None
    if type(region) is BoxRegion and len(region.lows) == dimension:
        return REGION_BOX, np.concatenate([region.lows, region.highs])
    if type(region) is BallRegion and len(region.center) == dimension:
        return REGION_BALL, np.append(region.center, region.radius)
    blob = pickle.dumps(region, protocol=pickle.HIGHEST_PROTOCOL)
    index = blob_index.get(id(region))
    if index is None:
        index = len(blobs)
        blobs.append(blob)
        blob_index[id(region)] = index
    return REGION_PICKLED, np.asarray([float(index)])


def unpack_regions(frame: RegionBatchFrame) -> list[Region]:
    """Decode a :class:`RegionBatchFrame` back into region objects.

    Rows with identical encodings decode to *one shared instance* —
    mirroring the sequential coordinator, where many streams hold a
    reference to the same deployed region object.  This keeps worker
    memory proportional to distinct constraints, not batch size.
    """
    d = int(frame.dimension)
    decoded: dict[tuple, Region] = {}
    out: list[Region] = []
    for i in range(len(frame.kinds)):
        kind = int(frame.kinds[i])
        if kind == REGION_ALL_SPACE:
            out.append(ALL_SPACE)
            continue
        if kind == REGION_EMPTY:
            out.append(EMPTY_REGION)
            continue
        if kind == REGION_BOX:
            key = (kind, frame.params[i, : 2 * d].tobytes())
        elif kind == REGION_BALL:
            key = (kind, frame.params[i, : d + 1].tobytes())
        elif kind == REGION_PICKLED:
            key = (kind, frame.blobs[int(frame.params[i, 0])])
        else:
            raise ValueError(f"unknown region kind code {kind}")
        region = decoded.get(key)
        if region is None:
            if kind == REGION_BOX:
                region = BoxRegion(
                    frame.params[i, :d].copy(),
                    frame.params[i, d : 2 * d].copy(),
                )
            elif kind == REGION_BALL:
                region = BallRegion(
                    frame.params[i, :d].copy(), float(frame.params[i, d])
                )
            else:
                region = pickle.loads(frame.blobs[int(frame.params[i, 0])])
            decoded[key] = region
        out.append(region)
    return out


@dataclass(frozen=True)
class PointInFlightFrame:
    """In-flight uplink entries with vector payloads on the wire.

    The spatial counterpart of a scalar
    :class:`~repro.network.frames.InFlightFrame` update frame: the
    ``delivery``/``seqs`` key columns ride alongside an embedded
    :class:`PointBatchFrame` whose ``rows``/``points``/``times``
    columns carry the stream row, point payload, and send-time stamp
    of each extracted entry.
    """

    delivery: np.ndarray
    seqs: np.ndarray
    batch: PointBatchFrame

    def __len__(self) -> int:
        return len(self.seqs)


def pack_point_in_flight(entries, dimension: int) -> PointInFlightFrame:
    """Frame extracted uplink entries ``[(delivery, seq, message)]``.

    Messages carry point payloads (:class:`PointUpdateMessage`);
    entries are framed in the order given, which the channel guarantees
    is ``(delivery, seq)`` heap order.
    """
    seqs = _le_column([seq for _, seq, _ in entries], _POINT_I8)
    m = len(seqs)
    return PointInFlightFrame(
        delivery=_le_column(
            [time for time, _, _ in entries], _POINT_F8, shape=(m,)
        ),
        seqs=seqs,
        batch=pack_points(
            [message.stream_id for _, _, message in entries],
            np.asarray(
                [message.point for _, _, message in entries], dtype=float
            ).reshape(m, int(dimension)),
            [message.time for _, _, message in entries],
            int(dimension),
        ),
    )


def unpack_point_in_flight(
    frame: PointInFlightFrame,
) -> list[tuple[float, int, int, float, np.ndarray]]:
    """Decode to ``(delivery, seq, stream, send_time, point)`` rows."""
    batch = frame.batch
    return [
        (
            float(frame.delivery[i]),
            int(frame.seqs[i]),
            int(batch.rows[i]),
            float(batch.times[i]),
            batch.points[i].copy(),
        )
        for i in range(len(frame))
    ]
