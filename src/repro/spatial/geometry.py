"""Regions: the multi-dimensional generalization of filter intervals.

A 1-D filter constraint ``[l, u]`` generalizes to a *region*; the
violation semantics — report iff membership flips — carry over verbatim.
Two degenerate regions generalize the shut-down filters: ``ALL_SPACE``
(everything inside; the false-positive silencer) and ``EMPTY_REGION``
(nothing inside; the false-negative silencer).

Every region can additionally describe itself as a pair of axis-aligned
*quiescence boxes* (:meth:`Region.quiescence_bboxes`): an inscribed
(inner) box fully contained in the region and a circumscribed (outer)
box fully containing it.  For rectangular regions both are the box
itself, so the columnar AABB test is *exact*; for balls and composites
they are conservative — the inner box is shrunk and the outer inflated
by :data:`BBOX_SAFETY` so floating-point round-off in the exact
``contains`` norm can never contradict a box-side claim.  These boxes
feed :meth:`repro.state.table.StreamStateTable.record_region_deploy`,
which is what lets the batched replay pre-scan and the sharded topology
treat region filters like scalar intervals.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np


#: Relative safety margin applied to conservative (non-exact) quiescence
#: boxes: inner boxes shrink and outer boxes inflate by this factor, so a
#: box-side claim survives the few-ulp error of the exact ``contains``
#: norm.  Exact boxes (rectangles) use no margin — their AABB test runs
#: the very comparisons ``contains`` runs.
BBOX_SAFETY = 1e-9

#: ``quiescence_bboxes`` return type: (inner_lo, inner_hi, outer_lo,
#: outer_hi), each a length-d vector.
QuiescenceBoxes = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def as_point(value) -> np.ndarray:
    """Coerce to a 1-D float vector."""
    point = np.asarray(value, dtype=np.float64)
    if point.ndim != 1:
        raise ValueError(f"a point must be a 1-D vector, got shape {point.shape}")
    return point


class Region(ABC):
    """An arbitrary-dimension filter region."""

    @abstractmethod
    def contains(self, point: np.ndarray) -> bool:
        """Closed-region membership of *point*."""

    @abstractmethod
    def boundary_distance(self, point: np.ndarray) -> float:
        """Distance from *point* to the region's boundary (>= 0).

        Small means "likely to cross soon" — the quantity the
        boundary-nearest silencer heuristic orders by.
        """

    @property
    def is_silencing(self) -> bool:
        """Whether membership can never flip for finite data."""
        return False

    def violated_by(self, last_reported: np.ndarray, current: np.ndarray) -> bool:
        """The Section 3.1 rule: membership of the two points differs."""
        return self.contains(last_reported) != self.contains(current)

    def quiescence_bboxes(self, dimension: int) -> QuiescenceBoxes | None:
        """Axis-aligned quiescence boxes, or ``None`` when unavailable.

        The contract is one-sided containment: every point inside the
        *inner* box is inside the region; every point outside the
        *outer* box is outside it.  ``None`` means this region cannot
        bound itself with boxes — its sources stay off the columnar
        pre-scan and dispatch per-event, which is always correct.
        """
        return None


class BoxRegion(Region):
    """An axis-aligned closed box ``[lows_i, highs_i]`` per dimension."""

    def __init__(self, lows, highs) -> None:
        self.lows = as_point(lows)
        self.highs = as_point(highs)
        if self.lows.shape != self.highs.shape:
            raise ValueError("lows and highs must share a dimension")
        if np.any(self.lows > self.highs):
            raise ValueError("every low must be <= its high")

    @property
    def dimension(self) -> int:
        return len(self.lows)

    def contains(self, point: np.ndarray) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(point >= self.lows) and np.all(point <= self.highs))

    def contains_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorized membership for an ``(n, d)`` array of points."""
        points = np.asarray(points, dtype=np.float64)
        return np.all(points >= self.lows, axis=1) & np.all(
            points <= self.highs, axis=1
        )

    def boundary_distance(self, point: np.ndarray) -> float:
        point = np.asarray(point, dtype=np.float64)
        if self.contains(point):
            # Nearest face: min slack over all dimensions.
            return float(
                np.min(np.minimum(point - self.lows, self.highs - point))
            )
        # Outside: Euclidean distance to the box.
        clamped = np.clip(point, self.lows, self.highs)
        return float(np.linalg.norm(point - clamped))

    def quiescence_bboxes(self, dimension: int) -> QuiescenceBoxes:
        """Exact: a box is its own inscribed and circumscribed bbox.

        The AABB test then performs the identical closed comparisons
        ``contains`` performs, so box-guarded streams are decided
        columnar-side with no conservative shell at all.
        """
        if int(dimension) != self.dimension:
            raise ValueError(
                f"region dimension {self.dimension} != table {dimension}"
            )
        return (
            self.lows.copy(),
            self.highs.copy(),
            self.lows.copy(),
            self.highs.copy(),
        )

    def __repr__(self) -> str:
        return f"BoxRegion({self.lows.tolist()}, {self.highs.tolist()})"


class BallRegion(Region):
    """A closed Euclidean ball — the k-NN bound ``R`` in d dimensions."""

    def __init__(self, center, radius: float) -> None:
        self.center = as_point(center)
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.radius = float(radius)

    @property
    def dimension(self) -> int:
        return len(self.center)

    def contains(self, point: np.ndarray) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(np.linalg.norm(point - self.center) <= self.radius)

    def contains_many(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        return np.linalg.norm(points - self.center, axis=1) <= self.radius

    def boundary_distance(self, point: np.ndarray) -> float:
        point = np.asarray(point, dtype=np.float64)
        return abs(float(np.linalg.norm(point - self.center)) - self.radius)

    def quiescence_bboxes(self, dimension: int) -> QuiescenceBoxes:
        """Conservative: inscribed cube shrunk, bounding box inflated.

        The inscribed cube has half-width ``r / sqrt(d)``; the bounding
        box half-width ``r``.  Both are pushed :data:`BBOX_SAFETY` of
        the radius toward the safe side so the few-ulp error of the
        exact Euclidean-norm ``contains`` can never disagree with a
        box-side verdict — the shell between the boxes simply falls
        back to exact per-event geometry.
        """
        if int(dimension) != self.dimension:
            raise ValueError(
                f"region dimension {self.dimension} != table {dimension}"
            )
        inner_half = self.radius / math.sqrt(self.dimension)
        inner_half *= 1.0 - BBOX_SAFETY
        outer_half = self.radius * (1.0 + BBOX_SAFETY)
        return (
            self.center - inner_half,
            self.center + inner_half,
            self.center - outer_half,
            self.center + outer_half,
        )

    def __repr__(self) -> str:
        return f"BallRegion(center={self.center.tolist()}, radius={self.radius})"


class UnionRegion(Region):
    """The union of several member regions — a composite filter.

    Membership is "inside any member"; the boundary distance is the
    minimum over members (a lower bound — tight when members are
    disjoint, conservative where they overlap, which only makes the
    boundary-nearest silencer heuristic more cautious).
    """

    def __init__(self, members) -> None:
        self.members: tuple[Region, ...] = tuple(members)
        if not self.members:
            raise ValueError("a union needs at least one member region")

    def contains(self, point: np.ndarray) -> bool:
        return any(member.contains(point) for member in self.members)

    def boundary_distance(self, point: np.ndarray) -> float:
        return min(
            member.boundary_distance(point) for member in self.members
        )

    def quiescence_bboxes(self, dimension: int) -> QuiescenceBoxes | None:
        """Conservative composite boxes.

        The union's outer box is the AABB hull of the members' outer
        boxes (outside all of them implies outside the union).  For the
        inner box any single member's inner box is valid — it is fully
        inside that member, hence inside the union — so the widest one
        (largest minimum extent) is chosen.  Any member without boxes
        makes the union unscannable.
        """
        boxes = [
            member.quiescence_bboxes(dimension) for member in self.members
        ]
        if any(box is None for box in boxes):
            return None
        inner_lo, inner_hi = max(
            ((lo, hi) for lo, hi, _, _ in boxes),
            key=lambda box: float(np.min(box[1] - box[0])),
        )
        outer_lo = np.min([lo for _, _, lo, _ in boxes], axis=0)
        outer_hi = np.max([hi for _, _, _, hi in boxes], axis=0)
        return (
            np.array(inner_lo, dtype=np.float64),
            np.array(inner_hi, dtype=np.float64),
            outer_lo,
            outer_hi,
        )

    def __repr__(self) -> str:
        return f"UnionRegion({list(self.members)!r})"


class _AllSpace(Region):
    """Everything is inside: the false-positive silencer region."""

    def contains(self, point: np.ndarray) -> bool:
        return True

    def boundary_distance(self, point: np.ndarray) -> float:
        return math.inf

    @property
    def is_silencing(self) -> bool:
        return True

    def quiescence_bboxes(self, dimension: int) -> QuiescenceBoxes:
        """Exact: the whole space is its own inscribed box, so every
        finite point is provably inside — silenced sources batch."""
        d = int(dimension)
        return (
            np.full(d, -math.inf),
            np.full(d, math.inf),
            np.full(d, -math.inf),
            np.full(d, math.inf),
        )

    def __repr__(self) -> str:
        return "ALL_SPACE"


class _EmptyRegion(Region):
    """Nothing is inside: the false-negative silencer region."""

    def contains(self, point: np.ndarray) -> bool:
        return False

    def boundary_distance(self, point: np.ndarray) -> float:
        return math.inf

    @property
    def is_silencing(self) -> bool:
        return True

    def quiescence_bboxes(self, dimension: int) -> QuiescenceBoxes:
        """Exact: both boxes are empty, so every finite point is
        provably outside — silenced sources batch."""
        d = int(dimension)
        return (
            np.full(d, math.inf),
            np.full(d, -math.inf),
            np.full(d, math.inf),
            np.full(d, -math.inf),
        )

    def __repr__(self) -> str:
        return "EMPTY_REGION"


ALL_SPACE = _AllSpace()
EMPTY_REGION = _EmptyRegion()
