"""Regions: the multi-dimensional generalization of filter intervals.

A 1-D filter constraint ``[l, u]`` generalizes to a *region*; the
violation semantics — report iff membership flips — carry over verbatim.
Two degenerate regions generalize the shut-down filters: ``ALL_SPACE``
(everything inside; the false-positive silencer) and ``EMPTY_REGION``
(nothing inside; the false-negative silencer).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np


def as_point(value) -> np.ndarray:
    """Coerce to a 1-D float vector."""
    point = np.asarray(value, dtype=np.float64)
    if point.ndim != 1:
        raise ValueError(f"a point must be a 1-D vector, got shape {point.shape}")
    return point


class Region(ABC):
    """An arbitrary-dimension filter region."""

    @abstractmethod
    def contains(self, point: np.ndarray) -> bool:
        """Closed-region membership of *point*."""

    @abstractmethod
    def boundary_distance(self, point: np.ndarray) -> float:
        """Distance from *point* to the region's boundary (>= 0).

        Small means "likely to cross soon" — the quantity the
        boundary-nearest silencer heuristic orders by.
        """

    @property
    def is_silencing(self) -> bool:
        """Whether membership can never flip for finite data."""
        return False

    def violated_by(self, last_reported: np.ndarray, current: np.ndarray) -> bool:
        """The Section 3.1 rule: membership of the two points differs."""
        return self.contains(last_reported) != self.contains(current)


class BoxRegion(Region):
    """An axis-aligned closed box ``[lows_i, highs_i]`` per dimension."""

    def __init__(self, lows, highs) -> None:
        self.lows = as_point(lows)
        self.highs = as_point(highs)
        if self.lows.shape != self.highs.shape:
            raise ValueError("lows and highs must share a dimension")
        if np.any(self.lows > self.highs):
            raise ValueError("every low must be <= its high")

    @property
    def dimension(self) -> int:
        return len(self.lows)

    def contains(self, point: np.ndarray) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(point >= self.lows) and np.all(point <= self.highs))

    def contains_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorized membership for an ``(n, d)`` array of points."""
        points = np.asarray(points, dtype=np.float64)
        return np.all(points >= self.lows, axis=1) & np.all(
            points <= self.highs, axis=1
        )

    def boundary_distance(self, point: np.ndarray) -> float:
        point = np.asarray(point, dtype=np.float64)
        if self.contains(point):
            # Nearest face: min slack over all dimensions.
            return float(
                np.min(np.minimum(point - self.lows, self.highs - point))
            )
        # Outside: Euclidean distance to the box.
        clamped = np.clip(point, self.lows, self.highs)
        return float(np.linalg.norm(point - clamped))

    def __repr__(self) -> str:
        return f"BoxRegion({self.lows.tolist()}, {self.highs.tolist()})"


class BallRegion(Region):
    """A closed Euclidean ball — the k-NN bound ``R`` in d dimensions."""

    def __init__(self, center, radius: float) -> None:
        self.center = as_point(center)
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.radius = float(radius)

    @property
    def dimension(self) -> int:
        return len(self.center)

    def contains(self, point: np.ndarray) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(np.linalg.norm(point - self.center) <= self.radius)

    def contains_many(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        return np.linalg.norm(points - self.center, axis=1) <= self.radius

    def boundary_distance(self, point: np.ndarray) -> float:
        point = np.asarray(point, dtype=np.float64)
        return abs(float(np.linalg.norm(point - self.center)) - self.radius)

    def __repr__(self) -> str:
        return f"BallRegion(center={self.center.tolist()}, radius={self.radius})"


class _AllSpace(Region):
    """Everything is inside: the false-positive silencer region."""

    def contains(self, point: np.ndarray) -> bool:
        return True

    def boundary_distance(self, point: np.ndarray) -> float:
        return math.inf

    @property
    def is_silencing(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "ALL_SPACE"


class _EmptyRegion(Region):
    """Nothing is inside: the false-negative silencer region."""

    def contains(self, point: np.ndarray) -> bool:
        return False

    def boundary_distance(self, point: np.ndarray) -> float:
        return math.inf

    @property
    def is_silencing(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "EMPTY_REGION"


ALL_SPACE = _AllSpace()
EMPTY_REGION = _EmptyRegion()
