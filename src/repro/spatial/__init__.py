"""Multi-dimensional extension of the filter protocols (Section 7).

The paper's protocols are presented in one dimension but "can be
extended to multiple dimensions": filter constraints become *regions*
(axis-aligned boxes for range queries, balls around the query point for
k-NN), and the violation rule is unchanged — a source reports exactly
when its point's membership in the deployed region flips.

This subpackage provides that extension end to end:

* :mod:`repro.spatial.geometry` — regions (box, ball, all-space and
  empty silencers) with containment and boundary-distance operations;
* :mod:`repro.spatial.queries` — box range queries and Euclidean k-NN;
* :mod:`repro.spatial.source` / :mod:`repro.spatial.trace` /
  :mod:`repro.spatial.workloads` — vector-valued sources and
  moving-object workloads;
* :mod:`repro.spatial.protocols` — spatial counterparts of ZT-NRP,
  FT-NRP, RTP, ZT-RP and FT-RP;
* :mod:`repro.spatial.runner` — the execution mechanism,
  :func:`~repro.spatial.runner.execute_spatial`, which the
  :class:`repro.api.Engine` compiles ``-2d`` specs onto (the deprecated
  :func:`~repro.spatial.runner.run_spatial_protocol` shim delegates to
  it).

The 1-D implementation in the parent package follows the paper line by
line; this package re-derives the same logic over regions so the 1-D
code stays textually faithful.
"""

from repro.spatial.geometry import (
    ALL_SPACE,
    EMPTY_REGION,
    BallRegion,
    BoxRegion,
    Region,
    UnionRegion,
)
from repro.spatial.queries import SpatialKnnQuery, SpatialRangeQuery
from repro.spatial.protocols import (
    SpatialFractionKnnProtocol,
    SpatialFractionRangeProtocol,
    SpatialNoFilterProtocol,
    SpatialRankToleranceProtocol,
    SpatialZeroKnnProtocol,
    SpatialZeroRangeProtocol,
)
from repro.spatial.runner import execute_spatial, run_spatial_protocol
from repro.spatial.trace import SpatialTrace
from repro.spatial.workloads import (
    MovingObjectsConfig,
    generate_moving_objects_trace,
)

__all__ = [
    "ALL_SPACE",
    "BallRegion",
    "BoxRegion",
    "EMPTY_REGION",
    "MovingObjectsConfig",
    "Region",
    "SpatialFractionKnnProtocol",
    "SpatialFractionRangeProtocol",
    "SpatialKnnQuery",
    "SpatialNoFilterProtocol",
    "SpatialRangeQuery",
    "SpatialRankToleranceProtocol",
    "SpatialTrace",
    "SpatialZeroKnnProtocol",
    "SpatialZeroRangeProtocol",
    "UnionRegion",
    "execute_spatial",
    "generate_moving_objects_trace",
    "run_spatial_protocol",
]
