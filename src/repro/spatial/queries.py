"""Entity-based queries over vector-valued streams."""

from __future__ import annotations

import numpy as np

from repro.spatial.geometry import BallRegion, BoxRegion, as_point


class SpatialRangeQuery:
    """A box range query: streams whose points fall in *box* qualify."""

    def __init__(self, box: BoxRegion) -> None:
        self.box = box

    @property
    def dimension(self) -> int:
        return self.box.dimension

    def matches(self, point: np.ndarray) -> bool:
        return self.box.contains(point)

    def true_answer(self, points: np.ndarray) -> frozenset[int]:
        """Exact answer given the ``(n, d)`` matrix of true points."""
        members = np.nonzero(self.box.contains_many(points))[0]
        return frozenset(int(i) for i in members)

    def boundary_distance(self, point: np.ndarray) -> float:
        return self.box.boundary_distance(point)

    @property
    def is_rank_based(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"SpatialRangeQuery({self.box!r})"


class SpatialKnnQuery:
    """Euclidean k-NN around a query point ``q`` in d dimensions."""

    def __init__(self, q, k: int) -> None:
        self.q = as_point(q)
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = int(k)

    @property
    def dimension(self) -> int:
        return len(self.q)

    def distance(self, point: np.ndarray) -> float:
        return float(np.linalg.norm(np.asarray(point, dtype=np.float64) - self.q))

    def distance_array(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        return np.linalg.norm(points - self.q, axis=1)

    def region(self, threshold: float) -> BallRegion:
        """The ball ``{p : |p - q| <= threshold}`` — the bound ``R``."""
        return BallRegion(self.q, threshold)

    def ranked_ids(self, points: np.ndarray) -> np.ndarray:
        """Ids sorted by (distance, id) — deterministic rank order."""
        return np.argsort(self.distance_array(points), kind="stable")

    def true_answer(self, points: np.ndarray) -> frozenset[int]:
        return frozenset(int(i) for i in self.ranked_ids(points)[: self.k])

    def rank_of(self, stream_id: int, points: np.ndarray) -> int:
        """1-based true rank with (distance, id) tie-breaking."""
        distances = self.distance_array(points)
        mine = distances[stream_id]
        closer = int(np.count_nonzero(distances < mine))
        tied_before = int(np.count_nonzero(distances[:stream_id] == mine))
        return closer + tied_before + 1

    @property
    def is_rank_based(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"SpatialKnnQuery(q={self.q.tolist()}, k={self.k})"
