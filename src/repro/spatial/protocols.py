"""Spatial (multi-dimensional) counterparts of the paper's protocols.

Each class re-derives its 1-D sibling over regions:

* interval ``[l, u]``            ->  :class:`~repro.spatial.geometry.BoxRegion`
* k-NN bound ``R = [q-d, q+d]``  ->  :class:`~repro.spatial.geometry.BallRegion`
* ``[-inf, +inf]`` silencer      ->  ``ALL_SPACE``
* ``[+inf, +inf]`` silencer      ->  ``EMPTY_REGION``

All correctness arguments carry over: they rest only on closed-region
membership and the (distance, id) total order, neither of which is
one-dimensional.  The FT-RP size-trigger tightening (see
``repro.protocols.ft_rp``) is applied here too.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.spatial.geometry import ALL_SPACE, EMPTY_REGION, Region
from repro.spatial.queries import SpatialKnnQuery, SpatialRangeQuery
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.knn_fraction import RhoPolicy, answer_size_bounds, derive_rho
from repro.tolerance.rank_tolerance import RankTolerance

if TYPE_CHECKING:
    from repro.spatial.server import SpatialServer


class SpatialProtocol(ABC):
    """Interface of all spatial protocols."""

    name: str = "abstract"

    @abstractmethod
    def initialize(self, server: "SpatialServer") -> None:
        """Initialization phase."""

    @abstractmethod
    def on_update(
        self, server: "SpatialServer", stream_id: int, point: np.ndarray, time: float
    ) -> None:
        """Maintenance phase."""

    @property
    @abstractmethod
    def answer(self) -> frozenset[int]:
        """The current answer set ``A(t)``."""


class SpatialNoFilterProtocol(SpatialProtocol):
    """Baseline: every movement is reported; answers are exact."""

    name = "no-filter-2d"

    def __init__(self, query: SpatialRangeQuery | SpatialKnnQuery) -> None:
        self.query = query
        self._points: np.ndarray | None = None

    def initialize(self, server: "SpatialServer") -> None:
        values = server.probe_all()
        dimension = len(next(iter(values.values())))
        self._points = np.zeros((len(values), dimension))
        for stream_id, point in values.items():
            self._points[stream_id] = point

    def on_update(self, server, stream_id, point, time) -> None:
        assert self._points is not None
        self._points[stream_id] = point

    @property
    def answer(self) -> frozenset[int]:
        if self._points is None:
            return frozenset()
        return self.query.true_answer(self._points)


class SpatialZeroRangeProtocol(SpatialProtocol):
    """ZT-NRP in d dimensions: deploy the query box everywhere."""

    name = "ZT-NRP-2d"

    def __init__(self, query: SpatialRangeQuery) -> None:
        self.query = query
        self._answer: set[int] = set()

    def initialize(self, server: "SpatialServer") -> None:
        values = server.probe_all()
        self._answer = {
            stream_id
            for stream_id, point in values.items()
            if self.query.matches(point)
        }
        for stream_id in server.stream_ids:
            server.deploy(stream_id, self.query.box)

    def on_update(self, server, stream_id, point, time) -> None:
        if self.query.matches(point):
            self._answer.add(stream_id)
        else:
            self._answer.discard(stream_id)

    @property
    def answer(self) -> frozenset[int]:
        return frozenset(self._answer)


class SpatialFractionRangeProtocol(SpatialProtocol):
    """FT-NRP in d dimensions (Figure 7 over a box).

    Silencer placement always uses the boundary-nearest ordering (its 1-D
    superiority, Figure 14, only sharpens in higher dimensions where the
    box boundary is larger).
    """

    name = "FT-NRP-2d"

    def __init__(
        self, query: SpatialRangeQuery, tolerance: FractionTolerance
    ) -> None:
        self.query = query
        self.tolerance = tolerance
        self._answer: set[int] = set()
        self._count = 0
        self._fp_pool: deque[int] = deque()
        self._fn_pool: deque[int] = deque()

    def initialize(self, server: "SpatialServer") -> None:
        values = server.probe_all()
        inside = {
            stream_id: point
            for stream_id, point in values.items()
            if self.query.matches(point)
        }
        outside = {
            stream_id: point
            for stream_id, point in values.items()
            if stream_id not in inside
        }
        self._answer = set(inside)
        self._count = 0

        n_plus = min(self.tolerance.emax_plus(len(inside)), len(inside))
        n_minus = min(self.tolerance.emax_minus(len(inside)), len(outside))
        fp_ids = self._nearest_boundary(inside, n_plus)
        fn_ids = self._nearest_boundary(outside, n_minus)
        self._fp_pool = deque(fp_ids)
        self._fn_pool = deque(fn_ids)

        fp_set, fn_set = set(fp_ids), set(fn_ids)
        for stream_id in values:
            if stream_id in fp_set:
                server.deploy(stream_id, ALL_SPACE)
            elif stream_id in fn_set:
                server.deploy(stream_id, EMPTY_REGION)
            else:
                server.deploy(stream_id, self.query.box)
        self._enforce_budgets(server)

    def _nearest_boundary(self, candidates: dict, count: int) -> list[int]:
        ordered = sorted(
            candidates,
            key=lambda i: (self.query.boundary_distance(candidates[i]), i),
        )
        return ordered[:count]

    def on_update(self, server, stream_id, point, time) -> None:
        if self.query.matches(point):
            self._answer.add(stream_id)
            self._count += 1
        else:
            self._answer.discard(stream_id)
            if self._count > 0:
                self._count -= 1
            else:
                self._fix_error(server)
            # Shrinking answers re-tighten the silencer budgets; see
            # repro.protocols.ft_nrp (second deviation).
            self._enforce_budgets(server)

    def _fix_error(self, server: "SpatialServer") -> None:
        if self._fp_pool:
            candidate = self._fp_pool.popleft()
            point = server.probe(candidate)
            if self.query.matches(point):
                server.deploy(candidate, self.query.box)
                return
            self._answer.discard(candidate)
            self._fn_pool.append(candidate)
        if self._fn_pool:
            candidate = self._fn_pool.popleft()
            point = server.probe(candidate)
            if self.query.matches(point):
                self._answer.add(candidate)
            server.deploy(candidate, self.query.box)

    def _fp_budget_ok(self) -> bool:
        return len(self._fp_pool) <= (
            self.tolerance.eps_plus * len(self._answer) + 1e-9
        )

    def _fn_budget_ok(self) -> bool:
        in_range_floor = len(self._answer) - len(self._fp_pool)
        return len(self._fn_pool) * (1.0 - self.tolerance.eps_minus) <= (
            self.tolerance.eps_minus * in_range_floor + 1e-9
        )

    def _enforce_budgets(self, server: "SpatialServer") -> None:
        while self._fp_pool and not self._fp_budget_ok():
            candidate = self._fp_pool.popleft()
            point = server.probe(candidate)
            if not self.query.matches(point):
                self._answer.discard(candidate)
            server.deploy(candidate, self.query.box)
        while self._fn_pool and not self._fn_budget_ok():
            candidate = self._fn_pool.popleft()
            point = server.probe(candidate)
            if self.query.matches(point):
                self._answer.add(candidate)
            server.deploy(candidate, self.query.box)

    @property
    def answer(self) -> frozenset[int]:
        return frozenset(self._answer)

    @property
    def n_plus(self) -> int:
        return len(self._fp_pool)

    @property
    def n_minus(self) -> int:
        return len(self._fn_pool)


class SpatialRankToleranceProtocol(SpatialProtocol):
    """RTP in d dimensions: the bound ``R`` is a ball around ``q``."""

    name = "RTP-2d"

    def __init__(
        self, query: SpatialKnnQuery, tolerance: RankTolerance
    ) -> None:
        if tolerance.k != query.k:
            raise ValueError(
                f"tolerance k={tolerance.k} does not match query k={query.k}"
            )
        self.query = query
        self.tolerance = tolerance
        self._answer: set[int] = set()
        self._x: set[int] = set()
        self._known: dict[int, np.ndarray] = {}
        self._region: Region | None = None
        self.reinitializations = 0
        self.expansions = 0

    @property
    def eps(self) -> int:
        return self.tolerance.eps

    def _distance(self, point: np.ndarray) -> float:
        return self.query.distance(point)

    def _ranked_known(self) -> list[int]:
        return sorted(
            self._known, key=lambda i: (self._distance(self._known[i]), i)
        )

    def initialize(self, server: "SpatialServer") -> None:
        if server.n_streams <= self.eps:
            raise ValueError(
                f"RTP needs more than eps = {self.eps} streams"
            )
        self._known = server.probe_all()
        order = self._ranked_known()
        self._answer = set(order[: self.query.k])
        self._x = set(order[: self.eps])
        self._deploy_bound(server, fresh_ids=set(self._known))

    def _deploy_bound(self, server: "SpatialServer", fresh_ids: set[int]) -> None:
        order = self._ranked_known()
        inside = [i for i in order if i in self._x]
        outside = [i for i in order if i not in self._x]
        d_inside = self._distance(self._known[inside[-1]])
        d_outside = self._distance(self._known[outside[0]])
        threshold = (d_inside + max(d_outside, d_inside)) / 2.0
        self._region = self.query.region(threshold)
        for stream_id in server.stream_ids:
            if stream_id in fresh_ids:
                server.deploy(stream_id, self._region)
            else:
                server.deploy(
                    stream_id,
                    self._region,
                    assumed_inside=stream_id in self._x,
                )

    def on_update(self, server, stream_id, point, time) -> None:
        self._known[stream_id] = np.asarray(point, dtype=np.float64)
        assert self._region is not None
        if not self._region.contains(point):
            if stream_id in self._answer:
                self._case_leaves_answer(server, stream_id)
            else:
                self._x.discard(stream_id)
        else:
            if stream_id not in self._x:
                self._case_enters(server, stream_id)

    def _case_leaves_answer(self, server, stream_id) -> None:
        self._answer.discard(stream_id)
        self._x.discard(stream_id)
        replacements = self._x - self._answer
        if replacements:
            best = min(
                replacements,
                key=lambda i: (self._distance(self._known[i]), i),
            )
            self._answer.add(best)
            return
        if self._expand_search(server):
            return
        self.reinitializations += 1
        self.initialize(server)

    def _expand_search(self, server) -> bool:
        self.expansions += 1
        candidates = [i for i in self._ranked_known() if i not in self._answer]
        probed: dict[int, np.ndarray] = {}
        for candidate in candidates:
            probed[candidate] = server.probe(candidate)
            self._known[candidate] = probed[candidate]
            radius = self._distance(probed[candidate])
            u_set = {
                i for i, p in probed.items() if self._distance(p) <= radius
            }
            if len(u_set) >= 2:
                ranked_u = sorted(
                    u_set, key=lambda i: (self._distance(probed[i]), i)
                )
                self._answer.add(ranked_u[0])
                keep = ranked_u[: self.tolerance.r + 1]
                self._x = set(self._answer) | set(keep)
                self._deploy_bound(server, fresh_ids=set(probed))
                return True
        return False

    def _case_enters(self, server, stream_id) -> None:
        if len(self._x) < self.eps:
            self._x.add(stream_id)
            return
        fresh = {stream_id: self._known[stream_id]}
        for member in sorted(self._x):
            fresh[member] = server.probe(member)
            self._known[member] = fresh[member]
        self._x.add(stream_id)
        ranked = sorted(
            self._x, key=lambda i: (self._distance(self._known[i]), i)
        )
        self._answer = set(ranked[: self.query.k])
        self._x = set(ranked[: self.eps])
        self._deploy_bound(server, fresh_ids=set(fresh))

    @property
    def answer(self) -> frozenset[int]:
        return frozenset(self._answer)

    @property
    def tracked(self) -> frozenset[int]:
        return frozenset(self._x)

    @property
    def region(self) -> Region | None:
        return self._region


class SpatialZeroKnnProtocol(SpatialProtocol):
    """ZT-RP in d dimensions: recompute the ball on every crossing."""

    name = "ZT-RP-2d"

    def __init__(self, query: SpatialKnnQuery) -> None:
        self.query = query
        self._answer: set[int] = set()
        self._known: dict[int, np.ndarray] = {}
        self._region: Region | None = None
        self.recomputations = 0

    def initialize(self, server: "SpatialServer") -> None:
        if server.n_streams <= self.query.k:
            raise ValueError(
                f"ZT-RP needs more than k = {self.query.k} streams"
            )
        self._known = server.probe_all()
        self._resolve(server)

    def _resolve(self, server) -> None:
        order = sorted(
            self._known,
            key=lambda i: (self.query.distance(self._known[i]), i),
        )
        k = self.query.k
        self._answer = set(order[:k])
        d_in = self.query.distance(self._known[order[k - 1]])
        d_out = self.query.distance(self._known[order[k]])
        self._region = self.query.region((d_in + d_out) / 2.0)
        for stream_id in server.stream_ids:
            server.deploy(stream_id, self._region)

    def on_update(self, server, stream_id, point, time) -> None:
        self._known[stream_id] = np.asarray(point, dtype=np.float64)
        self.recomputations += 1
        others = [i for i in server.stream_ids if i != stream_id]
        self._known.update(server.probe_all(others))
        self._resolve(server)

    @property
    def answer(self) -> frozenset[int]:
        return frozenset(self._answer)

    @property
    def region(self) -> Region | None:
        return self._region


class SpatialFractionKnnProtocol(SpatialProtocol):
    """FT-RP in d dimensions, with the tightened size triggers."""

    name = "FT-RP-2d"

    def __init__(
        self,
        query: SpatialKnnQuery,
        tolerance: FractionTolerance,
        policy: RhoPolicy = RhoPolicy.BALANCED,
    ) -> None:
        self.query = query
        self.tolerance = tolerance
        self.policy = policy
        self.rho_plus, self.rho_minus = derive_rho(tolerance, policy)
        self.size_min, self.size_max = answer_size_bounds(query.k, tolerance)
        self._answer: set[int] = set()
        self._count = 0
        self._fp_pool: deque[int] = deque()
        self._fn_pool: deque[int] = deque()
        self._region: Region | None = None
        self.recomputations = 0

    def initialize(self, server: "SpatialServer") -> None:
        if server.n_streams <= self.query.k:
            raise ValueError(
                f"FT-RP needs more than k = {self.query.k} streams"
            )
        self._resolve(server, server.probe_all())

    def _resolve(self, server, values: dict[int, np.ndarray]) -> None:
        k = self.query.k
        order = sorted(
            values, key=lambda i: (self.query.distance(values[i]), i)
        )
        self._answer = set(order[:k])
        self._count = 0
        d_in = self.query.distance(values[order[k - 1]])
        d_out = self.query.distance(values[order[k]])
        self._region = self.query.region((d_in + d_out) / 2.0)

        inside = {i: values[i] for i in order[:k]}
        outside = {i: values[i] for i in order[k:]}
        n_fp = min(math.floor(k * self.rho_plus + 1e-9), len(inside))
        n_fn = min(math.floor(k * self.rho_minus + 1e-9), len(outside))
        fp_ids = self._nearest_boundary(inside, n_fp)
        fn_ids = self._nearest_boundary(outside, n_fn)
        self._fp_pool = deque(fp_ids)
        self._fn_pool = deque(fn_ids)

        fp_set, fn_set = set(fp_ids), set(fn_ids)
        for stream_id in values:
            if stream_id in fp_set:
                server.deploy(stream_id, ALL_SPACE)
            elif stream_id in fn_set:
                server.deploy(stream_id, EMPTY_REGION)
            else:
                server.deploy(stream_id, self._region)

    def _nearest_boundary(self, candidates: dict, count: int) -> list[int]:
        assert self._region is not None
        ordered = sorted(
            candidates,
            key=lambda i: (self._region.boundary_distance(candidates[i]), i),
        )
        return ordered[:count]

    @property
    def effective_size_max(self) -> int:
        budget = self.query.k - len(self._fn_pool)
        return math.floor(budget / (1.0 - self.tolerance.eps_plus) + 1e-9)

    @property
    def effective_size_min(self) -> int:
        base = math.ceil(
            self.query.k * (1.0 - self.tolerance.eps_minus) - 1e-9
        )
        return base + len(self._fp_pool) + len(self._fn_pool)

    def _bounds_violated(self) -> bool:
        size = len(self._answer)
        return size > self.effective_size_max or size < self.effective_size_min

    def on_update(self, server, stream_id, point, time) -> None:
        assert self._region is not None
        if self._region.contains(point):
            self._answer.add(stream_id)
            if self._bounds_violated():
                self._recompute(server)
                return
            self._count += 1
        else:
            self._answer.discard(stream_id)
            if self._bounds_violated():
                self._recompute(server)
                return
            if self._count > 0:
                self._count -= 1
            else:
                self._fix_error(server)
                if self._bounds_violated():
                    self._recompute(server)

    def _recompute(self, server) -> None:
        self.recomputations += 1
        self._resolve(server, server.probe_all())

    def _fix_error(self, server) -> None:
        assert self._region is not None
        if self._fp_pool:
            candidate = self._fp_pool.popleft()
            point = server.probe(candidate)
            if self._region.contains(point):
                server.deploy(candidate, self._region)
                return
            self._answer.discard(candidate)
            self._fn_pool.append(candidate)
        if self._fn_pool:
            candidate = self._fn_pool.popleft()
            point = server.probe(candidate)
            if self._region.contains(point):
                self._answer.add(candidate)
            server.deploy(candidate, self._region)

    @property
    def answer(self) -> frozenset[int]:
        return frozenset(self._answer)

    @property
    def region(self) -> Region | None:
        return self._region

    @property
    def n_plus(self) -> int:
        return len(self._fp_pool)

    @property
    def n_minus(self) -> int:
        return len(self._fn_pool)
