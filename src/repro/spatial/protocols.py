"""Spatial (multi-dimensional) counterparts of the paper's protocols.

Each class re-derives its 1-D sibling over regions:

* interval ``[l, u]``            ->  :class:`~repro.spatial.geometry.BoxRegion`
* k-NN bound ``R = [q-d, q+d]``  ->  :class:`~repro.spatial.geometry.BallRegion`
* ``[-inf, +inf]`` silencer      ->  ``ALL_SPACE``
* ``[+inf, +inf]`` silencer      ->  ``EMPTY_REGION``

All correctness arguments carry over: they rest only on closed-region
membership and the (distance, id) total order, neither of which is
one-dimensional.  The FT-RP size-trigger tightening (see
``repro.protocols.ft_rp``) is applied here too.

Server-side state lives in the shared :class:`~repro.state.table.
StreamStateTable` owned by the :class:`~repro.spatial.server.
SpatialServer` — the point matrix is its payload column, answers and
``X(t)`` are its membership masks, silencer pools mirror into its flag
column, and rank order is maintained by a :class:`~repro.state.rank.
RankView`.  The rank key is computed per element with the query's scalar
``distance`` (not a vectorized norm) so the (distance, id) order is
bitwise-identical to the legacy ``sorted()`` order.

Every region these protocols deploy (query boxes, k-NN bound balls, and
the two silencers) registers its axis-aligned quiescence boxes in the
table's geometric plane via the sources' bound
:class:`~repro.runtime.membership.RegionMembership`, so the batched
replay pre-scan and the sharded topology serve the spatial stack
exactly as they serve the scalar one: protocols obtain their rank order
through ``server.rank_view(...)`` (a plain :class:`RankView` on one
server, a :class:`~repro.state.sharding.ShardedRankView` k-way merge on
:class:`~repro.server.sharded.ShardedSpatialServer`) and never assume a
topology.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.spatial.geometry import ALL_SPACE, EMPTY_REGION, Region
from repro.spatial.queries import SpatialKnnQuery, SpatialRangeQuery
from repro.state.pools import SilencerPools
from repro.state.rank import RankView
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.knn_fraction import RhoPolicy, answer_size_bounds, derive_rho
from repro.tolerance.rank_tolerance import RankTolerance

if TYPE_CHECKING:
    from repro.spatial.server import SpatialServer
    from repro.state.table import StreamStateTable


def _elementwise_distance_keys(query):
    """A RankView key function that applies ``query.distance`` per row.

    Vectorized norms (``np.linalg.norm(..., axis=1)``) may differ from the
    per-point norm by an ulp (BLAS dot vs. pairwise reduce), which could
    reorder near-ties against the legacy python ``sorted()`` — so rank
    maintenance keys exactly the scalar ``distance`` the protocols use.
    """

    def keys(points: np.ndarray) -> np.ndarray:
        return np.fromiter(
            (query.distance(p) for p in points),
            dtype=np.float64,
            count=len(points),
        )

    return keys


class SpatialProtocol(ABC):
    """Interface of all spatial protocols."""

    name: str = "abstract"

    @abstractmethod
    def initialize(self, server: "SpatialServer") -> None:
        """Initialization phase."""

    @abstractmethod
    def on_update(
        self, server: "SpatialServer", stream_id: int, point: np.ndarray, time: float
    ) -> None:
        """Maintenance phase."""

    @property
    @abstractmethod
    def answer(self) -> frozenset[int]:
        """The current answer set ``A(t)``."""


class SpatialNoFilterProtocol(SpatialProtocol):
    """Baseline: every movement is reported; answers are exact."""

    name = "no-filter-2d"

    def __init__(self, query: SpatialRangeQuery | SpatialKnnQuery) -> None:
        self.query = query
        self._state: "StreamStateTable | None" = None

    def initialize(self, server: "SpatialServer") -> None:
        self._state = server.state
        server.probe_all()

    def on_update(self, server, stream_id, point, time) -> None:
        # The server already refreshed the point column.
        assert self._state is not None

    @property
    def answer(self) -> frozenset[int]:
        if self._state is None or self._state.points is None:
            return frozenset()
        return self.query.true_answer(self._state.points)


class SpatialZeroRangeProtocol(SpatialProtocol):
    """ZT-NRP in d dimensions: deploy the query box everywhere."""

    name = "ZT-NRP-2d"

    def __init__(self, query: SpatialRangeQuery) -> None:
        self.query = query
        self._state: "StreamStateTable | None" = None

    def initialize(self, server: "SpatialServer") -> None:
        state = self._state = server.state
        values = server.probe_all()
        state.answer_replace(
            stream_id
            for stream_id, point in values.items()
            if self.query.matches(point)
        )
        for stream_id in server.stream_ids:
            server.deploy(stream_id, self.query.box)

    def on_update(self, server, stream_id, point, time) -> None:
        assert self._state is not None
        if self.query.matches(point):
            self._state.answer_add(stream_id)
        else:
            self._state.answer_discard(stream_id)

    @property
    def answer(self) -> frozenset[int]:
        if self._state is None:
            return frozenset()
        return self._state.answer_snapshot()


class SpatialFractionRangeProtocol(SpatialProtocol):
    """FT-NRP in d dimensions (Figure 7 over a box).

    Silencer placement always uses the boundary-nearest ordering (its 1-D
    superiority, Figure 14, only sharpens in higher dimensions where the
    box boundary is larger).
    """

    name = "FT-NRP-2d"

    def __init__(
        self, query: SpatialRangeQuery, tolerance: FractionTolerance
    ) -> None:
        self.query = query
        self.tolerance = tolerance
        self._state: "StreamStateTable | None" = None
        self._pools = SilencerPools()
        self._count = 0

    def initialize(self, server: "SpatialServer") -> None:
        if self._state is not server.state:
            self._state = server.state
            self._pools.bind(self._state)
        values = server.probe_all()
        inside = {
            stream_id: point
            for stream_id, point in values.items()
            if self.query.matches(point)
        }
        outside = {
            stream_id: point
            for stream_id, point in values.items()
            if stream_id not in inside
        }
        self._state.answer_replace(inside)
        self._count = 0

        n_plus = min(self.tolerance.emax_plus(len(inside)), len(inside))
        n_minus = min(self.tolerance.emax_minus(len(inside)), len(outside))
        fp_ids = self._nearest_boundary(inside, n_plus)
        fn_ids = self._nearest_boundary(outside, n_minus)
        self._pools.reset(fp_ids, fn_ids)

        fp_set, fn_set = set(fp_ids), set(fn_ids)
        for stream_id in values:
            if stream_id in fp_set:
                server.deploy(stream_id, ALL_SPACE)
            elif stream_id in fn_set:
                server.deploy(stream_id, EMPTY_REGION)
            else:
                server.deploy(stream_id, self.query.box)
        self._enforce_budgets(server)

    def _nearest_boundary(self, candidates: dict, count: int) -> list[int]:
        ordered = sorted(
            candidates,
            key=lambda i: (self.query.boundary_distance(candidates[i]), i),
        )
        return ordered[:count]

    def on_update(self, server, stream_id, point, time) -> None:
        assert self._state is not None
        if self.query.matches(point):
            self._state.answer_add(stream_id)
            self._count += 1
        else:
            self._state.answer_discard(stream_id)
            if self._count > 0:
                self._count -= 1
            else:
                self._fix_error(server)
            # Shrinking answers re-tighten the silencer budgets; see
            # repro.protocols.ft_nrp (second deviation).
            self._enforce_budgets(server)

    def _fix_error(self, server: "SpatialServer") -> None:
        assert self._state is not None
        if self._pools.fp:
            candidate = self._pools.pop_fp()
            point = server.probe(candidate)
            if self.query.matches(point):
                server.deploy(candidate, self.query.box)
                return
            self._state.answer_discard(candidate)
            self._pools.push_fn(candidate)
        if self._pools.fn:
            candidate = self._pools.pop_fn()
            point = server.probe(candidate)
            if self.query.matches(point):
                self._state.answer_add(candidate)
            server.deploy(candidate, self.query.box)

    def _fp_budget_ok(self) -> bool:
        assert self._state is not None
        return self._pools.n_plus <= (
            self.tolerance.eps_plus * self._state.answer_size + 1e-9
        )

    def _fn_budget_ok(self) -> bool:
        assert self._state is not None
        in_range_floor = self._state.answer_size - self._pools.n_plus
        return self._pools.n_minus * (1.0 - self.tolerance.eps_minus) <= (
            self.tolerance.eps_minus * in_range_floor + 1e-9
        )

    def _enforce_budgets(self, server: "SpatialServer") -> None:
        assert self._state is not None
        while self._pools.fp and not self._fp_budget_ok():
            candidate = self._pools.pop_fp()
            point = server.probe(candidate)
            if not self.query.matches(point):
                self._state.answer_discard(candidate)
            server.deploy(candidate, self.query.box)
        while self._pools.fn and not self._fn_budget_ok():
            candidate = self._pools.pop_fn()
            point = server.probe(candidate)
            if self.query.matches(point):
                self._state.answer_add(candidate)
            server.deploy(candidate, self.query.box)

    @property
    def answer(self) -> frozenset[int]:
        if self._state is None:
            return frozenset()
        return self._state.answer_snapshot()

    @property
    def n_plus(self) -> int:
        return self._pools.n_plus

    @property
    def n_minus(self) -> int:
        return self._pools.n_minus

    @property
    def _fp_pool(self) -> deque[int]:
        return self._pools.fp

    @property
    def _fn_pool(self) -> deque[int]:
        return self._pools.fn


class SpatialRankToleranceProtocol(SpatialProtocol):
    """RTP in d dimensions: the bound ``R`` is a ball around ``q``."""

    name = "RTP-2d"

    def __init__(
        self, query: SpatialKnnQuery, tolerance: RankTolerance
    ) -> None:
        if tolerance.k != query.k:
            raise ValueError(
                f"tolerance k={tolerance.k} does not match query k={query.k}"
            )
        self.query = query
        self.tolerance = tolerance
        self._state: "StreamStateTable | None" = None
        self._rank: RankView | None = None
        self._region: Region | None = None
        self.reinitializations = 0
        self.expansions = 0

    @property
    def eps(self) -> int:
        return self.tolerance.eps

    def _distance(self, point: np.ndarray) -> float:
        return self.query.distance(point)

    def _known_point(self, stream_id: int) -> np.ndarray:
        assert self._state is not None and self._state.points is not None
        return self._state.points[stream_id]

    def _ranked_known(self) -> list[int]:
        assert self._rank is not None
        return self._rank.order()

    def initialize(self, server: "SpatialServer") -> None:
        if server.n_streams <= self.eps:
            raise ValueError(
                f"RTP needs more than eps = {self.eps} streams"
            )
        if self._state is not server.state:
            self._state = server.state
            self._rank = server.rank_view(
                _elementwise_distance_keys(self.query)
            )
        server.probe_all()
        order = self._ranked_known()
        self._state.answer_replace(order[: self.query.k])
        self._state.tracked_replace(order[: self.eps])
        self._deploy_bound(server, fresh_ids=set(server.stream_ids))

    def _deploy_bound(self, server: "SpatialServer", fresh_ids: set[int]) -> None:
        assert self._state is not None
        order = self._ranked_known()
        tracked = self._state.tracked_mask
        inside = [i for i in order if tracked[i]]
        outside = [i for i in order if not tracked[i]]
        d_inside = self._distance(self._known_point(inside[-1]))
        d_outside = self._distance(self._known_point(outside[0]))
        threshold = (d_inside + max(d_outside, d_inside)) / 2.0
        self._region = self.query.region(threshold)
        for stream_id in server.stream_ids:
            if stream_id in fresh_ids:
                server.deploy(stream_id, self._region)
            else:
                server.deploy(
                    stream_id,
                    self._region,
                    assumed_inside=bool(tracked[stream_id]),
                )

    def on_update(self, server, stream_id, point, time) -> None:
        assert self._region is not None and self._state is not None
        if not self._region.contains(point):
            if self._state.answer_contains(stream_id):
                self._case_leaves_answer(server, stream_id)
            else:
                self._state.tracked_discard(stream_id)
        else:
            if not self._state.tracked_contains(stream_id):
                self._case_enters(server, stream_id)

    def _case_leaves_answer(self, server, stream_id) -> None:
        assert self._state is not None
        self._state.answer_discard(stream_id)
        self._state.tracked_discard(stream_id)
        replacements = self._state.tracked_not_in_answer()
        if replacements.size:
            best = min(
                (int(i) for i in replacements),
                key=lambda i: (self._distance(self._known_point(i)), i),
            )
            self._state.answer_add(best)
            return
        if self._expand_search(server):
            return
        self.reinitializations += 1
        self.initialize(server)

    def _expand_search(self, server) -> bool:
        assert self._state is not None
        self.expansions += 1
        candidates = [
            i
            for i in self._ranked_known()
            if not self._state.answer_contains(i)
        ]
        probed: dict[int, np.ndarray] = {}
        for candidate in candidates:
            probed[candidate] = server.probe(candidate)
            radius = self._distance(probed[candidate])
            u_set = {
                i for i, p in probed.items() if self._distance(p) <= radius
            }
            if len(u_set) >= 2:
                ranked_u = sorted(
                    u_set, key=lambda i: (self._distance(probed[i]), i)
                )
                self._state.answer_add(ranked_u[0])
                keep = ranked_u[: self.tolerance.r + 1]
                self._state.tracked_replace(
                    set(self._state.answer_snapshot()) | set(keep)
                )
                self._deploy_bound(server, fresh_ids=set(probed))
                return True
        return False

    def _case_enters(self, server, stream_id) -> None:
        assert self._state is not None
        if self._state.tracked_size < self.eps:
            self._state.tracked_add(stream_id)
            return
        members = [int(i) for i in self._state.tracked_ids()]
        fresh_ids = {stream_id}
        for member in members:
            server.probe(member)
            fresh_ids.add(member)
        pool = members + [stream_id]
        ranked = sorted(
            pool, key=lambda i: (self._distance(self._known_point(i)), i)
        )
        self._state.answer_replace(ranked[: self.query.k])
        self._state.tracked_replace(ranked[: self.eps])
        self._deploy_bound(server, fresh_ids=fresh_ids)

    @property
    def answer(self) -> frozenset[int]:
        if self._state is None:
            return frozenset()
        return self._state.answer_snapshot()

    @property
    def tracked(self) -> frozenset[int]:
        if self._state is None:
            return frozenset()
        return self._state.tracked_snapshot()

    @property
    def region(self) -> Region | None:
        return self._region


class SpatialZeroKnnProtocol(SpatialProtocol):
    """ZT-RP in d dimensions: recompute the ball on every crossing."""

    name = "ZT-RP-2d"

    def __init__(self, query: SpatialKnnQuery) -> None:
        self.query = query
        self._state: "StreamStateTable | None" = None
        self._rank: RankView | None = None
        self._region: Region | None = None
        self.recomputations = 0

    def initialize(self, server: "SpatialServer") -> None:
        if server.n_streams <= self.query.k:
            raise ValueError(
                f"ZT-RP needs more than k = {self.query.k} streams"
            )
        if self._state is not server.state:
            self._state = server.state
            self._rank = server.rank_view(
                _elementwise_distance_keys(self.query)
            )
        server.probe_all()
        self._resolve(server)

    def _resolve(self, server) -> None:
        assert self._state is not None and self._rank is not None
        k = self.query.k
        leaders = self._rank.leaders(k + 1)
        self._state.answer_replace(leaders[:k])
        d_in = self.query.distance(self._state.points[leaders[k - 1]])
        d_out = self.query.distance(self._state.points[leaders[k]])
        self._region = self.query.region((d_in + d_out) / 2.0)
        for stream_id in server.stream_ids:
            server.deploy(stream_id, self._region)

    def on_update(self, server, stream_id, point, time) -> None:
        self.recomputations += 1
        others = [i for i in server.stream_ids if i != stream_id]
        server.probe_all(others)
        self._resolve(server)

    @property
    def answer(self) -> frozenset[int]:
        if self._state is None:
            return frozenset()
        return self._state.answer_snapshot()

    @property
    def region(self) -> Region | None:
        return self._region


class SpatialFractionKnnProtocol(SpatialProtocol):
    """FT-RP in d dimensions, with the tightened size triggers."""

    name = "FT-RP-2d"

    def __init__(
        self,
        query: SpatialKnnQuery,
        tolerance: FractionTolerance,
        policy: RhoPolicy = RhoPolicy.BALANCED,
    ) -> None:
        self.query = query
        self.tolerance = tolerance
        self.policy = policy
        self.rho_plus, self.rho_minus = derive_rho(tolerance, policy)
        self.size_min, self.size_max = answer_size_bounds(query.k, tolerance)
        self._state: "StreamStateTable | None" = None
        self._rank: RankView | None = None
        self._pools = SilencerPools()
        self._count = 0
        self._region: Region | None = None
        self.recomputations = 0

    def initialize(self, server: "SpatialServer") -> None:
        if server.n_streams <= self.query.k:
            raise ValueError(
                f"FT-RP needs more than k = {self.query.k} streams"
            )
        if self._state is not server.state:
            self._state = server.state
            self._rank = server.rank_view(
                _elementwise_distance_keys(self.query)
            )
            self._pools.bind(self._state)
        server.probe_all()
        self._resolve(server)

    def _resolve(self, server) -> None:
        assert self._state is not None and self._rank is not None
        state, k = self._state, self.query.k
        leaders = self._rank.leaders(k + 1)
        top = leaders[:k]
        state.answer_replace(top)
        self._count = 0
        points = state.points
        d_in = self.query.distance(points[leaders[k - 1]])
        d_out = self.query.distance(points[leaders[k]])
        self._region = self.query.region((d_in + d_out) / 2.0)

        inside = {i: points[i] for i in top}
        outside_mask = state.known.copy()
        outside_mask[top] = False
        outside = {
            int(i): points[i] for i in np.nonzero(outside_mask)[0]
        }
        n_fp = min(math.floor(k * self.rho_plus + 1e-9), len(inside))
        n_fn = min(math.floor(k * self.rho_minus + 1e-9), len(outside))
        fp_ids = self._nearest_boundary(inside, n_fp)
        fn_ids = self._nearest_boundary(outside, n_fn)
        self._pools.reset(fp_ids, fn_ids)

        fp_set, fn_set = set(fp_ids), set(fn_ids)
        for stream_id in server.stream_ids:
            if stream_id in fp_set:
                server.deploy(stream_id, ALL_SPACE)
            elif stream_id in fn_set:
                server.deploy(stream_id, EMPTY_REGION)
            else:
                server.deploy(stream_id, self._region)

    def _nearest_boundary(self, candidates: dict, count: int) -> list[int]:
        assert self._region is not None
        ordered = sorted(
            candidates,
            key=lambda i: (self._region.boundary_distance(candidates[i]), i),
        )
        return ordered[:count]

    @property
    def effective_size_max(self) -> int:
        budget = self.query.k - self._pools.n_minus
        return math.floor(budget / (1.0 - self.tolerance.eps_plus) + 1e-9)

    @property
    def effective_size_min(self) -> int:
        base = math.ceil(
            self.query.k * (1.0 - self.tolerance.eps_minus) - 1e-9
        )
        return base + self._pools.n_plus + self._pools.n_minus

    def _bounds_violated(self) -> bool:
        assert self._state is not None
        size = self._state.answer_size
        return size > self.effective_size_max or size < self.effective_size_min

    def on_update(self, server, stream_id, point, time) -> None:
        assert self._region is not None and self._state is not None
        if self._region.contains(point):
            self._state.answer_add(stream_id)
            if self._bounds_violated():
                self._recompute(server)
                return
            self._count += 1
        else:
            self._state.answer_discard(stream_id)
            if self._bounds_violated():
                self._recompute(server)
                return
            if self._count > 0:
                self._count -= 1
            else:
                self._fix_error(server)
                if self._bounds_violated():
                    self._recompute(server)

    def _recompute(self, server) -> None:
        self.recomputations += 1
        server.probe_all()
        self._resolve(server)

    def _fix_error(self, server) -> None:
        assert self._region is not None and self._state is not None
        if self._pools.fp:
            candidate = self._pools.pop_fp()
            point = server.probe(candidate)
            if self._region.contains(point):
                server.deploy(candidate, self._region)
                return
            self._state.answer_discard(candidate)
            self._pools.push_fn(candidate)
        if self._pools.fn:
            candidate = self._pools.pop_fn()
            point = server.probe(candidate)
            if self._region.contains(point):
                self._state.answer_add(candidate)
            server.deploy(candidate, self._region)

    @property
    def answer(self) -> frozenset[int]:
        if self._state is None:
            return frozenset()
        return self._state.answer_snapshot()

    @property
    def region(self) -> Region | None:
        return self._region

    @property
    def n_plus(self) -> int:
        return self._pools.n_plus

    @property
    def n_minus(self) -> int:
        return self._pools.n_minus

    @property
    def _fp_pool(self) -> deque[int]:
        return self._pools.fp

    @property
    def _fn_pool(self) -> deque[int]:
        return self._pools.fn
