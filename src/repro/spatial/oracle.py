"""Ground truth for vector-valued streams."""

from __future__ import annotations

import numpy as np

from repro.spatial.queries import SpatialKnnQuery, SpatialRangeQuery


class SpatialOracle:
    """Tracks the true point of every stream."""

    def __init__(self, initial_points: np.ndarray) -> None:
        self._points = np.asarray(initial_points, dtype=np.float64).copy()
        if self._points.ndim != 2:
            raise ValueError("initial_points must be an (n, d) matrix")

    @property
    def points(self) -> np.ndarray:
        view = self._points.view()
        view.flags.writeable = False
        return view

    def apply(self, stream_id: int, point: np.ndarray) -> None:
        self._points[stream_id] = point

    def true_answer(
        self, query: SpatialRangeQuery | SpatialKnnQuery
    ) -> frozenset[int]:
        return query.true_answer(self._points)
