"""The spatial run loop: trace in, message counts and a check report out.

Assembly and replay are the runtime kernel's
:class:`~repro.runtime.session.ExecutionSession`; this module only keeps
the spatial-specific correctness evaluation.  :func:`execute_spatial` is
the mechanism the :class:`repro.api.Engine` compiles spatial specs onto;
the old :func:`run_spatial_protocol` name survives as a deprecation
shim returning identical results.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.correctness.checker import ToleranceChecker
from repro.correctness.staleness import StalenessWindow, tag_reason
from repro.harness.config import RunConfig
from repro.network.accounting import LedgerSnapshot
from repro.runtime.session import ExecutionSession
from repro.spatial.oracle import SpatialOracle
from repro.spatial.protocols import SpatialProtocol
from repro.spatial.queries import SpatialKnnQuery, SpatialRangeQuery
from repro.spatial.trace import SpatialTrace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance


class SpatialToleranceViolationError(AssertionError):
    """Raised in strict mode when a spatial protocol breaks tolerance."""


@dataclass
class SpatialRunResult:
    """Outcome of one spatial protocol over one trace.

    Under a latency-modeled deployment with checking, ``classified`` is
    set and every violation is split inherent-latency vs protocol-bug
    exactly as the scalar checker does (DESIGN.md §8.3).
    """

    protocol: str
    ledger: LedgerSnapshot
    n_streams: int
    n_records: int
    final_answer: frozenset[int]
    checks: int = 0
    violations: list[str] = field(default_factory=list)
    classified: bool = False
    violations_inherent_latency: int = 0
    violations_protocol_bug: int = 0
    #: The session's replay diagnostics (kernel chosen, dispatch and
    #: bailout counters) — see ``ExecutionSession.last_replay_stats``.
    replay_stats: dict | None = None

    @property
    def maintenance_messages(self) -> int:
        return self.ledger.maintenance_total

    @property
    def tolerance_ok(self) -> bool:
        return not self.violations


def run_spatial_protocol(
    trace: SpatialTrace,
    protocol: SpatialProtocol,
    query: SpatialRangeQuery | SpatialKnnQuery | None = None,
    tolerance: RankTolerance | FractionTolerance | None = None,
    config: RunConfig | None = None,
) -> SpatialRunResult:
    """Deprecated: use :class:`repro.api.Engine` with a ``-2d`` spec."""
    warnings.warn(
        "repro.spatial.runner.run_spatial_protocol is deprecated; use "
        "repro.api.Engine().run(QuerySpec(protocol='...-2d', ...), "
        "Workload.from_trace(trace))",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute_spatial(
        trace, protocol, query=query, tolerance=tolerance, config=config
    )


def execute_spatial(
    trace: SpatialTrace,
    protocol: SpatialProtocol,
    query: SpatialRangeQuery | SpatialKnnQuery | None = None,
    tolerance: RankTolerance | FractionTolerance | None = None,
    config: RunConfig | None = None,
    n_shards: int = 1,
    latency=None,
) -> SpatialRunResult:
    """Replay *trace* against a spatial *protocol*; spatial mirror of
    the engine's scalar streams executor.

    ``n_shards > 1`` assembles the sharded spatial topology
    (:meth:`ExecutionSession.for_spatial_sharded`) — per-shard channels
    and servers behind a merging coordinator, ledger byte-identical to
    the single-server assembly.  ``latency`` selects the channel
    delivery discipline exactly as :class:`repro.api.Deployment` does.
    """
    config = config or RunConfig()
    if int(n_shards) > 1:
        session = ExecutionSession.for_spatial_sharded(
            trace, protocol, int(n_shards), latency=latency
        )
    else:
        session = ExecutionSession.for_spatial(trace, protocol, latency=latency)

    oracle: SpatialOracle | None = None
    staleness: StalenessWindow | None = None
    if config.check_every > 0:
        if query is None:
            query = getattr(protocol, "query", None)
        if query is None:
            raise ValueError("checking requires a query")
        oracle = SpatialOracle(trace.initial_points)
        if latency is not None:
            staleness = StalenessWindow(session.latency_channels)

    session.initialize(time=0.0)

    result = SpatialRunResult(
        protocol=protocol.name,
        ledger=session.snapshot(),  # replaced at the end
        n_streams=trace.n_streams,
        n_records=trace.n_records,
        final_answer=frozenset(),
        classified=staleness is not None,
    )

    checker: ToleranceChecker | None = None
    oracle_apply = None
    after_apply = None
    if oracle is not None:
        # The shared checker with the spatial evaluation plugged in;
        # check_offset keeps this runner's historical sampling phase
        # (ticks every, 2*every, ... rather than the scalar engine's
        # 1, 1+every, ...).
        bound_oracle, bound_query = oracle, query
        checker = ToleranceChecker(
            oracle=None,
            query=None,
            tolerance=tolerance,
            answer_of=None,
            every=config.check_every,
            strict=config.strict,
            staleness=staleness,
            evaluate=lambda: _evaluate(
                protocol, bound_oracle, bound_query, tolerance
            ),
            error_cls=SpatialToleranceViolationError,
            check_offset=config.check_every - 1,
        )
        checker.check_now(0.0)
        oracle_apply = oracle.apply
        after_apply = checker.check

    session.replay_trace(
        trace,
        oracle_apply=oracle_apply,
        after_apply=after_apply,
        mode=config.replay_mode,
        batch_size=config.batch_size,
        min_chunk=config.min_chunk,
    )

    if checker is not None:
        report = checker.report
        result.checks = report.checks
        result.violations = [
            f"t={v.time}: {tag_reason(v.reason, v.classification)}"
            for v in report.violations
        ]
        result.violations_inherent_latency = report.inherent_count
        result.violations_protocol_bug = report.protocol_bug_count
    if session.last_replay_stats is not None:
        result.replay_stats = dict(session.last_replay_stats)
    result.ledger = session.snapshot()
    result.final_answer = protocol.answer
    return result


def _evaluate(
    protocol: SpatialProtocol,
    oracle: SpatialOracle,
    query: SpatialRangeQuery | SpatialKnnQuery,
    tolerance: RankTolerance | FractionTolerance | None,
) -> str | None:
    answer = set(protocol.answer)
    if isinstance(tolerance, RankTolerance):
        assert isinstance(query, SpatialKnnQuery)
        if len(answer) != tolerance.k:
            return f"|A| = {len(answer)}, expected exactly k = {tolerance.k}"
        order = query.ranked_ids(oracle.points)
        admissible = set(int(i) for i in order[: tolerance.eps])
        stragglers = answer - admissible
        if stragglers:
            return f"stream {min(stragglers)} ranks worse than {tolerance.eps}"
        return None
    true_set = oracle.true_answer(query)
    if isinstance(tolerance, FractionTolerance):
        return tolerance.violation(answer, true_set)
    if answer != true_set:
        return (
            f"exact answer required: {len(answer - true_set)} spurious, "
            f"{len(true_set - answer)} missing"
        )
    return None
