"""The spatial run loop: trace in, message counts and a check report out."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.config import RunConfig
from repro.network.accounting import LedgerSnapshot, MessageLedger, Phase
from repro.network.channel import Channel
from repro.sim.engine import SimulationEngine
from repro.spatial.oracle import SpatialOracle
from repro.spatial.protocols import SpatialProtocol
from repro.spatial.queries import SpatialKnnQuery, SpatialRangeQuery
from repro.spatial.server import SpatialServer
from repro.spatial.source import SpatialStreamSource
from repro.spatial.trace import SpatialTrace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance


class SpatialToleranceViolationError(AssertionError):
    """Raised in strict mode when a spatial protocol breaks tolerance."""


@dataclass
class SpatialRunResult:
    """Outcome of one spatial protocol over one trace."""

    protocol: str
    ledger: LedgerSnapshot
    n_streams: int
    n_records: int
    final_answer: frozenset[int]
    checks: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def maintenance_messages(self) -> int:
        return self.ledger.maintenance_total

    @property
    def tolerance_ok(self) -> bool:
        return not self.violations


def run_spatial_protocol(
    trace: SpatialTrace,
    protocol: SpatialProtocol,
    query: SpatialRangeQuery | SpatialKnnQuery | None = None,
    tolerance: RankTolerance | FractionTolerance | None = None,
    config: RunConfig | None = None,
) -> SpatialRunResult:
    """Replay *trace* against a spatial *protocol*; mirror of
    :func:`repro.harness.runner.run_protocol`."""
    config = config or RunConfig()
    engine = SimulationEngine()
    ledger = MessageLedger()
    channel = Channel(ledger)
    sources = [
        SpatialStreamSource(stream_id, trace.initial_points[stream_id], channel)
        for stream_id in range(trace.n_streams)
    ]
    server = SpatialServer(channel, protocol)

    oracle: SpatialOracle | None = None
    if config.check_every > 0:
        if query is None:
            query = getattr(protocol, "query", None)
        if query is None:
            raise ValueError("checking requires a query")
        oracle = SpatialOracle(trace.initial_points)

    ledger.phase = Phase.INITIALIZATION
    server.initialize(time=0.0)
    ledger.phase = Phase.MAINTENANCE

    result = SpatialRunResult(
        protocol=protocol.name,
        ledger=ledger.snapshot(),  # replaced at the end
        n_streams=trace.n_streams,
        n_records=trace.n_records,
        final_answer=frozenset(),
    )

    def check(time: float) -> None:
        assert oracle is not None and query is not None
        result.checks += 1
        reason = _evaluate(protocol, oracle, query, tolerance)
        if reason is not None:
            if len(result.violations) < 100:
                result.violations.append(f"t={time}: {reason}")
            if config.strict:
                raise SpatialToleranceViolationError(f"t={time}: {reason}")

    if oracle is not None:
        check(0.0)

    tick = 0
    for time, stream_id, point in trace:
        engine.run(until=time)
        if oracle is not None:
            oracle.apply(stream_id, point)
        sources[stream_id].apply_point(point, time)
        if oracle is not None:
            tick += 1
            if tick % config.check_every == 0:
                check(time)

    result.ledger = ledger.snapshot()
    result.final_answer = protocol.answer
    return result


def _evaluate(
    protocol: SpatialProtocol,
    oracle: SpatialOracle,
    query: SpatialRangeQuery | SpatialKnnQuery,
    tolerance: RankTolerance | FractionTolerance | None,
) -> str | None:
    answer = set(protocol.answer)
    if isinstance(tolerance, RankTolerance):
        assert isinstance(query, SpatialKnnQuery)
        if len(answer) != tolerance.k:
            return f"|A| = {len(answer)}, expected exactly k = {tolerance.k}"
        order = query.ranked_ids(oracle.points)
        admissible = set(int(i) for i in order[: tolerance.eps])
        stragglers = answer - admissible
        if stragglers:
            return f"stream {min(stragglers)} ranks worse than {tolerance.eps}"
        return None
    true_set = oracle.true_answer(query)
    if isinstance(tolerance, FractionTolerance):
        return tolerance.violation(answer, true_set)
    if answer != true_set:
        return (
            f"exact answer required: {len(answer - true_set)} spurious, "
            f"{len(true_set - answer)} missing"
        )
    return None
