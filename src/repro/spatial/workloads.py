"""Moving-object workloads for the spatial protocols.

The paper motivates k-NN queries with location monitoring of moving
objects (Section 1, [21]).  This generator produces objects moving in a
d-dimensional box as reflected Gaussian random walks with exponential
report times — the natural multi-dimensional analogue of the Section 6.2
synthetic model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import RandomStreams
from repro.spatial.trace import SpatialTrace


@dataclass(frozen=True)
class MovingObjectsConfig:
    """Parameters of the moving-objects workload.

    Attributes
    ----------
    n_objects:
        Number of moving objects (streams).
    dimension:
        Spatial dimension (2 for the location scenarios).
    horizon:
        Virtual duration.
    mean_interarrival:
        Mean gap between an object's position reports.
    sigma:
        Per-dimension Gaussian step deviation per report.
    extent:
        Objects live in ``[0, extent]^dimension`` (reflecting walls).
    seed:
        Master seed.
    """

    n_objects: int = 200
    dimension: int = 2
    horizon: float = 300.0
    mean_interarrival: float = 20.0
    sigma: float = 20.0
    extent: float = 1000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_objects <= 0:
            raise ValueError("n_objects must be positive")
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.extent <= 0:
            raise ValueError("extent must be positive")


def generate_moving_objects_trace(
    config: MovingObjectsConfig | None = None, **overrides
) -> SpatialTrace:
    """Materialize a moving-objects workload as a replayable trace."""
    if config is None:
        config = MovingObjectsConfig()
    if overrides:
        config = MovingObjectsConfig(**{**config.__dict__, **overrides})
    rng = RandomStreams(config.seed)
    position_rng = rng.get("initial-positions")
    arrival_rng = rng.get("report-times")
    step_rng = rng.get("steps")

    initial = position_rng.uniform(
        0.0, config.extent, size=(config.n_objects, config.dimension)
    )

    all_times: list[np.ndarray] = []
    all_ids: list[np.ndarray] = []
    all_points: list[np.ndarray] = []
    for object_id in range(config.n_objects):
        times = _arrivals(arrival_rng, config.mean_interarrival, config.horizon)
        if len(times) == 0:
            continue
        steps = step_rng.normal(
            0.0, config.sigma, size=(len(times), config.dimension)
        )
        path = initial[object_id] + np.cumsum(steps, axis=0)
        path = _reflect(path, 0.0, config.extent)
        all_times.append(times)
        all_ids.append(np.full(len(times), object_id, dtype=np.int64))
        all_points.append(path)

    if all_times:
        times = np.concatenate(all_times)
        ids = np.concatenate(all_ids)
        points = np.concatenate(all_points, axis=0)
        order = np.argsort(times, kind="stable")
        times, ids, points = times[order], ids[order], points[order]
    else:
        times = np.empty(0)
        ids = np.empty(0, dtype=np.int64)
        points = np.empty((0, config.dimension))

    return SpatialTrace(
        initial_points=initial,
        times=times,
        stream_ids=ids,
        points=points,
        horizon=config.horizon,
        metadata={
            "workload": "moving-objects",
            "n_objects": config.n_objects,
            "dimension": config.dimension,
            "sigma": config.sigma,
            "seed": config.seed,
        },
    )


def _arrivals(
    rng: np.random.Generator, mean: float, horizon: float
) -> np.ndarray:
    expected = max(8, int(horizon / mean * 1.3) + 8)
    gaps = rng.exponential(mean, size=expected)
    times = np.cumsum(gaps)
    while times[-1] < horizon:
        more = rng.exponential(mean, size=expected)
        times = np.concatenate([times, times[-1] + np.cumsum(more)])
    return times[times <= horizon]


def _reflect(path: np.ndarray, low: float, high: float) -> np.ndarray:
    """Fold a free walk into [low, high] by mirror reflection."""
    span = high - low
    offset = np.mod(path - low, 2 * span)
    offset = np.where(offset > span, 2 * span - offset, offset)
    return low + offset
