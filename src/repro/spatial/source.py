"""Vector-valued stream sources with region filters.

Identical semantics to :class:`repro.streams.source.StreamSource` —
report iff region membership flips, refresh on probe, self-correct on a
stale deployment belief — over points and regions.
"""

from __future__ import annotations

import numpy as np

from repro.network.channel import Channel
from repro.network.messages import Message, MessageKind
from repro.spatial.geometry import Region, as_point
from repro.spatial.messages import (
    PointProbeReplyMessage,
    PointProbeRequestMessage,
    PointUpdateMessage,
    RegionConstraintMessage,
)


class SpatialStreamSource:
    """A distributed source holding a d-dimensional point."""

    def __init__(self, stream_id: int, initial_point, channel: Channel) -> None:
        self.stream_id = stream_id
        self.point = as_point(initial_point)
        self.channel = channel
        self.region: Region | None = None
        self._reported_inside = False
        channel.bind_source(stream_id, self._handle_message)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def apply_point(self, point, time: float) -> None:
        """Move to *point*; report if the region filter demands it."""
        self.point = as_point(point)
        if self.region is None:
            self._report(time)
            return
        inside = self.region.contains(self.point)
        if inside != self._reported_inside:
            self._reported_inside = inside
            self._report(time)

    def _report(self, time: float) -> None:
        self.channel.send_to_server(
            PointUpdateMessage(
                stream_id=self.stream_id, time=time, point=self.point.copy()
            )
        )

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _handle_message(self, message: Message) -> None:
        if message.kind is MessageKind.PROBE_REQUEST:
            assert isinstance(message, PointProbeRequestMessage)
            if self.region is not None:
                self._reported_inside = self.region.contains(self.point)
            self.channel.send_to_server(
                PointProbeReplyMessage(
                    stream_id=self.stream_id,
                    time=message.time,
                    point=self.point.copy(),
                )
            )
            return
        if message.kind is MessageKind.CONSTRAINT:
            assert isinstance(message, RegionConstraintMessage)
            self.region = message.region
            if self.region.is_silencing:
                self._reported_inside = self.region.contains(self.point)
                return
            actual = self.region.contains(self.point)
            if message.assumed_inside is None:
                self._reported_inside = actual
                return
            self._reported_inside = bool(message.assumed_inside)
            if actual != self._reported_inside:
                self._reported_inside = actual
                self._report(message.time)
            return
        raise RuntimeError(  # pragma: no cover - defensive
            f"source received unexpected {message.kind}"
        )

    @property
    def reported_inside(self) -> bool:
        return self._reported_inside
