"""Vector-valued stream sources with region filters.

Identical semantics to :class:`repro.streams.source.StreamSource` —
report iff region membership flips, refresh on probe, self-correct on a
stale deployment belief — over points and regions.  Both are the same
runtime-kernel source; only the payload codec (points), the membership
container (regions) and the message vocabulary differ.
"""

from __future__ import annotations

import numpy as np

from repro.network.channel import Channel
from repro.network.messages import Message
from repro.runtime.membership import RegionMembership
from repro.runtime.source import ChannelFilteredSource
from repro.spatial.geometry import Region, as_point
from repro.spatial.messages import (
    PointProbeReplyMessage,
    PointUpdateMessage,
    RegionConstraintMessage,
)


class SpatialStreamSource(ChannelFilteredSource):
    """A distributed source holding a d-dimensional point."""

    def __init__(self, stream_id: int, initial_point, channel: Channel) -> None:
        super().__init__(stream_id, initial_point, RegionMembership(), channel)

    def _coerce(self, payload) -> np.ndarray:
        return as_point(payload)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def apply_point(self, point, time: float) -> None:
        """Move to *point*; report if the region filter demands it."""
        self.apply(point, time)

    # ------------------------------------------------------------------
    # Message vocabulary
    # ------------------------------------------------------------------
    def _update_message(self, time: float) -> Message:
        return PointUpdateMessage(
            stream_id=self.stream_id, time=time, point=self.value.copy()
        )

    def _reply_message(self, time: float) -> Message:
        return PointProbeReplyMessage(
            stream_id=self.stream_id, time=time, point=self.value.copy()
        )

    def _constraint_of(self, message: Message) -> Region:
        assert isinstance(message, RegionConstraintMessage)
        return message.region

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def point(self) -> np.ndarray:
        """The source's current point (alias of the kernel payload)."""
        return self.value

    @point.setter
    def point(self, value) -> None:
        self.value = as_point(value)

    @property
    def region(self) -> Region | None:
        """The region filter currently installed (if any)."""
        return self.membership.container

    @property
    def reported_inside(self) -> bool:
        return self.membership.reported_inside
