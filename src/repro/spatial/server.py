"""The spatial server: region deployments and point probes.

Mirrors :class:`repro.server.server.Server` with vector payloads; the
same deferred-update discipline — inherited from the runtime kernel's
:class:`repro.runtime.dispatch.DeferredDeliveryMixin` — guarantees
protocol handlers are never re-entered by self-correction reports.

This control plane (``probe``, ``probe_all``, ``deploy``) is what the
sharded and process-parallel spatial coordinators reproduce:
:class:`repro.server.sharded.ShardedSpatialServer` in-process, and
:class:`repro.server.transport.SpatialTransportShardedServer` across
worker processes, where the same vocabulary travels as columnar
point/region frames (:mod:`repro.spatial.messages`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.network.channel import Channel
from repro.network.messages import Message, MessageKind
from repro.runtime.dispatch import DeferredDeliveryMixin
from repro.spatial.geometry import Region
from repro.spatial.messages import (
    PointProbeReplyMessage,
    PointProbeRequestMessage,
    PointUpdateMessage,
    RegionConstraintMessage,
)
from repro.state.table import StreamStateTable

if TYPE_CHECKING:
    from repro.spatial.protocols import SpatialProtocol


class SpatialServer(DeferredDeliveryMixin):
    """Central processor for vector-valued streams."""

    def __init__(self, channel: Channel, protocol: "SpatialProtocol") -> None:
        self.channel = channel
        self.protocol = protocol
        self._now = 0.0
        self._state: StreamStateTable | None = None
        self._probe_reply: PointProbeReplyMessage | None = None
        self._awaiting_probe = False
        self._init_delivery()
        channel.bind_server(self._handle_message)

    @property
    def now(self) -> float:
        return self._now

    @property
    def stream_ids(self) -> list[int]:
        return self.channel.source_ids

    @property
    def n_streams(self) -> int:
        return len(self.channel.source_ids)

    @property
    def state(self) -> StreamStateTable:
        """The columnar stream-state table (vector payloads).

        Mirrors :attr:`repro.server.server.Server.state`: probe replies
        and update deliveries refresh the point column; deployed regions
        land in the object container column, and their axis-aligned
        quiescence boxes land in the *geometric plane* — written through
        by the sources' bound :class:`~repro.runtime.membership.
        RegionMembership` at install time — so the batched replay
        pre-scan decides quiescence columnar-side with one vectorized
        AABB test (see :meth:`StreamStateTable.geometric_quiescence_mask`).
        """
        if self._state is None:
            self._state = StreamStateTable(len(self.channel.source_ids))
        return self._state

    def rank_view(self, distance_array):
        """An incremental rank order over :attr:`state` (see
        :meth:`repro.server.server.Server.rank_view`)."""
        from repro.state.rank import RankView

        return RankView(self.state, distance_array)

    def initialize(self, time: float = 0.0) -> None:
        self._now = time
        self._guarded_call(self.protocol.initialize, self)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def probe(self, stream_id: int) -> np.ndarray:
        """Fetch one source's current point (2 messages)."""
        self._awaiting_probe = True
        self._probe_reply = None
        self.channel.send_to_source(
            PointProbeRequestMessage(stream_id=stream_id, time=self._now)
        )
        self._awaiting_probe = False
        if self._probe_reply is None:  # pragma: no cover - defensive
            raise RuntimeError(f"source {stream_id} did not reply")
        reply = self._probe_reply
        self.state.record_report(reply.stream_id, reply.point, reply.time)
        return reply.point

    def probe_all(
        self, stream_ids: list[int] | None = None
    ) -> dict[int, np.ndarray]:
        targets = self.channel.source_ids if stream_ids is None else stream_ids
        return {stream_id: self.probe(stream_id) for stream_id in targets}

    def deploy(
        self,
        stream_id: int,
        region: Region,
        assumed_inside: bool | None = None,
    ) -> None:
        """Install *region* at one source (one message)."""
        self.state.record_container_deploy(stream_id, region)
        self.channel.send_to_source(
            RegionConstraintMessage(
                stream_id=stream_id,
                time=self._now,
                region=region,
                assumed_inside=assumed_inside,
            )
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _handle_message(self, message: Message) -> None:
        if message.kind is MessageKind.PROBE_REPLY:
            if not self._awaiting_probe:  # pragma: no cover - defensive
                raise RuntimeError("unsolicited probe reply")
            assert isinstance(message, PointProbeReplyMessage)
            self._probe_reply = message
            return
        if message.kind is MessageKind.UPDATE:
            assert isinstance(message, PointUpdateMessage)
            self._now = max(self._now, message.time)
            self._deliver(message)
            return
        raise RuntimeError(  # pragma: no cover - defensive
            f"server received unexpected {message.kind}"
        )

    def _handle_delivery(self, message: PointUpdateMessage) -> None:
        self.state.record_report(
            message.stream_id, message.point, message.time
        )
        self.protocol.on_update(
            self, message.stream_id, message.point, message.time
        )
