"""Replayable traces of vector-valued streams."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np


@dataclass
class SpatialTrace:
    """A workload over ``n`` streams of d-dimensional points.

    Attributes
    ----------
    initial_points:
        ``(n, d)`` matrix; row ``i`` is stream ``i``'s point at time 0.
    times, stream_ids:
        Parallel record arrays, time-sorted.
    points:
        ``(m, d)`` matrix of record payloads.
    horizon:
        Virtual end time.
    """

    initial_points: np.ndarray
    times: np.ndarray
    stream_ids: np.ndarray
    points: np.ndarray
    horizon: float
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.initial_points = np.asarray(self.initial_points, dtype=np.float64)
        self.times = np.asarray(self.times, dtype=np.float64)
        self.stream_ids = np.asarray(self.stream_ids, dtype=np.int64)
        self.points = np.asarray(self.points, dtype=np.float64)
        if self.initial_points.ndim != 2:
            raise ValueError("initial_points must be an (n, d) matrix")
        if len(self.times) != len(self.stream_ids) or len(self.times) != len(
            self.points
        ):
            raise ValueError("record arrays must have equal length")
        if len(self.points) and self.points.shape[1] != self.dimension:
            raise ValueError("record dimension differs from initial points")
        if len(self.times) and np.any(np.diff(self.times) < 0):
            raise ValueError("trace records must be sorted by time")
        if len(self.times) and self.horizon < self.times[-1]:
            raise ValueError("horizon precedes the last record")
        if len(self.times):
            bad = (self.stream_ids < 0) | (
                self.stream_ids >= self.n_streams
            )
            if np.any(bad):
                raise ValueError("record references an unknown stream id")

    @property
    def n_streams(self) -> int:
        return self.initial_points.shape[0]

    @property
    def dimension(self) -> int:
        return self.initial_points.shape[1]

    @property
    def n_records(self) -> int:
        return len(self.times)

    def __len__(self) -> int:
        return self.n_records

    def __iter__(self) -> Iterator[tuple[float, int, np.ndarray]]:
        for i in range(self.n_records):
            yield float(self.times[i]), int(self.stream_ids[i]), self.points[i]

    def truncate(self, horizon: float) -> "SpatialTrace":
        """Keep records at or before *horizon*."""
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        keep = self.times <= horizon
        return SpatialTrace(
            initial_points=self.initial_points.copy(),
            times=self.times[keep],
            stream_ids=self.stream_ids[keep],
            points=self.points[keep],
            horizon=horizon,
            metadata={**self.metadata, "truncated_to": horizon},
        )
