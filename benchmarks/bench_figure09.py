"""Figure 9 — RTP: effect of r (TCP data, top-k query)."""

from repro.experiments import figure09


def test_figure09(run_figure):
    result = run_figure(figure09.run)

    baseline = result.series["no filter"][0]
    k_curves = {
        name: curve
        for name, curve in result.series.items()
        if name.startswith("k=")
    }
    for name, curve in k_curves.items():
        # Tolerance is exploited: the r = max point is far below r = 0.
        assert curve[-1] < curve[0] / 2, name
        # And beats the no-filter baseline at generous slack.
        assert curve[-1] < baseline, name
    # At r = 0 the largest k is worse than no filtering (paper's k=30).
    assert max(curve[0] for curve in k_curves.values()) > baseline
