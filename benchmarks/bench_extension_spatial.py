"""Extension bench — the protocols in two dimensions (Section 7).

The paper closes with "the concepts of our protocols can be extended to
multiple dimensions".  Three measurements over the 2-D moving-objects
workload:

* **tolerance curves** — the spatial counterparts reproduce the same
  qualitative story as Figures 9/15: tolerance collapses the
  communication cost.
* **geometric quiescence planes** — batched replay (the AABB pre-scan
  over the regions' inscribed/circumscribed bboxes) vs per-event replay
  in the filtering regime, asserting >= 1.5x and ledger byte-equality.
* **sharded spatial topology** — ledgers byte-identical across
  ``{single, sharded(2), sharded(4)} x {per-event, batched}``, with the
  sequential coordinator overhead tracked in the artifact.

Set ``BENCH_OUTPUT_DIR`` to write ``BENCH_spatial.json`` (uploaded by
the CI bench-smoke job); ``BENCH_SMOKE=1`` shrinks the grids for CI.
"""

from __future__ import annotations

from bench_artifacts import SMOKE, best_of, write_artifact

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.harness.reporting import format_series
from repro.spatial.geometry import BoxRegion
from repro.spatial.queries import SpatialKnnQuery, SpatialRangeQuery
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance

K = 10
R_VALUES = [0, 2, 8] if SMOKE else [0, 2, 4, 8]
EPS_VALUES = [0.1, 0.4] if SMOKE else [0.1, 0.2, 0.4]
CENTER = (500.0, 500.0)
QUERY_BOX = BoxRegion([300.0, 300.0], [700.0, 700.0])

# Filtering regime for the replay measurement: small steps relative to
# the query box, so the AABB pre-scan stages the bulk of the records.
N_OBJECTS = 600 if SMOKE else 2000
FILTER_HORIZON = 150.0 if SMOKE else 400.0
REPEATS = 1 if SMOKE else 3
MIN_BATCH_SPEEDUP = 1.5
SHARD_COUNTS = (1, 2, 4)

_RESULTS: dict = {
    "rtp_curve": {},
    "ftrp_curve": {},
    "batched_replay": {},
    "sharded": {},
}


def _curve_workload() -> Workload:
    return Workload.moving_objects(n_objects=200, horizon=300.0, seed=0)


def _filtering_workload() -> Workload:
    return Workload.moving_objects(
        n_objects=N_OBJECTS,
        horizon=FILTER_HORIZON,
        sigma=4.0,
        mean_interarrival=4.0,
        seed=1,
    )


def _best_of(fn):
    return best_of(fn, REPEATS)


def test_extension_spatial_tolerance_curves():
    engine = Engine()
    workload = _curve_workload()
    rtp_curve = []
    for r in R_VALUES:
        report = engine.run(
            QuerySpec(
                protocol="rtp-2d",
                query=SpatialKnnQuery(CENTER, K),
                tolerance=RankTolerance(k=K, r=r),
            ),
            workload,
        )
        rtp_curve.append(report.maintenance_messages)

    zt = engine.run(
        QuerySpec(protocol="zt-rp-2d", query=SpatialKnnQuery(CENTER, K)),
        workload,
    )
    ftrp_curve = [zt.maintenance_messages]
    for eps in EPS_VALUES:
        report = engine.run(
            QuerySpec(
                protocol="ft-rp-2d",
                query=SpatialKnnQuery(CENTER, K),
                tolerance=FractionTolerance(eps, eps),
            ),
            workload,
        )
        ftrp_curve.append(report.maintenance_messages)

    print()
    print(
        format_series(
            "r",
            R_VALUES,
            {"RTP-2d": rtp_curve},
            title=f"Extension — 2-D RTP over moving objects (k={K})",
        )
    )
    print(
        format_series(
            "eps",
            [0.0, *EPS_VALUES],
            {"ZT/FT-RP-2d": ftrp_curve},
            title=f"Extension — 2-D ZT-RP/FT-RP (k={K})",
        )
    )
    _RESULTS["rtp_curve"] = dict(zip(map(str, R_VALUES), rtp_curve))
    _RESULTS["ftrp_curve"] = dict(
        zip(map(str, [0.0, *EPS_VALUES]), ftrp_curve)
    )
    write_artifact("spatial", _RESULTS)
    # Same shapes as the 1-D figures: slack collapses cost.
    assert rtp_curve[-1] < rtp_curve[0]
    assert ftrp_curve[1] < ftrp_curve[0] / 2
    assert ftrp_curve[-1] < ftrp_curve[0] / 20


def test_bench_spatial_batched_replay_speedup():
    """The geometric quiescence planes' payoff in the filtering regime."""
    engine = Engine()
    workload = _filtering_workload()
    trace = workload.materialize()
    spec = QuerySpec(
        protocol="zt-nrp-2d", query=SpatialRangeQuery(QUERY_BOX)
    )
    print()
    print(
        f"spatial batched replay: {trace.n_streams} objects, "
        f"{trace.n_records} records, sigma=4 (filtering regime), "
        "ZT-NRP-2d over the query box"
    )
    event, t_event = _best_of(
        lambda: engine.run(spec, workload, Deployment.single(replay_mode="event"))
    )
    batch, t_batch = _best_of(
        lambda: engine.run(spec, workload, Deployment.single(replay_mode="batch"))
    )
    assert batch.ledger == event.ledger, "batched spatial ledger diverged"
    assert batch.final_answer == event.final_answer
    speedup = t_event / t_batch
    print(
        f"event {t_event * 1e3:.0f}ms, batch {t_batch * 1e3:.0f}ms "
        f"({speedup:.2f}x, floor {MIN_BATCH_SPEEDUP}x), "
        f"{event.maintenance_messages} maintenance messages, ledgers equal"
    )
    _RESULTS["batched_replay"] = {
        "n_objects": trace.n_streams,
        "n_records": trace.n_records,
        "event_ms": round(t_event * 1e3, 3),
        "batch_ms": round(t_batch * 1e3, 3),
        "speedup": round(speedup, 2),
    }
    write_artifact("spatial", _RESULTS)
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"batched spatial replay only {speedup:.2f}x faster than "
        f"per-event in the filtering regime (floor {MIN_BATCH_SPEEDUP}x)"
    )


def test_bench_sharded_spatial_ledger_grid():
    """The acceptance grid: one ledger across topologies and modes."""
    engine = Engine()
    workload = _filtering_workload()
    spec = QuerySpec(
        protocol="ft-rp-2d",
        query=SpatialKnnQuery(CENTER, K),
        tolerance=FractionTolerance(0.2, 0.2),
    )
    base, t_base = _best_of(
        lambda: engine.run(spec, workload, Deployment.single(replay_mode="event"))
    )
    print()
    print(f"{'deployment':>14} {'mode':>6} {'wall':>9} {'ledger':>8}")
    print(f"{'single':>14} {'event':>6} {t_base * 1e3:>8.0f}ms {'base':>8}")
    for n_shards in SHARD_COUNTS:
        for mode in ("event", "batch"):
            if n_shards == 1 and mode == "event":
                continue
            deployment = (
                Deployment.single(replay_mode=mode)
                if n_shards == 1
                else Deployment.sharded(n_shards, replay_mode=mode)
            )
            report, wall = _best_of(
                lambda d=deployment: engine.run(spec, workload, d)
            )
            assert report.ledger == base.ledger, (
                f"{deployment.describe()} {mode} ledger diverged"
            )
            assert report.final_answer == base.final_answer
            print(
                f"{deployment.describe():>14} {mode:>6} "
                f"{wall * 1e3:>8.0f}ms {'equal':>8}"
            )
            _RESULTS["sharded"][f"{deployment.describe()}-{mode}"] = {
                "wall_ms": round(wall * 1e3, 3),
            }
    _RESULTS["sharded"]["single-event"] = {
        "wall_ms": round(t_base * 1e3, 3)
    }
    write_artifact("spatial", _RESULTS)
