"""Extension bench — the protocols in two dimensions (Section 7).

The paper closes with "the concepts of our protocols can be extended to
multiple dimensions".  This bench runs the 2-D moving-objects workload
through the spatial counterparts and checks the same qualitative story
as Figures 9/15: tolerance collapses the communication cost.
"""

from repro.harness.reporting import format_series
from repro.spatial.protocols import (
    SpatialFractionKnnProtocol,
    SpatialRankToleranceProtocol,
    SpatialZeroKnnProtocol,
)
from repro.spatial.queries import SpatialKnnQuery
from repro.spatial.runner import execute_spatial as run_spatial_protocol
from repro.spatial.workloads import MovingObjectsConfig, generate_moving_objects_trace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance

K = 10
R_VALUES = [0, 2, 4, 8]
EPS_VALUES = [0.1, 0.2, 0.4]
CENTER = [500.0, 500.0]


def _run_extension():
    trace = generate_moving_objects_trace(
        MovingObjectsConfig(n_objects=200, horizon=300.0, seed=0)
    )
    rtp_curve = []
    for r in R_VALUES:
        tolerance = RankTolerance(k=K, r=r)
        result = run_spatial_protocol(
            trace,
            SpatialRankToleranceProtocol(SpatialKnnQuery(CENTER, K), tolerance),
            tolerance=tolerance,
        )
        rtp_curve.append(result.maintenance_messages)

    zt = run_spatial_protocol(
        trace, SpatialZeroKnnProtocol(SpatialKnnQuery(CENTER, K))
    )
    ftrp_curve = [zt.maintenance_messages]
    for eps in EPS_VALUES:
        tolerance = FractionTolerance(eps, eps)
        result = run_spatial_protocol(
            trace,
            SpatialFractionKnnProtocol(SpatialKnnQuery(CENTER, K), tolerance),
            tolerance=tolerance,
        )
        ftrp_curve.append(result.maintenance_messages)
    return rtp_curve, ftrp_curve


def test_extension_spatial_protocols(benchmark):
    rtp_curve, ftrp_curve = benchmark.pedantic(
        _run_extension, rounds=1, iterations=1
    )
    print()
    print(
        format_series(
            "r",
            R_VALUES,
            {"RTP-2d": rtp_curve},
            title=f"Extension — 2-D RTP over moving objects (k={K})",
        )
    )
    print(
        format_series(
            "eps",
            [0.0, *EPS_VALUES],
            {"ZT/FT-RP-2d": ftrp_curve},
            title=f"Extension — 2-D ZT-RP/FT-RP (k={K})",
        )
    )
    # Same shapes as the 1-D figures: slack collapses cost.
    assert rtp_curve[-1] < rtp_curve[0]
    assert ftrp_curve[1] < ftrp_curve[0] / 2
    assert ftrp_curve[-1] < ftrp_curve[0] / 20
