"""Perf trajectory: fold accumulated ``BENCH_*.json`` artifacts into one
summary.

CI's bench-smoke job uploads a ``BENCH_<name>.json`` per bench per
commit.  Downloading those artifacts into per-commit directories (any
layout works — this tool finds every ``BENCH_*.json`` under the given
roots and labels each file by its parent directory) and pointing this
script at them yields the cross-commit trajectory of the headline
metrics the benches track:

* ``state_engine``   — bulk-recompute and point-update speedups
* ``runtime_replay`` — batched-replay filtering-regime speedup
* ``dispatch``       — run-kernel speedup on the dispatch-heavy profile
* ``sharded``        — per-shard capacity speedup at 4 shards, plus the
  transport-parallel coupled-protocol speedup and the coordination
  fraction (coordinator compute / modeled parallel wall) at 4 shards,
  on both the scalar and the spatial (ZT-RP-2d) transport vocabularies
* ``spatial``        — batched spatial replay speedup + message curves
* ``latency``        — stale-belief violation rate and message overhead
  at the largest modeled latency (requirement-2 degradation study)
* ``durability``     — wall-clock multiplier of the write-ahead journal
  at ``fsync="never"`` and ``fsync="every"`` over RAM planes

Usage::

    python benchmarks/plot_trajectory.py DIR [DIR ...] \
        [--json OUT.json] [--plot OUT.png]

With one directory (one commit's artifacts) it degrades to a snapshot
summary — which is exactly what the CI smoke step runs against the
artifacts it just produced.  ``--plot`` renders a PNG when matplotlib
is importable and is silently skipped (with a note) when it is not, so
the tool stays dependency-free on CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

def _rows_speedup(section: str):
    """Largest-n row's speedup from a per-size row list."""

    def extract(payload: dict):
        rows = payload.get(section) or []
        return rows[-1].get("speedup") if rows else None

    return extract


def _path(*keys: str):
    def extract(payload: dict):
        node = payload
        for key in keys:
            if not isinstance(node, dict) or key not in node:
                return None
            node = node[key]
        return node if isinstance(node, (int, float)) else None

    return extract


def _curve_tail(*keys: str):
    """Last point of a per-latency curve list at the given path."""

    def extract(payload: dict):
        node = payload
        for key in keys:
            if not isinstance(node, dict) or key not in node:
                return None
            node = node[key]
        if isinstance(node, list) and node:
            tail = node[-1]
            return tail if isinstance(tail, (int, float)) else None
        return None

    return extract


#: metric label -> (bench name, extractor over that bench's artifact).
HEADLINE_METRICS: dict[str, tuple[str, object]] = {
    "state_recompute_speedup": ("state_engine", _rows_speedup("recompute")),
    "state_point_update_speedup": (
        "state_engine",
        _rows_speedup("point_update"),
    ),
    "replay_filtering_speedup": (
        "runtime_replay",
        _path("value_window_speedup"),
    ),
    "dispatch_kernel_speedup": (
        "dispatch",
        _path("dispatch_heavy_speedup"),
    ),
    "sharded_capacity_speedup_x4": (
        "sharded",
        _path("shards", "4", "speedup_vs_single"),
    ),
    "sharded_rtp_overhead_x4": (
        "sharded",
        _path("rtp_coordinator", "overhead"),
    ),
    "transport_coupled_speedup_x4": (
        "sharded",
        _path("transport", "shards", "4", "speedup_vs_sequential"),
    ),
    "transport_coordination_fraction_x4": (
        "sharded",
        _path("transport", "shards", "4", "coordination_fraction"),
    ),
    "spatial_transport_speedup_x4": (
        "sharded",
        _path("spatial_transport", "shards", "4", "speedup_vs_sequential"),
    ),
    "spatial_batch_speedup": ("spatial", _path("batched_replay", "speedup")),
    "latency_max_violation_rate": (
        "latency",
        _curve_tail("profiles", "default", "rtp", "violation_rate"),
    ),
    "latency_max_message_overhead": (
        "latency",
        _curve_tail("profiles", "default", "rtp", "message_overhead"),
    ),
    "latency_transport_speedup_x2": (
        "latency",
        _path("transport", "shards", "2", "speedup_vs_sequential"),
    ),
    "latency_transport_speedup_x4": (
        "latency",
        _path("transport", "shards", "4", "speedup_vs_sequential"),
    ),
    "durability_journal_overhead": (
        "durability",
        _path("grid", "never+ram", "overhead_x"),
    ),
    "durability_fsync_every_overhead": (
        "durability",
        _path("grid", "every+ram", "overhead_x"),
    ),
}


def discover(roots: list[Path]) -> dict[str, dict[str, dict]]:
    """``label -> bench name -> artifact dict`` for every BENCH_*.json.

    The label is the artifact's parent directory relative to its root
    (typically one subdirectory per commit).  With several roots the
    label is qualified by the root as given on the command line —
    per-commit roots whose artifacts sit in identically-named subdirs
    (the standard ``bench-artifacts/`` download layout) must not
    collapse into one run.
    """
    runs: dict[str, dict[str, dict]] = {}
    for root in roots:
        for path in sorted(root.rglob("BENCH_*.json")):
            relative = str(path.parent.relative_to(root))
            if len(roots) > 1:
                prefix = str(root).rstrip("/")
                label = (
                    prefix if relative == "." else f"{prefix}/{relative}"
                )
            else:
                label = root.name or "." if relative == "." else relative
            bench = path.stem[len("BENCH_") :]
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as error:
                print(f"skipping {path}: {error}", file=sys.stderr)
                continue
            runs.setdefault(label, {})[bench] = payload
    return runs


def summarize(runs: dict[str, dict[str, dict]]) -> dict:
    """``{"runs": [...], "metrics": {metric: {label: value}}}``."""
    metrics: dict[str, dict[str, float]] = {}
    for label, benches in sorted(runs.items()):
        for metric, (bench, extract) in HEADLINE_METRICS.items():
            payload = benches.get(bench)
            if payload is None:
                continue
            value = extract(payload)
            if value is not None:
                metrics.setdefault(metric, {})[label] = float(value)
    return {"runs": sorted(runs), "metrics": metrics}


def format_summary(summary: dict) -> str:
    runs = summary["runs"]
    lines = [
        f"perf trajectory over {len(runs)} run(s): {', '.join(runs)}",
        "",
        f"{'metric':<32} " + " ".join(f"{label:>12}" for label in runs),
    ]
    for metric in HEADLINE_METRICS:
        values = summary["metrics"].get(metric)
        if not values:
            continue
        cells = [
            f"{values[label]:>11.2f}x" if label in values else f"{'-':>12}"
            for label in runs
        ]
        lines.append(f"{metric:<32} " + " ".join(cells))
    if len(lines) == 3:
        lines.append("(no headline metrics found)")
    return "\n".join(lines)


def plot(summary: dict, out: Path) -> bool:
    """Render the trajectory as a PNG; returns False without matplotlib."""
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print(f"matplotlib unavailable; skipping {out}", file=sys.stderr)
        return False
    runs = summary["runs"]
    figure, axis = plt.subplots(figsize=(8, 4.5))
    for metric, values in summary["metrics"].items():
        ys = [values.get(label) for label in runs]
        axis.plot(range(len(runs)), ys, marker="o", label=metric)
    axis.set_xticks(range(len(runs)), runs, rotation=30, ha="right")
    axis.set_ylabel("speedup / overhead (x)")
    axis.set_title("bench trajectory")
    axis.legend(fontsize=7)
    figure.tight_layout()
    figure.savefig(out, dpi=120)
    plt.close(figure)
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarize accumulated BENCH_*.json artifacts."
    )
    parser.add_argument(
        "roots",
        nargs="+",
        type=Path,
        help="directories holding BENCH_*.json files (one per commit)",
    )
    parser.add_argument(
        "--json", type=Path, default=None, help="write the summary as JSON"
    )
    parser.add_argument(
        "--plot",
        type=Path,
        default=None,
        help="write a PNG (requires matplotlib; skipped when absent)",
    )
    args = parser.parse_args(argv)

    missing = [root for root in args.roots if not root.is_dir()]
    if missing:
        parser.error(
            "not a directory: " + ", ".join(str(root) for root in missing)
        )
    runs = discover(args.roots)
    if not runs:
        print("no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    summary = summarize(runs)
    print(format_summary(summary))
    if args.json is not None:
        args.json.write_text(json.dumps(summary, indent=2, sort_keys=True))
        print(f"\nwrote {args.json}")
    if args.plot is not None and plot(summary, args.plot):
        print(f"wrote {args.plot}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
