"""Shared benchmark-artifact conventions.

Both environment knobs are read here so every bench agrees on them:

* ``BENCH_OUTPUT_DIR`` — when set, each bench writes its accumulated
  results as ``<dir>/BENCH_<name>.json`` (the CI bench-smoke job uploads
  those so the perf trajectory accumulates per commit);
* ``BENCH_SMOKE`` — when set, benches shrink their grids for CI.
"""

from __future__ import annotations

import json
import os
import time

SMOKE = bool(os.environ.get("BENCH_SMOKE"))


def best_of(fn, repeats: int):
    """Run *fn* ``repeats`` times; return ``(last result, best wall)``.

    The shared timing loop of the perf benches — one definition so a
    methodology change (warm-up, median-of-N) cannot skew one bench's
    trajectory against the others'.
    """
    best = float("inf")
    result = None
    for _ in range(int(repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def write_artifact(name: str, results) -> None:
    """Write ``BENCH_<name>.json`` if ``BENCH_OUTPUT_DIR`` is set."""
    out_dir = os.environ.get("BENCH_OUTPUT_DIR")
    if not out_dir:
        return
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    print(f"artifact: {path}")
