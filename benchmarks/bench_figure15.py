"""Figure 15 — ZT-RP/FT-RP: effect of eps+/eps- (log-scale drop)."""

from repro.experiments import figure15


def test_figure15(run_figure):
    result = run_figure(figure15.run)

    for name, curve in result.series.items():
        # The paper plots log scale: the drop from eps = 0 (ZT-RP) to any
        # positive tolerance is at least ~5x for every k.
        assert curve[1] < curve[0] / 5, name
        # eps = 0 is the most expensive point of every curve.
        assert curve[0] == max(curve), name
