"""Dispatch-kernel wall-clock: per-event vs. chunk-scan vs. run kernel.

The columnar dispatch kernel (DESIGN.md §9) replaces the batched
replay's first-hit chunk loop — which re-scanned from every crossing —
with run segmentation and vectorized first-crossing detection, plus a
fully-columnar crossing application for ``columnar_maintenance``
protocols.  Its payoff is largest exactly where the old loop was
weakest: the dispatch-heavy regime (large jump scale ``sigma``), where
crossings are so frequent that the chunk loop degenerated into a
per-event scan with numpy overhead on top.

This benchmark times the **replay phase only** (assembly and the
initialization broadcast are identical across modes and would dilute
the measurement) on two profiles:

* ``default`` — the figure01 workload (400 streams, default sigma);
* ``dispatch_heavy`` — 10k streams at sigma=150, the regime named by
  the kernel's design target.

Ledger identity between every mode pair is asserted on every run; the
dispatch-heavy profile must clear 5x (2x under ``BENCH_SMOKE``, whose
shrunk horizon leaves less quiescence to amortize against).

Set ``BENCH_OUTPUT_DIR`` to also write a ``BENCH_dispatch.json``
artifact (uploaded by the CI bench-smoke job); ``BENCH_SMOKE=1``
shrinks the workloads for CI.
"""

from __future__ import annotations

import time

from bench_artifacts import SMOKE, write_artifact

from repro.api.spec import PROTOCOLS, QuerySpec
from repro.queries.range_query import RangeQuery
from repro.runtime.session import ExecutionSession
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace

MODES = ("event", "batch-chunk", "batch")
REPEATS = 1 if SMOKE else 3
#: The smoke horizon leaves fewer quiescent records per crossing, so
#: the asserted floor is looser there (the CI guard is against gross
#: regressions, not the locally measured headline).
SPEEDUP_FLOOR = 2.0 if SMOKE else 5.0

PROFILES = {
    "default": SyntheticConfig(
        n_streams=400, horizon=60.0 if SMOKE else 300.0, seed=0
    ),
    "dispatch_heavy": SyntheticConfig(
        n_streams=10_000,
        horizon=60.0 if SMOKE else 150.0,
        sigma=150.0,
        seed=0,
    ),
}

_RESULTS: dict[str, dict] = {"profiles": {}}


def _spec() -> QuerySpec:
    return QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0))


def _best_replay(trace, mode: str):
    """Best-of-N wall time of the replay phase alone.

    ``bench_artifacts.best_of`` times a whole closure; here each repeat
    needs a fresh session whose assembly and initialization must stay
    outside the clock, so the timing loop is inlined.
    """
    best = float("inf")
    snapshot = stats = None
    for _ in range(REPEATS):
        protocol = PROTOCOLS["zt-nrp"][1](_spec())
        session = ExecutionSession.for_streams(trace, protocol)
        session.initialize(time=0.0)
        start = time.perf_counter()
        session.replay_trace(trace, mode=mode)
        best = min(best, time.perf_counter() - start)
        snapshot = session.snapshot()
        stats = session.last_replay_stats
    return snapshot, stats, best


def test_bench_dispatch_kernel():
    print()
    for name, config in PROFILES.items():
        trace = generate_synthetic_trace(config)
        print(f"{name}: {trace.n_streams} streams, {trace.n_records} records")
        print(f"{'mode':>12} {'kernel':>9} {'replay':>9} {'speedup':>8}")
        snapshots = {}
        row: dict[str, object] = {"records": trace.n_records}
        t_event = None
        for mode in MODES:
            snapshot, stats, wall = _best_replay(trace, mode)
            snapshots[mode] = snapshot
            if mode == "event":
                t_event = wall
            speedup = t_event / wall
            kernel = stats["kernel"] or "-"
            print(f"{mode:>12} {kernel:>9} {wall * 1e3:>8.1f}ms "
                  f"{speedup:>7.2f}x")
            row[mode] = {
                "ms": round(wall * 1e3, 3),
                "kernel": stats["kernel"],
                "dispatches": stats["dispatches"],
                "columnar_reports": stats["columnar_reports"],
                "speedup_vs_event": round(speedup, 2),
            }
            assert snapshot == snapshots["event"], (
                f"{name}/{mode}: ledger diverged from per-event replay"
            )
        _RESULTS["profiles"][name] = row
    headline = _RESULTS["profiles"]["dispatch_heavy"]["batch"][
        "speedup_vs_event"
    ]
    _RESULTS["dispatch_heavy_speedup"] = headline
    write_artifact("dispatch", _RESULTS)
    assert headline >= SPEEDUP_FLOOR, (
        f"run kernel only {headline:.2f}x on the dispatch-heavy profile "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
