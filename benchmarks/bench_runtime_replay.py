"""Per-event vs. batched replay wall-clock on the figure01 workload.

The batched fast path pre-scans trace chunks with numpy against the
deployed filter bounds and applies quiescent records in bulk; only
potential violations take the per-event path.  Its payoff therefore
scales with the fraction of quiescent records — exactly the regime the
paper's filters are deployed for.  This benchmark replays the figure01
workload (synthetic, default profile) with checking disabled:

* across the figure's eps sweep for the value-window scheme, asserting
  a >= 2x speedup in the filtering regime (where the windows suppress
  the bulk of the traffic), and
* under RTP, asserting the adaptive bailout keeps even the
  broadcast-heavy protocol within a modest overhead of per-event replay.

Ledger equality between the two paths is asserted on every run (the
equivalence corpus lives in tests/runtime/test_session.py).

Set ``BENCH_OUTPUT_DIR`` to also write a ``BENCH_runtime_replay.json``
artifact (uploaded by the CI bench-smoke job); ``BENCH_SMOKE=1`` shrinks
the sweep for CI.
"""

from __future__ import annotations

from bench_artifacts import SMOKE, best_of, write_artifact

from repro.api import Deployment, Engine
from repro.protocols.rtp import RankToleranceProtocol
from repro.queries.knn import TopKQuery
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.tolerance.rank_tolerance import RankTolerance
from repro.valuebased.protocol import run_value_tolerance

# figure01's DEFAULT profile workload and sweep.
N_STREAMS = 400
HORIZON = 300.0
SEED = 0
K = 10
R = 5
EPS_VALUES = (
    [10.0, 150.0, 800.0] if SMOKE else [2.0, 10.0, 50.0, 150.0, 400.0, 800.0]
)
REPEATS = 1 if SMOKE else 3

_RESULTS: dict[str, list | dict] = {"value_window": [], "rtp": {}}


def _trace():
    return generate_synthetic_trace(
        SyntheticConfig(n_streams=N_STREAMS, horizon=HORIZON, seed=SEED)
    )


def _best_of(fn):
    return best_of(fn, REPEATS)


def test_bench_value_window_replay():
    trace = _trace()
    print()
    print(f"figure01 workload: {trace.n_streams} streams, "
          f"{trace.n_records} records, checking disabled")
    print(f"{'eps':>8} {'messages':>9} {'event':>9} {'batch':>9} {'speedup':>8}")
    filtering_event = filtering_batch = 0.0
    for eps in EPS_VALUES:
        event, t_event = _best_of(
            lambda e=eps: run_value_tolerance(
                trace, TopKQuery(k=K), e, check_every=0, replay_mode="event"
            )
        )
        batch, t_batch = _best_of(
            lambda e=eps: run_value_tolerance(
                trace, TopKQuery(k=K), e, check_every=0, replay_mode="batch"
            )
        )
        assert event.maintenance_messages == batch.maintenance_messages
        print(f"{eps:>8} {event.maintenance_messages:>9} "
              f"{t_event * 1e3:>8.1f}ms {t_batch * 1e3:>8.1f}ms "
              f"{t_event / t_batch:>7.2f}x")
        _RESULTS["value_window"].append(
            {
                "eps": eps,
                "maintenance_messages": event.maintenance_messages,
                "event_ms": round(t_event * 1e3, 3),
                "batch_ms": round(t_batch * 1e3, 3),
            }
        )
        # The filtering regime: windows suppress >= 90% of the records.
        if event.maintenance_messages < 0.1 * trace.n_records:
            filtering_event += t_event
            filtering_batch += t_batch
    assert filtering_batch > 0, (
        "no eps in the sweep reached the filtering regime; "
        "the speedup target is unmeasurable on this workload"
    )
    speedup = filtering_event / filtering_batch
    print(f"filtering regime aggregate: {speedup:.2f}x")
    _RESULTS["value_window_speedup"] = round(speedup, 2)
    write_artifact("runtime_replay", _RESULTS)
    assert speedup >= 2.0, (
        f"batched replay only {speedup:.2f}x faster in the filtering regime"
    )


def test_bench_rtp_replay_no_regression():
    trace = _trace()
    tolerance = RankTolerance(k=K, r=R)

    def run(mode):
        return Engine().run_protocol(
            trace,
            RankToleranceProtocol(TopKQuery(k=K), tolerance),
            tolerance=tolerance,
            deployment=Deployment.single(replay_mode=mode),
        )

    event, t_event = _best_of(lambda: run("event"))
    batch, t_batch = _best_of(lambda: run("batch"))
    assert event.ledger == batch.ledger
    print()
    print(f"RTP(r={R}): event {t_event * 1e3:.1f}ms "
          f"batch {t_batch * 1e3:.1f}ms ({t_event / t_batch:.2f}x)")
    _RESULTS["rtp"] = {
        "r": R,
        "event_ms": round(t_event * 1e3, 3),
        "batch_ms": round(t_batch * 1e3, 3),
    }
    write_artifact("runtime_replay", _RESULTS)
    # The bailout must keep the constraint-heavy protocol close to par.
    assert t_batch <= 1.5 * t_event
