"""Benchmark configuration.

Each benchmark regenerates one paper figure at the ``default`` profile
(tens of seconds in total), prints the reproduced series, and asserts the
figure's qualitative shape.  ``pedantic(rounds=1)`` is used throughout:
the experiments are deterministic, and a figure's value is its series,
not its wall-clock variance.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import FigureResult, Profile


@pytest.fixture(scope="session")
def profile() -> Profile:
    return Profile.DEFAULT


@pytest.fixture
def run_figure(benchmark, profile):
    """Run an experiment once under the benchmark timer and print it."""

    def runner(experiment_fn, **kwargs) -> FigureResult:
        result = benchmark.pedantic(
            experiment_fn,
            kwargs={"profile": profile, **kwargs},
            rounds=1,
            iterations=1,
        )
        print()
        print(result.format())
        return result

    return runner
