"""Figure 14 — FT-NRP: random vs boundary-nearest silencer placement."""

from repro.experiments import figure14


def test_figure14(run_figure):
    result = run_figure(figure14.run)

    random_curve = result.series["random"]
    boundary_curve = result.series["boundary-nearest"]
    # Boundary-nearest dominates overall...
    assert sum(boundary_curve) < sum(random_curve)
    # ...and the gap widens as tolerance grows (more silencers placed).
    first_gap = random_curve[0] - boundary_curve[0]
    last_gap = random_curve[-1] - boundary_curve[-1]
    assert last_gap > first_gap
