"""Figure 11 — FT-NRP: scalability over the number of streams."""

from repro.experiments import figure11


def test_figure11(run_figure):
    result = run_figure(figure11.run)

    for name, curve in result.series.items():
        # Cost grows with the stream population.
        assert curve[-1] > curve[0], name
    zero = result.series["eps+=eps-=0.0"]
    best = result.series[f"eps+=eps-={max(float(v) for v in _eps(result))}"]
    # At the largest population, tolerance yields a visible saving.
    assert best[-1] < zero[-1]


def _eps(result):
    return [name.split("=")[-1] for name in result.series]
