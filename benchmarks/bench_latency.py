"""The stale-belief violation study: requirement 2 degradation vs latency.

For ZT-RP, FT-RP and RTP, replay one seeded workload under the
latency-modeled channel at increasing symmetric fixed delays (in units
of the workload's mean inter-update time, 20), with the continuous
checker classifying every violation:

* **violation rate** — violating checks / total checks: how often the
  answer set breaks its tolerance once resolution is no longer atomic
  with the data;
* **message overhead** — maintenance messages vs the latency-0 run: the
  extra self-correction traffic stale beliefs provoke;
* **protocol bugs** — violations the staleness classifier could *not*
  attribute to latency (must be zero: the latency-0 differential suite
  is the bug oracle, and these runs must stay clean).

Asserts, per protocol and profile: zero violations at latency 0, a
monotone non-decreasing violation-rate curve over the latency grid, and
zero protocol-bug classifications at every point.

The SCALE profile (n = 10,000, sampled checking) uses a latency grid
100x smaller than the default's.  Staleness is relative to the
*server-side* event rate (n / mean inter-update time), which grows
linearly in n — and zero-tolerance protocols melt down well before the
per-stream-comparable delays: at n = 10k and latency 2, ZT-RP enters a
self-correction storm (each late self-correction triggers a resolution
that redeploys stale-belief constraints population-wide, spawning more
self-corrections: measured 30.2M messages for 1k records, 56k per
update).  The scaled grid keeps the study in the informative regime and
the storm onset is still visible in the message-overhead curve's tail.

Set ``BENCH_OUTPUT_DIR`` to write ``BENCH_latency.json`` (uploaded by
the CI latency-smoke job); ``BENCH_SMOKE=1`` runs the default profile
only, with a shorter horizon.
"""

from __future__ import annotations

import time as _time

from bench_artifacts import SMOKE, write_artifact

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.queries.knn import KnnQuery, TopKQuery
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance

#: Symmetric fixed delays, in virtual time (mean inter-update time: 20).
#: The scale profile divides by 100 = n_scale / n_default: staleness is
#: relative to the server-side event rate, which grows with n.
DEFAULT_LATENCIES = (0.0, 2.0, 8.0, 32.0)
SCALE_LATENCIES = (0.0, 0.02, 0.08, 0.32)

SPECS = {
    "zt-rp": QuerySpec(protocol="zt-rp", query=KnnQuery(q=500.0, k=5)),
    "ft-rp": QuerySpec(
        protocol="ft-rp",
        query=KnnQuery(q=500.0, k=5),
        tolerance=FractionTolerance(0.2, 0.2),
    ),
    "rtp": QuerySpec(
        protocol="rtp",
        query=TopKQuery(k=5),
        tolerance=RankTolerance(k=5, r=3),
    ),
}

PROFILES = {
    "default": {
        "n_streams": 100,
        "horizon": 200.0 if SMOKE else 400.0,
        "sigma": 60.0,
        "check_every": 1,
        "latencies": DEFAULT_LATENCIES,
    },
    "scale": {
        "n_streams": 10_000,
        "horizon": 40.0,
        "sigma": 60.0,
        "check_every": 50,
        "latencies": SCALE_LATENCIES,
    },
}

_RESULTS: dict = {"profiles": {}}


def _run_curve(profile_name: str, params: dict) -> dict:
    latencies = params["latencies"]
    workload = Workload.synthetic(
        n_streams=params["n_streams"],
        horizon=params["horizon"],
        sigma=params["sigma"],
        seed=0,
    )
    trace = workload.materialize()
    engine = Engine()
    print(
        f"\n[{profile_name}] n={trace.n_streams}, {trace.n_records} records, "
        f"sigma={params['sigma']:g}, check_every={params['check_every']}, "
        f"latencies {list(latencies)}"
    )
    header = (
        f"{'protocol':>8} {'latency':>8} {'viol.rate':>10} {'overhead':>9} "
        f"{'bugs':>5} {'msgs':>8} {'wall':>7}"
    )
    print(header)
    curves: dict = {"latencies": list(latencies)}
    for name, spec in SPECS.items():
        rates: list[float] = []
        overheads: list[float] = []
        bugs: list[int] = []
        messages: list[int] = []
        base_messages: int | None = None
        for latency in latencies:
            started = _time.perf_counter()
            report = engine.run(
                spec,
                workload,
                Deployment.single(
                    check_every=params["check_every"], latency=latency
                ),
            )
            wall = _time.perf_counter() - started
            inherent = report.extras["violations_inherent_latency"]
            bug_count = report.extras["violations_protocol_bug"]
            rate = (inherent + bug_count) / max(report.checks, 1)
            if base_messages is None:
                base_messages = max(report.maintenance_messages, 1)
            rates.append(rate)
            overheads.append(report.maintenance_messages / base_messages)
            bugs.append(bug_count)
            messages.append(report.maintenance_messages)
            print(
                f"{name:>8} {latency:>8g} {rate:>10.4f} "
                f"{overheads[-1]:>8.2f}x {bug_count:>5} "
                f"{report.maintenance_messages:>8} {wall:>6.2f}s"
            )
        curves[name] = {
            "violation_rate": rates,
            "message_overhead": overheads,
            "protocol_bugs": bugs,
            "maintenance_messages": messages,
        }
    return curves


def _assert_clean(profile_name: str, curves: dict) -> None:
    for name, curve in curves.items():
        if name == "latencies":
            continue
        assert all(b == 0 for b in curve["protocol_bugs"]), (
            f"[{profile_name}] {name}: checker attributed "
            f"{sum(curve['protocol_bugs'])} violation(s) to the protocol — "
            f"run the latency-0 differential suite to localize the bug"
        )


def _assert_monotone(profile_name: str, curves: dict) -> None:
    for name, curve in curves.items():
        if name == "latencies":
            continue
        rates = curve["violation_rate"]
        assert rates[0] == 0.0, (
            f"[{profile_name}] {name}: latency 0 must be violation-free, "
            f"got rate {rates[0]:.4f}"
        )
        for a, b in zip(rates, rates[1:]):
            assert b >= a - 1e-12, (
                f"[{profile_name}] {name}: violation rate not monotone in "
                f"latency: {rates}"
            )
        assert rates[-1] > 0.0, (
            f"[{profile_name}] {name}: the largest latency produced no "
            f"violations — the grid no longer exercises staleness"
        )


def test_bench_latency_violation_study():
    curves = _run_curve("default", PROFILES["default"])
    _RESULTS["profiles"]["default"] = curves
    _assert_clean("default", curves)
    _assert_monotone("default", curves)
    write_artifact("latency", _RESULTS)


def test_bench_latency_scale_profile():
    if SMOKE:
        print("\n[scale] skipped under BENCH_SMOKE")
        return
    curves = _run_curve("scale", PROFILES["scale"])
    _RESULTS["profiles"]["scale"] = curves
    _assert_clean("scale", curves)
    _assert_monotone("scale", curves)
    write_artifact("latency", _RESULTS)


# ----------------------------------------------------------------------
# Transport rows: nonzero latency across the process boundary
# ----------------------------------------------------------------------
TRANSPORT_MODEL_DELAY = 0.4  # symmetric fixed delay, virtual time


def _sequential_latency_wall(trace, protocol, n_shards, model):
    from repro.runtime.session import ExecutionSession

    session = ExecutionSession.for_streams_sharded(
        trace, protocol, n_shards, latency=model
    )
    session.initialize(time=0.0)
    started = _time.perf_counter()
    session.replay_trace(trace)
    return _time.perf_counter() - started, session.snapshot()


def _transport_latency_wall(trace, protocol, n_shards, model):
    """Modeled wall, per bench_sharded's capacity model: (coordinator
    wall - reply-wait) + the slowest worker's busy time."""
    from repro.server.transport import TransportShardedServer

    server = TransportShardedServer(trace, protocol, n_shards, latency=model)
    with server:
        server.initialize(0.0)
        wait_before = server.bus.stats.recv_wait_seconds
        started = _time.perf_counter()
        server.replay(horizon=trace.horizon)
        wall = _time.perf_counter() - started
        wait = server.bus.stats.recv_wait_seconds - wait_before
        stats = server.transport_stats()
    modeled = (wall - wait) + max(stats["worker_busy_seconds"])
    return modeled, server.snapshot(), {
        "wall_seconds": wall,
        "recv_wait_seconds": wait,
        "epochs": stats["epochs"],
        "in_flight_deliveries": stats["in_flight_deliveries"],
        "in_flight_leaked": stats["in_flight_leaked"],
    }


def test_bench_latency_transport_throughput():
    """Parallel vs sequential modeled throughput under a nonzero model.

    The in-flight plane's cost row: RTP at 2 and 4 shards under a fixed
    symmetric delay, sequential sharded serving vs the shard transport,
    ledgers byte-identical at every point (the smoke contract — the
    plane must actually step deferred deliveries, not drop them).
    """
    from repro.network.latency import FixedLatency

    spec = SPECS["rtp"]
    workload = Workload.synthetic(
        n_streams=1_000 if SMOKE else 4_000,
        horizon=20.0 if SMOKE else 40.0,
        sigma=60.0,
        seed=0,
    )
    trace = workload.materialize()
    model = FixedLatency.symmetric(TRANSPORT_MODEL_DELAY)
    print(
        f"\n[transport] n={trace.n_streams}, {trace.n_records} records, "
        f"fixed delay {TRANSPORT_MODEL_DELAY:g}"
    )
    print(
        f"{'shards':>8} {'seq':>8} {'modeled':>8} {'speedup':>8} "
        f"{'inflight':>9} {'leaked':>7}"
    )
    rows: dict = {}
    for n_shards in (2, 4):
        t_seq, seq_ledger = _sequential_latency_wall(
            trace, spec.build(), n_shards, model
        )
        modeled, ledger, diag = _transport_latency_wall(
            trace, spec.build(), n_shards, model
        )
        assert ledger == seq_ledger, (
            f"transport({n_shards}) ledger diverged from sequential "
            f"sharded serving under latency {TRANSPORT_MODEL_DELAY:g}"
        )
        assert diag["in_flight_deliveries"] > 0, (
            f"transport({n_shards}) replay never stepped the in-flight "
            f"plane — the latency model was not exercised"
        )
        rows[str(n_shards)] = {
            "sequential_replay_wall_seconds": t_seq,
            "modeled_parallel_wall_seconds": modeled,
            "speedup_vs_sequential": t_seq / modeled,
            **diag,
        }
        print(
            f"{n_shards:>8} {t_seq:>7.3f}s {modeled:>7.3f}s "
            f"{t_seq / modeled:>7.2f}x {diag['in_flight_deliveries']:>9} "
            f"{diag['in_flight_leaked']:>7}"
        )
    _RESULTS["transport"] = {
        "model": {"kind": "fixed", "delay": TRANSPORT_MODEL_DELAY},
        "shards": rows,
    }
    write_artifact("latency", _RESULTS)
