"""Figure 1 (motivation) — value-based vs rank-based tolerance."""

from repro.experiments import figure01


def test_figure01(run_figure):
    result = run_figure(figure01.run)

    messages = result.series["value-eps messages"]
    worst_ranks = result.series["value-eps worst rank"]
    # Larger eps: fewer messages...
    assert messages[-1] < messages[0]
    # ...but unboundedly worse ranks (Figure 1's "eps_l" failure mode).
    assert worst_ranks[-1] > worst_ranks[0]
    # At the largest eps, the observed rank blows past RTP's guarantee.
    rtp_bound = result.series[[s for s in result.series if "rank bound" in s][0]][0]
    assert worst_ranks[-1] > rtp_bound
