"""Ablation — FT-NRP re-initialization when silencer pools run dry.

The paper notes that once n+ = n- = 0 the protocol "reduces to ZT-NRP"
and initialization "may be run again" to re-exploit the tolerance.  This
bench compares the two behaviours on a long trace where pools do deplete:
re-seeding silencers costs a probe-all + redeploy but restores the
suppression of boundary churn.
"""

from repro.harness.reporting import format_series
from repro.api import Engine
from repro.protocols.ft_nrp import FractionToleranceRangeProtocol
from repro.queries.range_query import RangeQuery
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.tolerance.fraction_tolerance import FractionTolerance

EPS_VALUES = [0.1, 0.2, 0.3, 0.4]
QUERY = RangeQuery(400.0, 600.0)

run_protocol = Engine().run_protocol


def _run_ablation():
    trace = generate_synthetic_trace(
        SyntheticConfig(n_streams=500, horizon=800.0, seed=2)
    )
    series = {"never re-init": [], "re-init on exhaustion": []}
    extras = {"reinitializations": []}
    for eps in EPS_VALUES:
        for label, reinit in (
            ("never re-init", False),
            ("re-init on exhaustion", True),
        ):
            tolerance = FractionTolerance(eps, eps)
            protocol = FractionToleranceRangeProtocol(
                QUERY, tolerance, reinitialize_when_exhausted=reinit
            )
            result = run_protocol(trace, protocol, tolerance=tolerance)
            series[label].append(result.maintenance_messages)
            if reinit:
                extras["reinitializations"].append(
                    protocol.reinitializations
                )
    return series, extras


def test_ablation_ft_nrp_reinitialization(benchmark):
    series, extras = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    print()
    print(
        format_series(
            "eps+/eps-",
            EPS_VALUES,
            {**series, "re-inits": extras["reinitializations"]},
            title="Ablation — FT-NRP re-initialization on pool exhaustion",
        )
    )
    # Both behaviours are legal; the bench documents the trade-off.
    assert all(v >= 0 for v in series["never re-init"])
