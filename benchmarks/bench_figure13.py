"""Figure 13 — FT-NRP: effect of data fluctuation (sigma sweep)."""

from repro.experiments import figure13


def test_figure13(run_figure):
    result = run_figure(figure13.run)

    sigmas = sorted(
        float(name.split("=")[1]) for name in result.series
    )
    # Curves are vertically ordered by sigma: more fluctuation, more
    # boundary crossings, more messages — at every tolerance level.
    for low, high in zip(sigmas, sigmas[1:]):
        low_curve = result.series[f"sigma={low:g}"]
        high_curve = result.series[f"sigma={high:g}"]
        assert sum(high_curve) > sum(low_curve), (low, high)
