"""Figure 12 — FT-NRP: effect of eps+/eps- (synthetic data)."""

from repro.experiments import figure12


def test_figure12(run_figure):
    result = run_figure(figure12.run)

    zero_corner = result.series["eps-=0.0"][0]
    best_corner = result.series[f"eps-={result.x_values[-1]}"][-1]
    # The paper's surface slopes down toward high tolerance.
    assert best_corner < zero_corner * 0.8
