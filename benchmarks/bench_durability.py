"""Durability-tier overhead: journal and fsync cost vs the plain run.

Two measurements:

* **Overhead grid** — one lively ZT-NRP profile run plain (the
  baseline) and then under every interesting durability configuration:
  journal with ``fsync`` never / interval / every over RAM planes, and
  never / every over ``storage="mmap"`` planes.  Every durable run's
  ledger must be byte-identical to the baseline's (the WAL wrapper is
  observationally invisible); the artifact tracks the wall-clock
  multiplier of each rung so the cost of durability is a measured
  curve, not folklore.

* **Large-population mmap row** — n = 1,000,000 streams (200k under
  ``BENCH_SMOKE``) with disk-backed planes and a journal at
  ``fsync="never"``: the population whose state planes should *not* be
  RAM-resident.  Records the end-to-end wall and journal bytes; no
  baseline comparison (the point is that it runs at all, with state on
  disk).

Asserts ledger byte-equality for every durable grid run and a sane
overhead ordering (``fsync="every"`` is the most expensive rung; the
guard is intentionally loose — per-event fsync cost is
filesystem-dependent).

Set ``BENCH_OUTPUT_DIR`` to write ``BENCH_durability.json`` (uploaded
by the CI bench-smoke job); ``BENCH_SMOKE=1`` shrinks the grid profile
and the large row for CI.
"""

from __future__ import annotations

import tempfile

from bench_artifacts import SMOKE, best_of, write_artifact

from repro.api import Deployment, Engine, QuerySpec, Workload
from repro.durability import DurabilityPolicy
from repro.queries.range_query import RangeQuery

N_STREAMS = 5_000
SIGMA = 150.0
HORIZON = 40.0 if SMOKE else 120.0
LARGE_N = 200_000 if SMOKE else 1_000_000
LARGE_HORIZON = 1.0
REPEATS = 1 if SMOKE else 3
SEGMENT_RECORDS = 4096

#: label -> (fsync policy, plane storage).  ``None`` is the plain
#: baseline (no journal, no policy at all).
GRID: dict[str, tuple[str, str] | None] = {
    "off": None,
    "never+ram": ("never", "ram"),
    "interval+ram": ("interval", "ram"),
    "every+ram": ("every", "ram"),
    "never+mmap": ("never", "mmap"),
    "every+mmap": ("every", "mmap"),
}

_RESULTS: dict = {
    "profile": {
        "n_streams": N_STREAMS,
        "sigma": SIGMA,
        "horizon": HORIZON,
        "segment_records": SEGMENT_RECORDS,
    },
    "grid": {},
    "large": {},
}


def _spec() -> QuerySpec:
    return QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0))


def _durable_run(engine, spec, workload, fsync, storage):
    """One durable run in a throwaway directory; returns the report."""
    with tempfile.TemporaryDirectory(prefix="bench_durability_") as tmp:
        policy = DurabilityPolicy(
            run_dir=tmp + "/run",
            fsync=fsync,
            storage=storage,
            segment_records=SEGMENT_RECORDS,
        )
        return engine.run(spec, workload, Deployment.single(durable=policy))


def test_bench_durability_overhead():
    workload = Workload.synthetic(
        n_streams=N_STREAMS, horizon=HORIZON, sigma=SIGMA, seed=0
    )
    trace = workload.materialize()
    engine = Engine()
    spec = _spec()
    print()
    print(
        f"durability overhead: {trace.n_streams} streams, "
        f"{trace.n_records} records, sigma={SIGMA:g}, ZT-NRP [400, 600]"
    )
    print(
        f"{'config':>14} {'wall':>8} {'overhead':>9} {'journal':>10} "
        f"{'fsyncs':>7} {'ledger':>7}"
    )

    baseline, t_base = best_of(
        lambda: engine.run(spec, workload, Deployment.single()), REPEATS
    )
    print(
        f"{'off':>14} {t_base:>7.3f}s {'1.00x':>9} {'-':>10} {'-':>7} "
        f"{'base':>7}"
    )
    _RESULTS["grid"]["off"] = {"wall_seconds": t_base, "overhead_x": 1.0}

    walls = {}
    for label, config in GRID.items():
        if config is None:
            continue
        fsync, storage = config
        report, wall = best_of(
            lambda f=fsync, s=storage: _durable_run(
                engine, spec, workload, f, s
            ),
            REPEATS,
        )
        assert report.ledger == baseline.ledger, (
            f"durable run {label} ledger diverged from plain baseline"
        )
        assert report.final_answer == baseline.final_answer
        journal = report.extras["durability"]["journal"]
        overhead = wall / t_base
        walls[label] = wall
        print(
            f"{label:>14} {wall:>7.3f}s {overhead:>8.2f}x "
            f"{journal['bytes'] / 1e6:>8.1f}MB {journal['fsyncs']:>7} "
            f"{'equal':>7}"
        )
        _RESULTS["grid"][label] = {
            "wall_seconds": wall,
            "overhead_x": overhead,
            "journal_bytes": journal["bytes"],
            "journal_appends": journal["appends"],
            "fsyncs": journal["fsyncs"],
        }

    # Per-event fsync is the expensive rung; the cheap rungs must not
    # cost more than it (loose: media and page cache vary by machine).
    assert walls["every+ram"] >= walls["never+ram"] * 0.8


def test_bench_durability_large_population_mmap():
    """n >= 1M streams with disk-backed planes and a journal."""
    workload = Workload.synthetic(
        n_streams=LARGE_N, horizon=LARGE_HORIZON, seed=7
    )
    trace = workload.materialize()
    engine = Engine()
    spec = _spec()
    print()
    print(
        f"large-population mmap: {trace.n_streams} streams, "
        f"{trace.n_records} records, storage=mmap, fsync=never"
    )

    with tempfile.TemporaryDirectory(prefix="bench_durability_big_") as tmp:
        policy = DurabilityPolicy(
            run_dir=tmp + "/run",
            fsync="never",
            storage="mmap",
            segment_records=8192,
        )
        # A 1M-stream run is not worth repeating: time it once.
        report, wall = best_of(
            lambda: engine.run(
                spec, workload, Deployment.single(durable=policy)
            ),
            1,
        )

    durability = report.extras["durability"]
    assert durability["storage"] == "mmap"
    assert durability["journal"]["bytes"] > 0
    throughput = trace.n_records / wall if wall else 0.0
    print(
        f"{'wall':>14} {wall:>7.1f}s  journal "
        f"{durability['journal']['bytes'] / 1e6:.1f}MB  "
        f"replay {throughput / 1e3:.1f}k rec/s"
    )
    _RESULTS["large"] = {
        "n_streams": LARGE_N,
        "n_records": int(trace.n_records),
        "horizon": LARGE_HORIZON,
        "wall_seconds": wall,
        "journal_bytes": durability["journal"]["bytes"],
        "storage": "mmap",
    }

    write_artifact("durability", _RESULTS)
