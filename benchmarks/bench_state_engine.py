"""Recompute-path speedup of the columnar state engine.

The seed protocols re-derived rank order with a full python ``sorted()``
over a per-protocol dict — one key call per stream — on every
recomputation (ZT-RP / FT-RP resolve a fresh collection, RTP re-reads
the full order after point updates).  The state engine replaces both
paths:

* **full-collection recompute** — vectorized bulk ingest into the
  :class:`~repro.state.table.StreamStateTable` plus a heap-style partial
  selection (:meth:`~repro.state.rank.RankView.leaders`) for the
  ``k + 1`` leaders: O(n) C-level work instead of O(n log n) python;
* **point-update order maintenance** — dirty-region repair of the
  maintained order instead of a full re-sort per read.

This bench measures both against faithful re-implementations of the
legacy dict+sorted code and asserts the >= 2x target of the state-engine
acceptance criteria at n >= 10k streams.  Set ``BENCH_OUTPUT_DIR`` to
also write a ``BENCH_state_engine.json`` artifact (the CI bench-smoke
job uploads it so the perf trajectory accumulates); ``BENCH_SMOKE=1``
shrinks the grid for CI.
"""

from __future__ import annotations

import time

import numpy as np
from bench_artifacts import SMOKE, write_artifact

from repro.queries.knn import KnnQuery
from repro.state.rank import RankView
from repro.state.table import StreamStateTable

GRID_N = [10_000] if SMOKE else [10_000, 20_000]
K = 50
ROUNDS = 10 if SMOKE else 25
SPEEDUP_TARGET = 2.0

_RESULTS: dict[str, list[dict]] = {"recompute": [], "point_update": []}


def _values(n: int, round_index: int, rng: np.random.Generator) -> np.ndarray:
    base = rng.normal(500.0, 120.0, size=n)
    return base + 0.1 * round_index


def _legacy_resolve(query, known: dict[int, float]) -> tuple[list[int], float]:
    """The seed's ZT-RP/FT-RP resolve: full python sort, lambda keys."""
    order = sorted(known, key=lambda i: (query.distance(known[i]), i))
    k = query.k
    d_in = query.distance(known[order[k - 1]])
    d_out = query.distance(known[order[k]])
    return order[:k], (d_in + d_out) / 2.0


def _engine_resolve(query, table, rank) -> tuple[list[int], float]:
    """The state-engine resolve: bulk column read + partial selection."""
    leaders = rank.leaders(query.k + 1)
    values = table.values
    k = query.k
    d_in = query.distance(float(values[leaders[k - 1]]))
    d_out = query.distance(float(values[leaders[k]]))
    return leaders[:k], (d_in + d_out) / 2.0


def _report(section: str, n: int, t_legacy: float, t_engine: float) -> float:
    speedup = t_legacy / t_engine
    _RESULTS[section].append(
        {
            "n_streams": n,
            "k": K,
            "rounds": ROUNDS,
            "legacy_ms": round(t_legacy * 1e3, 3),
            "engine_ms": round(t_engine * 1e3, 3),
            "speedup": round(speedup, 2),
        }
    )
    print(
        f"{section:>14} n={n:>6}: legacy {t_legacy * 1e3:>8.1f}ms "
        f"engine {t_engine * 1e3:>8.1f}ms  ({speedup:.1f}x)"
    )
    return speedup


def test_bench_full_collection_recompute():
    """ZT-RP/FT-RP's resolve: every value fresh, k+1 leaders needed."""
    print()
    query = KnnQuery(q=500.0, k=K)
    worst = float("inf")
    for n in GRID_N:
        rng = np.random.default_rng(7)
        collections = [_values(n, r, rng) for r in range(ROUNDS)]

        known: dict[int, float] = {}
        start = time.perf_counter()
        for vals in collections:
            for i in range(n):  # the seed stored one probe reply at a time
                known[i] = vals[i]
            legacy_top, legacy_thr = _legacy_resolve(query, known)
        t_legacy = time.perf_counter() - start

        table = StreamStateTable(n)
        rank = RankView(table, query.distance_array)
        start = time.perf_counter()
        for vals in collections:
            table.record_report_bulk(vals, 0.0)
            engine_top, engine_thr = _engine_resolve(query, table, rank)
        t_engine = time.perf_counter() - start

        assert engine_top == legacy_top
        assert engine_thr == legacy_thr
        worst = min(worst, _report("recompute", n, t_legacy, t_engine))
    write_artifact("state_engine", _RESULTS)
    assert worst >= SPEEDUP_TARGET, (
        f"recompute path only {worst:.2f}x faster (target {SPEEDUP_TARGET}x)"
    )


def test_bench_point_update_order_maintenance():
    """RTP's ranked-known read after a point update (dirty repair)."""
    print()
    query = KnnQuery(q=500.0, k=K)
    worst = float("inf")
    for n in GRID_N:
        rng = np.random.default_rng(11)
        initial = _values(n, 0, rng)
        touched = rng.integers(0, n, size=ROUNDS)
        moved = rng.normal(500.0, 200.0, size=ROUNDS)

        known = {i: float(initial[i]) for i in range(n)}
        start = time.perf_counter()
        legacy_orders = []
        for r in range(ROUNDS):
            known[int(touched[r])] = float(moved[r])
            legacy_orders.append(
                sorted(known, key=lambda i: (query.distance(known[i]), i))
            )
        t_legacy = time.perf_counter() - start

        table = StreamStateTable(n)
        table.record_report_bulk(initial, 0.0)
        rank = RankView(table, query.distance_array)
        # In a live run the order exists from initialization; build it
        # outside the timer so rounds measure pure repair-and-read.
        rank.order()
        start = time.perf_counter()
        engine_orders = []
        for r in range(ROUNDS):
            table.record_report(int(touched[r]), float(moved[r]), float(r))
            engine_orders.append(rank.order())
        t_engine = time.perf_counter() - start

        assert engine_orders == legacy_orders
        worst = min(worst, _report("point_update", n, t_legacy, t_engine))
    write_artifact("state_engine", _RESULTS)
    assert worst >= SPEEDUP_TARGET, (
        f"point-update path only {worst:.2f}x faster (target {SPEEDUP_TARGET}x)"
    )
