"""Figure 10 — FT-NRP: effect of eps+/eps- (TCP data)."""

from repro.experiments import figure10


def test_figure10(run_figure):
    result = run_figure(figure10.run)

    eps_minus_low = result.series[f"eps-={result.x_values[0]}"]
    eps_minus_high = result.series[f"eps-={result.x_values[-1]}"]
    # The high-tolerance corner is the cheapest region of the surface.
    assert eps_minus_high[-1] < eps_minus_low[0]
    # More eps- tolerance never hurts much at fixed eps+ (noise margin).
    assert sum(eps_minus_high) <= sum(eps_minus_low) * 1.05
