"""Extension bench — multi-query sharing vs independent deployments.

Quantifies the Section-7 extension: four users watch the same zone with
different error budgets.  Independent deployments pay for each user's
filter violations separately; the shared deployment sends one physical
update per violating value change, fanned out server-side.
"""

from repro.harness.reporting import format_table
from repro.api import Engine
from repro.multiquery import execute_multi_query as run_multi_query
from repro.protocols.ft_nrp import FractionToleranceRangeProtocol
from repro.protocols.zt_nrp import ZeroToleranceRangeProtocol
from repro.queries.range_query import RangeQuery
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.tolerance.fraction_tolerance import FractionTolerance

run_protocol = Engine().run_protocol

TOLERANCES = [0.0, 0.1, 0.2, 0.4]


def _make_queries():
    queries = {}
    for i, eps in enumerate(TOLERANCES):
        query = RangeQuery(400.0, 600.0)
        if eps == 0.0:
            queries[f"user{i}"] = (
                ZeroToleranceRangeProtocol(query),
                query,
                None,
            )
        else:
            tolerance = FractionTolerance(eps, eps)
            queries[f"user{i}"] = (
                FractionToleranceRangeProtocol(query, tolerance),
                query,
                tolerance,
            )
    return queries


def _run_comparison():
    trace = generate_synthetic_trace(
        SyntheticConfig(n_streams=400, horizon=400.0, seed=3)
    )
    shared = run_multi_query(trace, _make_queries())
    independent = sum(
        run_protocol(trace, protocol, tolerance=tolerance).maintenance_messages
        for protocol, _, tolerance in _make_queries().values()
    )
    return shared, independent


def test_extension_multiquery_sharing(benchmark):
    shared, independent = benchmark.pedantic(
        _run_comparison, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            [
                {
                    "deployment": "independent (4 systems)",
                    "messages": independent,
                    "sharing factor": 1.0,
                },
                {
                    "deployment": "shared (multi-query)",
                    "messages": shared.maintenance_messages,
                    "sharing factor": round(shared.sharing_factor, 2),
                },
            ],
            title="Extension — four users, one zone, shared sources",
        )
    )
    assert shared.maintenance_messages < independent
    assert shared.sharing_factor > 1.5
