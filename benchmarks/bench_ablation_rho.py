"""Ablation — FT-RP's rho+/rho- split policy (Equation 16 frontier).

Equation 16 fixes the relationship between rho+ and rho- but leaves one
degree of freedom.  This bench compares the three named frontier points
over the synthetic workload to show the split matters for cost (all three
are sound — the test suite verifies that separately).
"""

from repro.harness.reporting import format_series
from repro.api import Engine
from repro.protocols.ft_rp import FractionToleranceKnnProtocol
from repro.queries.knn import KnnQuery
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.knn_fraction import RhoPolicy

run_protocol = Engine().run_protocol

EPS_VALUES = [0.1, 0.2, 0.3, 0.4]
K = 60


def _run_ablation():
    trace = generate_synthetic_trace(
        SyntheticConfig(n_streams=300, horizon=200.0, seed=0)
    )
    series = {}
    for policy in RhoPolicy:
        curve = []
        for eps in EPS_VALUES:
            tolerance = FractionTolerance(eps, eps)
            protocol = FractionToleranceKnnProtocol(
                KnnQuery(500.0, K), tolerance, policy=policy
            )
            result = run_protocol(trace, protocol, tolerance=tolerance)
            curve.append(result.maintenance_messages)
        series[policy.value] = curve
    return series


def test_ablation_rho_policy(benchmark):
    series = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    print()
    print(
        format_series(
            "eps+/eps-",
            EPS_VALUES,
            series,
            title=f"Ablation — FT-RP rho policy (k={K})",
        )
    )
    # Every policy exploits tolerance; none degenerates to ZT-RP cost.
    for policy, curve in series.items():
        assert curve[-1] <= curve[0], policy
