"""Ablation — RTP's Case-2 expanding search (Figure 5, Step 4).

When an answer member leaves R and no tracked replacement exists, the
paper expands a probe region outward over stale ranks instead of
re-running the full initialization.  This bench quantifies what that
machinery saves.
"""

from repro.harness.reporting import format_series
from repro.api import Engine
from repro.protocols.rtp import RankToleranceProtocol
from repro.queries.knn import KnnQuery
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.tolerance.rank_tolerance import RankTolerance

run_protocol = Engine().run_protocol

R_VALUES = [0, 2, 4, 8]
K = 10


def _run_ablation():
    trace = generate_synthetic_trace(
        SyntheticConfig(n_streams=400, horizon=250.0, seed=1)
    )
    series = {"expanding search": [], "full re-init": []}
    for r in R_VALUES:
        for label, expand in (
            ("expanding search", True),
            ("full re-init", False),
        ):
            tolerance = RankTolerance(k=K, r=r)
            protocol = RankToleranceProtocol(
                KnnQuery(500.0, K), tolerance, expand_search=expand
            )
            result = run_protocol(trace, protocol, tolerance=tolerance)
            series[label].append(result.maintenance_messages)
    return series


def test_ablation_rtp_expanding_search(benchmark):
    series = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    print()
    print(
        format_series(
            "r",
            R_VALUES,
            series,
            title=f"Ablation — RTP Case-2 expanding search (k={K})",
        )
    )
    # The expanding search must not be worse overall than re-initializing.
    assert sum(series["expanding search"]) <= sum(series["full re-init"])
