"""Sharded-deployment replay throughput at n = 10,000 streams.

Three measurements over one lively ZT-NRP workload (range [400, 600],
sigma = 150 — dispatch-heavy, the regime where replay work scales with
traffic rather than vanishing into the quiescence pre-scan):

* **single** — the baseline one-server replay (records/s).
* **sharded end-to-end** — ``Deployment.sharded(n, parallel=True)``
  through the engine: correctness (ledger byte-equality vs single) and
  the wall-clock on *this* machine's cores.
* **per-shard-server capacity** — each shard's replay timed in
  isolation; deployment throughput = total records / slowest shard.
  This is the production scale-out metric: shard servers are separate
  machines (or cores), so the deployment sustains the full record
  stream at the pace of its slowest shard.  On a single-core CI box the
  end-to-end pool wall-clock cannot beat the baseline (nothing can —
  there is one core), while the per-shard capacity measures exactly
  what the topology buys; with one core per shard the end-to-end
  wall-clock converges to it.

Asserts >= 1.5x per-shard-server capacity at 4 shards (measured ~4x:
splitting a 10k-stream session also shrinks per-shard assembly and
pre-scan state, so capacity scales slightly super-linearly), and ledger
byte-equality for every variant.  Also reports the sequential sharded
*coordinator* overhead on the rank-heavy RTP path (per-shard RankViews
+ k-way merge vs one global RankView) — tracked in the artifact, not
asserted.

Set ``BENCH_OUTPUT_DIR`` to write ``BENCH_sharded.json`` (uploaded by
the CI bench-smoke job); ``BENCH_SMOKE=1`` shrinks horizons for CI.
"""

from __future__ import annotations

from bench_artifacts import SMOKE, best_of, write_artifact

from repro.api import Deployment, Engine, QuerySpec, Workload
# This bench deliberately times the engine's own shard-replay worker in
# isolation (the per-shard-server capacity model), so it reaches into
# the private helpers instead of the public facade.
from repro.api.engine import _restrict_to_shard, _shard_replay_worker
from repro.queries.knn import TopKQuery
from repro.queries.range_query import RangeQuery
from repro.state.sharding import shard_ranges
from repro.tolerance.rank_tolerance import RankTolerance

N_STREAMS = 10_000
SIGMA = 150.0
HORIZON = 60.0 if SMOKE else 150.0
RTP_HORIZON = 15.0 if SMOKE else 40.0
SHARD_COUNTS = (1, 2, 4)
REPEATS = 1 if SMOKE else 3
MIN_SPEEDUP_AT_4 = 1.5

_RESULTS: dict = {
    "n_streams": N_STREAMS,
    "sigma": SIGMA,
    "horizon": HORIZON,
    "shards": {},
    "rtp_coordinator": {},
}


def _workload() -> Workload:
    return Workload.synthetic(
        n_streams=N_STREAMS, horizon=HORIZON, sigma=SIGMA, seed=0
    )


def _spec() -> QuerySpec:
    return QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0))


def _best_of(fn):
    return best_of(fn, REPEATS)


def test_bench_sharded_replay_throughput():
    workload = _workload()
    trace = workload.materialize()
    engine = Engine()
    spec = _spec()
    print()
    print(
        f"sharded replay: {trace.n_streams} streams, {trace.n_records} "
        f"records, sigma={SIGMA:g} (dispatch-heavy), ZT-NRP [400, 600]"
    )

    single, t_single = _best_of(
        lambda: engine.run(spec, workload, Deployment.single())
    )
    base_throughput = trace.n_records / t_single
    print(
        f"{'topology':>22} {'wall':>8} {'capacity':>12} {'speedup':>8} "
        f"{'ledger':>8}"
    )
    print(
        f"{'single':>22} {t_single:>7.3f}s {base_throughput / 1e3:>10.0f}k/s "
        f"{'1.00x':>8} {'base':>8}"
    )
    _RESULTS["shards"]["1"] = {
        "wall_seconds": t_single,
        "capacity_records_per_s": base_throughput,
    }

    speedups = {}
    for n_shards in SHARD_COUNTS[1:]:
        deployment = Deployment.sharded(n_shards, parallel=True)
        fanned, t_fanned = _best_of(
            lambda d=deployment: engine.run(spec, workload, d)
        )
        assert fanned.ledger == single.ledger, (
            f"sharded({n_shards}) ledger diverged from single-server"
        )
        assert fanned.final_answer == single.final_answer

        # Per-shard-server capacity: time each shard replay in
        # isolation; the deployment drains the stream at the pace of
        # its slowest shard server.
        shard_walls = []
        for lo, hi in shard_ranges(trace.n_streams, n_shards):
            job = (
                _restrict_to_shard(trace, lo, hi),
                spec.build(),
                "auto",
                4096,
                lo,
                None,
            )
            _, t_shard = _best_of(lambda j=job: _shard_replay_worker(j))
            shard_walls.append(t_shard)
        capacity = trace.n_records / max(shard_walls)
        speedup = capacity / base_throughput
        speedups[n_shards] = speedup
        print(
            f"{f'sharded({n_shards}) parallel':>22} {t_fanned:>7.3f}s "
            f"{capacity / 1e3:>10.0f}k/s {speedup:>7.2f}x "
            f"{'equal':>8}"
        )
        _RESULTS["shards"][str(n_shards)] = {
            "end_to_end_wall_seconds": t_fanned,
            "max_shard_wall_seconds": max(shard_walls),
            "capacity_records_per_s": capacity,
            "speedup_vs_single": speedup,
        }

    print(
        f"\nper-shard-server capacity at 4 shards: "
        f"{speedups[4]:.2f}x single (floor {MIN_SPEEDUP_AT_4}x)"
    )
    assert speedups[4] >= MIN_SPEEDUP_AT_4, (
        f"sharded(4) capacity speedup {speedups[4]:.2f}x "
        f"< {MIN_SPEEDUP_AT_4}x"
    )
    write_artifact("sharded", _RESULTS)


def test_bench_sharded_rank_coordinator_overhead():
    """RTP on the sequential sharded coordinator vs one server.

    The coordinator serves every rank read through per-shard RankViews
    plus the k-way heap merge; this tracks its overhead (no assertion —
    the contract is ledger equality, asserted here, and the overhead is
    artifact data for the perf trajectory).
    """
    workload = Workload.synthetic(
        n_streams=N_STREAMS, horizon=RTP_HORIZON, seed=0
    )
    trace = workload.materialize()
    engine = Engine()
    spec = QuerySpec(
        protocol="rtp",
        query=TopKQuery(k=10),
        tolerance=RankTolerance(k=10, r=5),
    )
    single, t_single = _best_of(
        lambda: engine.run(spec, workload, Deployment.single())
    )
    sharded, t_sharded = _best_of(
        lambda: engine.run(spec, workload, Deployment.sharded(4))
    )
    assert sharded.ledger == single.ledger
    overhead = t_sharded / t_single
    print()
    print(
        f"RTP n={N_STREAMS}: single {t_single:.2f}s, sharded(4) "
        f"coordinator {t_sharded:.2f}s ({overhead:.2f}x), "
        f"{single.maintenance_messages} messages, ledgers equal"
    )
    _RESULTS["rtp_coordinator"] = {
        "single_wall_seconds": t_single,
        "sharded4_wall_seconds": t_sharded,
        "overhead": overhead,
        "maintenance_messages": single.maintenance_messages,
    }
    write_artifact("sharded", _RESULTS)
