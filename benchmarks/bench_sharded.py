"""Sharded-deployment replay throughput at n = 10,000 streams.

Four measurements; the first three over one lively ZT-NRP workload
(range [400, 600], sigma = 150 — dispatch-heavy, the regime where
replay work scales with traffic rather than vanishing into the
quiescence pre-scan):

* **single** — the baseline one-server replay (records/s).
* **sharded end-to-end** — ``Deployment.sharded(n, parallel=True)``
  through the engine: correctness (ledger byte-equality vs single) and
  the wall-clock on *this* machine's cores.
* **per-shard-server capacity** — each shard's replay timed in
  isolation; deployment throughput = total records / slowest shard.
  This is the production scale-out metric: shard servers are separate
  machines (or cores), so the deployment sustains the full record
  stream at the pace of its slowest shard.  On a single-core CI box the
  end-to-end pool wall-clock cannot beat the baseline (nothing can —
  there is one core), while the per-shard capacity measures exactly
  what the topology buys; with one core per shard the end-to-end
  wall-clock converges to it.

The fourth is the *coupled*-protocol curve: RTP (and ZT-RP at 4
shards) on the process-parallel shard transport
(``repro/server/transport.py``) vs sequential sharded serving, 1/2/4
shards.  Ledgers must be byte-identical; throughput uses the capacity
model adapted to the epoch-stepped coordinator — modeled parallel wall
= (coordinator wall - time blocked waiting on worker replies) + the
slowest worker's busy time.  On a single-core box the raw wall-clock
cannot beat sequential (there is one core and the coordinator is
serialized on it), while the modeled wall charges exactly the
single-machine work that cannot overlap: coordinator compute plus the
critical-path worker.

The fifth is the same curve for the *spatial* transport
(``SpatialTransportShardedServer``): ZT-RP-2d on the n=10k
moving-objects workload at 1/2/4 shards plus FT-RP-2d (tight 0.05
fraction tolerance) at 4 — the probe-heavy regimes where per-worker
point-probe batches and geometric pre-scans dominate replay.

Asserts >= 1.5x per-shard-server capacity at 4 shards (measured ~4x:
splitting a 10k-stream session also shrinks per-shard assembly and
pre-scan state, so capacity scales slightly super-linearly), >= 1.5x
(local; >= 1.3x under ``BENCH_SMOKE``) transport-parallel replay
throughput at 4 shards for RTP and ZT-RP on the scalar vocabulary and
for ZT-RP-2d and FT-RP-2d on the spatial one, and ledger byte-equality
for every variant.  Also reports the sequential sharded
*coordinator* overhead on the rank-heavy RTP path (per-shard RankViews
+ k-way merge vs one global RankView) — tracked in the artifact, not
asserted.

Set ``BENCH_OUTPUT_DIR`` to write ``BENCH_sharded.json`` (uploaded by
the CI bench-smoke job); ``BENCH_SMOKE=1`` shrinks horizons for CI.
"""

from __future__ import annotations

from bench_artifacts import SMOKE, best_of, write_artifact

from repro.api import Deployment, Engine, QuerySpec, Workload
# This bench deliberately times the engine's own shard-replay worker in
# isolation (the per-shard-server capacity model), so it reaches into
# the private helpers instead of the public facade.
from repro.api.engine import _restrict_to_shard, _shard_replay_worker
from repro.queries.knn import KnnQuery, TopKQuery
from repro.queries.range_query import RangeQuery
from repro.state.sharding import shard_ranges
from repro.tolerance.rank_tolerance import RankTolerance

N_STREAMS = 10_000
SIGMA = 150.0
HORIZON = 60.0 if SMOKE else 150.0
RTP_HORIZON = 15.0 if SMOKE else 40.0
ZTRP_HORIZON = 5.0 if SMOKE else 10.0
SPATIAL_HORIZON = 4.0 if SMOKE else 10.0
SHARD_COUNTS = (1, 2, 4)
REPEATS = 1 if SMOKE else 3
MIN_SPEEDUP_AT_4 = 1.5
MIN_TRANSPORT_SPEEDUP_AT_4 = 1.3 if SMOKE else 1.5

_RESULTS: dict = {
    "n_streams": N_STREAMS,
    "sigma": SIGMA,
    "horizon": HORIZON,
    "shards": {},
    "rtp_coordinator": {},
    "transport": {},
    "spatial_transport": {},
}


def _workload() -> Workload:
    return Workload.synthetic(
        n_streams=N_STREAMS, horizon=HORIZON, sigma=SIGMA, seed=0
    )


def _spec() -> QuerySpec:
    return QuerySpec(protocol="zt-nrp", query=RangeQuery(400.0, 600.0))


def _best_of(fn):
    return best_of(fn, REPEATS)


def test_bench_sharded_replay_throughput():
    workload = _workload()
    trace = workload.materialize()
    engine = Engine()
    spec = _spec()
    print()
    print(
        f"sharded replay: {trace.n_streams} streams, {trace.n_records} "
        f"records, sigma={SIGMA:g} (dispatch-heavy), ZT-NRP [400, 600]"
    )

    single, t_single = _best_of(
        lambda: engine.run(spec, workload, Deployment.single())
    )
    base_throughput = trace.n_records / t_single
    print(
        f"{'topology':>22} {'wall':>8} {'capacity':>12} {'speedup':>8} "
        f"{'ledger':>8}"
    )
    print(
        f"{'single':>22} {t_single:>7.3f}s {base_throughput / 1e3:>10.0f}k/s "
        f"{'1.00x':>8} {'base':>8}"
    )
    _RESULTS["shards"]["1"] = {
        "wall_seconds": t_single,
        "capacity_records_per_s": base_throughput,
    }

    speedups = {}
    for n_shards in SHARD_COUNTS[1:]:
        deployment = Deployment.sharded(n_shards, parallel=True)
        fanned, t_fanned = _best_of(
            lambda d=deployment: engine.run(spec, workload, d)
        )
        assert fanned.ledger == single.ledger, (
            f"sharded({n_shards}) ledger diverged from single-server"
        )
        assert fanned.final_answer == single.final_answer

        # Per-shard-server capacity: time each shard replay in
        # isolation; the deployment drains the stream at the pace of
        # its slowest shard server.
        shard_walls = []
        for lo, hi in shard_ranges(trace.n_streams, n_shards):
            job = (
                _restrict_to_shard(trace, lo, hi),
                spec.build(),
                "auto",
                4096,
                32,
                lo,
                None,
            )
            _, t_shard = _best_of(lambda j=job: _shard_replay_worker(j))
            shard_walls.append(t_shard)
        capacity = trace.n_records / max(shard_walls)
        speedup = capacity / base_throughput
        speedups[n_shards] = speedup
        print(
            f"{f'sharded({n_shards}) parallel':>22} {t_fanned:>7.3f}s "
            f"{capacity / 1e3:>10.0f}k/s {speedup:>7.2f}x "
            f"{'equal':>8}"
        )
        _RESULTS["shards"][str(n_shards)] = {
            "end_to_end_wall_seconds": t_fanned,
            "max_shard_wall_seconds": max(shard_walls),
            "capacity_records_per_s": capacity,
            "speedup_vs_single": speedup,
        }

    print(
        f"\nper-shard-server capacity at 4 shards: "
        f"{speedups[4]:.2f}x single (floor {MIN_SPEEDUP_AT_4}x)"
    )
    assert speedups[4] >= MIN_SPEEDUP_AT_4, (
        f"sharded(4) capacity speedup {speedups[4]:.2f}x "
        f"< {MIN_SPEEDUP_AT_4}x"
    )
    write_artifact("sharded", _RESULTS)


def test_bench_sharded_rank_coordinator_overhead():
    """RTP on the sequential sharded coordinator vs one server.

    The coordinator serves every rank read through per-shard RankViews
    plus the k-way heap merge; this tracks its overhead (no assertion —
    the contract is ledger equality, asserted here, and the overhead is
    artifact data for the perf trajectory).
    """
    workload = Workload.synthetic(
        n_streams=N_STREAMS, horizon=RTP_HORIZON, seed=0
    )
    trace = workload.materialize()
    engine = Engine()
    spec = QuerySpec(
        protocol="rtp",
        query=TopKQuery(k=10),
        tolerance=RankTolerance(k=10, r=5),
    )
    single, t_single = _best_of(
        lambda: engine.run(spec, workload, Deployment.single())
    )
    sharded, t_sharded = _best_of(
        lambda: engine.run(spec, workload, Deployment.sharded(4))
    )
    assert sharded.ledger == single.ledger
    overhead = t_sharded / t_single
    print()
    print(
        f"RTP n={N_STREAMS}: single {t_single:.2f}s, sharded(4) "
        f"coordinator {t_sharded:.2f}s ({overhead:.2f}x), "
        f"{single.maintenance_messages} messages, ledgers equal"
    )
    _RESULTS["rtp_coordinator"] = {
        "single_wall_seconds": t_single,
        "sharded4_wall_seconds": t_sharded,
        "overhead": overhead,
        "maintenance_messages": single.maintenance_messages,
    }
    write_artifact("sharded", _RESULTS)


def _sequential_replay_wall(trace, protocol, n_shards: int) -> tuple:
    """Sequential sharded serving, replay phase timed on its own."""
    import time as _time

    from repro.runtime.session import ExecutionSession

    if n_shards == 1:
        session = ExecutionSession.for_streams(trace, protocol)
    else:
        session = ExecutionSession.for_streams_sharded(
            trace, protocol, n_shards
        )
    session.initialize(time=0.0)
    started = _time.perf_counter()
    session.replay_trace(trace)
    return _time.perf_counter() - started, session.snapshot()


def _sequential_spatial_replay_wall(trace, protocol, n_shards: int) -> tuple:
    """Sequential sharded *spatial* serving, replay phase timed alone."""
    import time as _time

    from repro.runtime.session import ExecutionSession

    if n_shards == 1:
        session = ExecutionSession.for_spatial(trace, protocol)
    else:
        session = ExecutionSession.for_spatial_sharded(
            trace, protocol, n_shards
        )
    session.initialize(time=0.0)
    started = _time.perf_counter()
    session.replay_trace(trace)
    return _time.perf_counter() - started, session.snapshot()


def _transport_replay_wall(trace, protocol, n_shards: int, server_cls=None) -> tuple:
    """Transport-parallel replay: modeled wall + diagnostics.

    Modeled wall = (coordinator wall - reply-wait) + slowest worker's
    busy time: the coordinator's own compute is serialized with the
    critical-path worker, everything else overlaps across machines.
    """
    import time as _time

    from repro.server.transport import TransportShardedServer

    if server_cls is None:
        server_cls = TransportShardedServer
    server = server_cls(trace, protocol, n_shards)
    with server:
        server.initialize(0.0)
        wait_before = server.bus.stats.recv_wait_seconds
        started = _time.perf_counter()
        server.replay(horizon=trace.horizon)
        wall = _time.perf_counter() - started
        wait = server.bus.stats.recv_wait_seconds - wait_before
        stats = server.transport_stats()
    coordinator = wall - wait
    modeled = coordinator + max(stats["worker_busy_seconds"])
    return modeled, server.snapshot(), {
        "wall_seconds": wall,
        "coordinator_wall_seconds": coordinator,
        "max_worker_busy_seconds": max(stats["worker_busy_seconds"]),
        "recv_wait_seconds": wait,
        "epochs": stats["epochs"],
        "rpc_posts": stats["posts"],
        "bytes_out": stats["bytes_out"],
        "bytes_in": stats["bytes_in"],
    }


def _transport_point(
    spec, trace, n_shards: int, sequential_wall=None, server_cls=None
) -> dict:
    """One curve point: best-of sequential vs best-of transport."""
    if sequential_wall is None:
        sequential_wall = _sequential_replay_wall
    # Even in smoke mode take best-of-2: a single fork-and-replay
    # sample is too noisy to assert a floor against.
    reps = max(REPEATS, 2)
    t_seq = min(
        sequential_wall(trace, spec.build(), n_shards)[0]
        for _ in range(reps)
    )
    _, seq_ledger = sequential_wall(trace, spec.build(), n_shards)
    best = None
    for _ in range(reps):
        modeled, ledger, diag = _transport_replay_wall(
            trace, spec.build(), n_shards, server_cls=server_cls
        )
        assert ledger == seq_ledger, (
            f"transport({n_shards}) ledger diverged from sequential "
            f"sharded serving"
        )
        if best is None or modeled < best[0]:
            best = (modeled, diag)
    modeled, diag = best
    point = {
        "sequential_replay_wall_seconds": t_seq,
        "modeled_parallel_wall_seconds": modeled,
        "speedup_vs_sequential": t_seq / modeled,
        "coordination_fraction": (
            diag["coordinator_wall_seconds"] / modeled
        ),
        **diag,
    }
    return point


def test_bench_transport_coupled_throughput():
    """Coupled protocols across worker processes: the tentpole curve.

    RTP at 1/2/4 shards (sequential sharded serving vs the process
    transport, replay phase, ledgers byte-identical), plus ZT-RP at 4
    shards — the probe-storm regime, every crossing probing the full
    population through batched per-worker RPCs.
    """
    workload = Workload.synthetic(
        n_streams=N_STREAMS, horizon=RTP_HORIZON, seed=0
    )
    trace = workload.materialize()
    spec = QuerySpec(
        protocol="rtp",
        query=TopKQuery(k=10),
        tolerance=RankTolerance(k=10, r=5),
    )
    print()
    print(
        f"transport-parallel coupled replay: {trace.n_streams} streams, "
        f"{trace.n_records} records, RTP top-10"
    )
    print(
        f"{'shards':>8} {'seq':>8} {'modeled':>8} {'coord%':>7} "
        f"{'speedup':>8} {'ledger':>7}"
    )
    _RESULTS["transport"] = {
        "protocol": "rtp",
        "horizon": RTP_HORIZON,
        "n_records": trace.n_records,
        "min_speedup_at_4": MIN_TRANSPORT_SPEEDUP_AT_4,
        "shards": {},
    }
    for n_shards in SHARD_COUNTS:
        point = _transport_point(spec, trace, n_shards)
        _RESULTS["transport"]["shards"][str(n_shards)] = point
        print(
            f"{n_shards:>8} {point['sequential_replay_wall_seconds']:>7.3f}s"
            f" {point['modeled_parallel_wall_seconds']:>7.3f}s"
            f" {point['coordination_fraction'] * 100:>6.1f}%"
            f" {point['speedup_vs_sequential']:>7.2f}x {'equal':>7}"
        )

    ztrp_workload = Workload.synthetic(
        n_streams=N_STREAMS, horizon=ZTRP_HORIZON, seed=0
    )
    ztrp_trace = ztrp_workload.materialize()
    ztrp_spec = QuerySpec(protocol="zt-rp", query=KnnQuery(q=500.0, k=10))
    ztrp_point = _transport_point(ztrp_spec, ztrp_trace, 4)
    _RESULTS["transport"]["zt_rp_4"] = {
        "horizon": ZTRP_HORIZON,
        "n_records": ztrp_trace.n_records,
        **ztrp_point,
    }
    print(
        f"zt-rp(4): seq "
        f"{ztrp_point['sequential_replay_wall_seconds']:.3f}s, modeled "
        f"{ztrp_point['modeled_parallel_wall_seconds']:.3f}s, "
        f"{ztrp_point['speedup_vs_sequential']:.2f}x, ledgers equal"
    )

    rtp_speedup = _RESULTS["transport"]["shards"]["4"][
        "speedup_vs_sequential"
    ]
    floor = MIN_TRANSPORT_SPEEDUP_AT_4
    assert rtp_speedup >= floor, (
        f"transport RTP speedup at 4 shards {rtp_speedup:.2f}x < {floor}x"
    )
    assert ztrp_point["speedup_vs_sequential"] >= floor, (
        f"transport ZT-RP speedup at 4 shards "
        f"{ztrp_point['speedup_vs_sequential']:.2f}x < {floor}x"
    )
    write_artifact("sharded", _RESULTS)


def test_bench_spatial_transport_coupled_throughput():
    """Coupled *spatial* protocols across worker processes.

    ZT-RP-2d on the n=10k moving-objects workload at 1/2/4 shards —
    every kNN threshold crossing probes the full point population, so
    the per-worker probe batches and geometric pre-scans are the bulk
    of the replay and parallelize across shards — plus FT-RP-2d under a
    tight fraction tolerance (0.05) at 4 shards, the second coupled
    ``-2d`` protocol on the transport.  Ledgers must be byte-identical
    to sequential sharded spatial serving; the modeled-wall speedup at
    4 shards is floor-asserted for both.
    """
    from repro.server.transport import SpatialTransportShardedServer
    from repro.spatial.queries import SpatialKnnQuery
    from repro.tolerance.fraction_tolerance import FractionTolerance

    workload = Workload.moving_objects(
        n_objects=N_STREAMS, horizon=SPATIAL_HORIZON, seed=0
    )
    trace = workload.materialize()
    spec = QuerySpec(
        protocol="zt-rp-2d", query=SpatialKnnQuery((500.0, 500.0), 10)
    )
    print()
    print(
        f"spatial transport-parallel coupled replay: "
        f"{trace.n_streams} objects, {trace.n_records} records, "
        f"ZT-RP-2d 10-NN"
    )
    print(
        f"{'shards':>8} {'seq':>8} {'modeled':>8} {'coord%':>7} "
        f"{'speedup':>8} {'ledger':>7}"
    )
    _RESULTS["spatial_transport"] = {
        "protocol": "zt-rp-2d",
        "horizon": SPATIAL_HORIZON,
        "n_records": trace.n_records,
        "min_speedup_at_4": MIN_TRANSPORT_SPEEDUP_AT_4,
        "shards": {},
    }
    for n_shards in SHARD_COUNTS:
        point = _transport_point(
            spec,
            trace,
            n_shards,
            sequential_wall=_sequential_spatial_replay_wall,
            server_cls=SpatialTransportShardedServer,
        )
        _RESULTS["spatial_transport"]["shards"][str(n_shards)] = point
        print(
            f"{n_shards:>8} {point['sequential_replay_wall_seconds']:>7.3f}s"
            f" {point['modeled_parallel_wall_seconds']:>7.3f}s"
            f" {point['coordination_fraction'] * 100:>6.1f}%"
            f" {point['speedup_vs_sequential']:>7.2f}x {'equal':>7}"
        )

    ftrp_spec = QuerySpec(
        protocol="ft-rp-2d",
        query=SpatialKnnQuery((500.0, 500.0), 10),
        tolerance=FractionTolerance(0.05, 0.05),
    )
    ftrp_point = _transport_point(
        ftrp_spec,
        trace,
        4,
        sequential_wall=_sequential_spatial_replay_wall,
        server_cls=SpatialTransportShardedServer,
    )
    _RESULTS["spatial_transport"]["ft_rp_2d_4"] = ftrp_point
    print(
        f"ft-rp-2d(4): seq "
        f"{ftrp_point['sequential_replay_wall_seconds']:.3f}s, modeled "
        f"{ftrp_point['modeled_parallel_wall_seconds']:.3f}s, "
        f"{ftrp_point['speedup_vs_sequential']:.2f}x, ledgers equal"
    )

    floor = MIN_TRANSPORT_SPEEDUP_AT_4
    ztrp_speedup = _RESULTS["spatial_transport"]["shards"]["4"][
        "speedup_vs_sequential"
    ]
    assert ztrp_speedup >= floor, (
        f"spatial transport ZT-RP-2d speedup at 4 shards "
        f"{ztrp_speedup:.2f}x < {floor}x"
    )
    assert ftrp_point["speedup_vs_sequential"] >= floor, (
        f"spatial transport FT-RP-2d speedup at 4 shards "
        f"{ftrp_point['speedup_vs_sequential']:.2f}x < {floor}x"
    )
    write_artifact("sharded", _RESULTS)
