"""Failure injection: prove the correctness machinery is not vacuous.

The protocols' guarantees assume reliable delivery (the paper's model).
These tests inject message loss and state corruption and verify that the
ground-truth checker actually *catches* the resulting violations — i.e.
that the hundreds of `tolerance_ok` assertions elsewhere are meaningful.
"""

import pytest

from repro.correctness.checker import ToleranceChecker
from repro.correctness.oracle import Oracle
from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.network.accounting import MessageLedger
from repro.network.channel import Channel
from repro.network.messages import MessageKind
from repro.protocols.zt_nrp import ZeroToleranceRangeProtocol
from repro.queries.range_query import RangeQuery
from repro.server.server import Server
from repro.streams.source import StreamSource
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.tolerance.fraction_tolerance import FractionTolerance


class LossyChannel(Channel):
    """Drops a deterministic subset of source-to-server updates."""

    def __init__(self, ledger: MessageLedger, drop_every: int) -> None:
        super().__init__(ledger)
        self.drop_every = drop_every
        self._uplinks = 0
        self.dropped = 0

    def send_to_server(self, message) -> None:
        if message.kind is MessageKind.UPDATE:
            self._uplinks += 1
            if self._uplinks % self.drop_every == 0:
                self.dropped += 1
                return  # lost in transit: never recorded nor delivered
        super().send_to_server(message)


def run_lossy_zt_nrp(trace, drop_every):
    """ZT-NRP over a lossy channel, with continuous exact checking."""
    query = RangeQuery(400.0, 600.0)
    ledger = MessageLedger()
    channel = LossyChannel(ledger, drop_every=drop_every)
    sources = [
        StreamSource(stream_id, value, channel)
        for stream_id, value in enumerate(trace.initial_values)
    ]
    protocol = ZeroToleranceRangeProtocol(query)
    server = Server(channel, protocol)
    oracle = Oracle(trace.initial_values)
    oracle.register_range_query(query)
    checker = ToleranceChecker(
        oracle=oracle,
        query=query,
        tolerance=None,
        answer_of=lambda: protocol.answer,
    )
    server.initialize()
    for record in trace:
        oracle.apply(record.stream_id, record.value)
        sources[record.stream_id].apply_value(record.value, record.time)
        checker.check(record.time)
    return channel, checker


@pytest.fixture(scope="module")
def trace():
    return generate_synthetic_trace(
        SyntheticConfig(n_streams=100, horizon=250.0, seed=2)
    )


class TestMessageLoss:
    def test_lost_updates_cause_detected_violations(self, trace):
        channel, checker = run_lossy_zt_nrp(trace, drop_every=3)
        assert channel.dropped > 0
        # The guarantee is broken AND the checker sees it.
        assert not checker.report.ok
        assert checker.report.violation_count > 0

    def test_reliable_channel_is_clean(self, trace):
        channel, checker = run_lossy_zt_nrp(trace, drop_every=10**9)
        assert channel.dropped == 0
        assert checker.report.ok

    def test_more_loss_more_violations(self, trace):
        _, lossy = run_lossy_zt_nrp(trace, drop_every=2)
        _, rare = run_lossy_zt_nrp(trace, drop_every=50)
        assert lossy.report.violation_count > rare.report.violation_count


class TestStateCorruption:
    def test_corrupted_answer_is_flagged(self, trace):
        """Tampering with the final answer set must flip tolerance_ok."""
        query = RangeQuery(400.0, 600.0)
        tolerance = FractionTolerance(0.1, 0.1)

        class SabotagedProtocol(ZeroToleranceRangeProtocol):
            @property
            def answer(self):
                honest = super().answer
                # Claim a wildly wrong set: everything not in the answer.
                return frozenset(range(trace.n_streams)) - honest

        result = run_protocol(
            trace,
            SabotagedProtocol(query),
            tolerance=tolerance,
            config=RunConfig(check_every=1),
        )
        assert not result.tolerance_ok
