"""Cross-protocol integration tests of the paper's headline claims.

Each test runs several protocols over one shared trace and checks a
relationship the paper asserts (Sections 4-6), with continuous tolerance
validation on.
"""

import pytest

from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.protocols.ft_nrp import FractionToleranceRangeProtocol
from repro.protocols.ft_rp import FractionToleranceKnnProtocol
from repro.protocols.no_filter import NoFilterProtocol
from repro.protocols.rtp import RankToleranceProtocol
from repro.protocols.zt_nrp import ZeroToleranceRangeProtocol
from repro.protocols.zt_rp import ZeroToleranceKnnProtocol
from repro.queries.knn import KnnQuery, TopKQuery
from repro.queries.range_query import RangeQuery
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.streams.tcp import TcpTraceConfig, generate_tcp_trace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance

CHECKED = RunConfig(check_every=1, strict=True)


@pytest.fixture(scope="module")
def trace():
    return generate_synthetic_trace(
        SyntheticConfig(n_streams=120, horizon=300.0, seed=1)
    )


@pytest.fixture(scope="module")
def tcp():
    return generate_tcp_trace(
        TcpTraceConfig(n_subnets=120, n_connections=4000, days=8.0, seed=1)
    )


class TestRangeQueryFamily:
    def test_filters_beat_no_filter(self, trace):
        """Any filtering dominates reporting everything (Section 5.1)."""
        query = RangeQuery(400.0, 600.0)
        none = run_protocol(trace, NoFilterProtocol(query), config=CHECKED)
        zt = run_protocol(
            trace, ZeroToleranceRangeProtocol(query), config=CHECKED
        )
        assert zt.maintenance_messages < none.maintenance_messages

    def test_ft_nrp_exploits_tolerance(self, trace):
        query = RangeQuery(400.0, 600.0)
        zt = run_protocol(trace, ZeroToleranceRangeProtocol(query))
        tolerance = FractionTolerance(0.4, 0.4)
        ft = run_protocol(
            trace,
            FractionToleranceRangeProtocol(query, tolerance),
            tolerance=tolerance,
            config=CHECKED,
        )
        # Tolerance must not cost more than a small Fix_Error overhead.
        assert ft.maintenance_messages <= zt.maintenance_messages * 1.1
        assert ft.tolerance_ok

    def test_all_range_protocols_within_tolerance_on_tcp(self, tcp):
        query = RangeQuery(400.0, 600.0)
        tolerance = FractionTolerance(0.3, 0.3)
        results = [
            run_protocol(tcp, NoFilterProtocol(query), config=CHECKED),
            run_protocol(
                tcp, ZeroToleranceRangeProtocol(query), config=CHECKED
            ),
            run_protocol(
                tcp,
                FractionToleranceRangeProtocol(query, tolerance),
                tolerance=tolerance,
                config=CHECKED,
            ),
        ]
        assert all(r.tolerance_ok for r in results)


class TestRankQueryFamily:
    def test_rtp_beats_zt_rp(self, trace):
        """Tracking X with rank slack dwarfs recompute-on-every-cross."""
        query = KnnQuery(500.0, 5)
        tolerance = RankTolerance(k=5, r=5)
        rtp = run_protocol(
            trace,
            RankToleranceProtocol(query, tolerance),
            tolerance=tolerance,
            config=CHECKED,
        )
        zt = run_protocol(
            trace, ZeroToleranceKnnProtocol(KnnQuery(500.0, 5)), config=CHECKED
        )
        assert rtp.maintenance_messages < zt.maintenance_messages / 5

    def test_ft_rp_beats_zt_rp_at_positive_tolerance(self, trace):
        query_factory = lambda: KnnQuery(500.0, 10)
        zt = run_protocol(
            trace, ZeroToleranceKnnProtocol(query_factory()), config=CHECKED
        )
        tolerance = FractionTolerance(0.3, 0.3)
        ft = run_protocol(
            trace,
            FractionToleranceKnnProtocol(query_factory(), tolerance),
            tolerance=tolerance,
            config=CHECKED,
        )
        assert ft.maintenance_messages < zt.maintenance_messages / 5

    def test_topk_on_tcp_all_protocols_sound(self, tcp):
        k = 8
        tolerance = RankTolerance(k=k, r=4)
        rtp = run_protocol(
            tcp,
            RankToleranceProtocol(TopKQuery(k=k), tolerance),
            tolerance=tolerance,
            config=CHECKED,
        )
        assert rtp.tolerance_ok
        ft_tol = FractionTolerance(0.25, 0.25)
        ftrp = run_protocol(
            tcp,
            FractionToleranceKnnProtocol(TopKQuery(k=k), ft_tol),
            tolerance=ft_tol,
            config=CHECKED,
        )
        assert ftrp.tolerance_ok


class TestDeterminism:
    def test_full_stack_is_reproducible(self):
        def once():
            trace = generate_synthetic_trace(
                SyntheticConfig(n_streams=60, horizon=200.0, seed=9)
            )
            tolerance = FractionTolerance(0.2, 0.2)
            result = run_protocol(
                trace,
                FractionToleranceRangeProtocol(
                    RangeQuery(400.0, 600.0), tolerance
                ),
                tolerance=tolerance,
            )
            return result.maintenance_messages, result.final_answer

        assert once() == once()
