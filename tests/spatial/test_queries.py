"""Unit tests for spatial queries."""

import numpy as np
import pytest

from repro.spatial.geometry import BallRegion, BoxRegion
from repro.spatial.queries import SpatialKnnQuery, SpatialRangeQuery


class TestSpatialRangeQuery:
    def test_true_answer(self):
        query = SpatialRangeQuery(BoxRegion([0.0, 0.0], [10.0, 10.0]))
        points = np.array([[5.0, 5.0], [11.0, 5.0], [10.0, 10.0]])
        assert query.true_answer(points) == frozenset({0, 2})

    def test_not_rank_based(self):
        query = SpatialRangeQuery(BoxRegion([0.0], [1.0]))
        assert not query.is_rank_based
        assert query.dimension == 1


class TestSpatialKnnQuery:
    def test_distances_euclidean(self):
        query = SpatialKnnQuery([0.0, 0.0], k=1)
        assert query.distance([3.0, 4.0]) == pytest.approx(5.0)
        np.testing.assert_allclose(
            query.distance_array(np.array([[3.0, 4.0], [0.0, 2.0]])),
            [5.0, 2.0],
        )

    def test_true_answer_closest_k(self):
        query = SpatialKnnQuery([0.0, 0.0], k=2)
        points = np.array([[1.0, 0.0], [5.0, 5.0], [0.0, 2.0], [10.0, 0.0]])
        assert query.true_answer(points) == frozenset({0, 2})

    def test_region_is_ball(self):
        query = SpatialKnnQuery([1.0, 1.0], k=1)
        region = query.region(2.5)
        assert isinstance(region, BallRegion)
        assert region.radius == 2.5
        np.testing.assert_array_equal(region.center, [1.0, 1.0])

    def test_rank_of_ties_break_by_id(self):
        query = SpatialKnnQuery([0.0, 0.0], k=1)
        points = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0]])
        assert query.rank_of(0, points) == 1
        assert query.rank_of(1, points) == 2
        assert query.rank_of(2, points) == 3

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            SpatialKnnQuery([0.0, 0.0], k=0)

    def test_is_rank_based(self):
        assert SpatialKnnQuery([0.0], k=1).is_rank_based

    def test_ranked_ids_order(self):
        query = SpatialKnnQuery([0.0, 0.0], k=1)
        points = np.array([[5.0, 0.0], [1.0, 0.0], [3.0, 0.0]])
        assert list(query.ranked_ids(points)) == [1, 2, 0]
