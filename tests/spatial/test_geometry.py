"""Unit + property tests for spatial regions."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial.geometry import (
    ALL_SPACE,
    EMPTY_REGION,
    BallRegion,
    BoxRegion,
    as_point,
)

points_2d = st.tuples(st.floats(-1e4, 1e4), st.floats(-1e4, 1e4)).map(
    lambda t: np.array(t)
)


class TestAsPoint:
    def test_coerces_lists(self):
        np.testing.assert_array_equal(as_point([1, 2]), [1.0, 2.0])

    def test_rejects_matrices(self):
        with pytest.raises(ValueError):
            as_point([[1.0, 2.0]])


class TestBoxRegion:
    def test_contains_closed(self):
        box = BoxRegion([0.0, 0.0], [10.0, 20.0])
        assert box.contains([0.0, 0.0])
        assert box.contains([10.0, 20.0])
        assert box.contains([5.0, 5.0])
        assert not box.contains([11.0, 5.0])
        assert not box.contains([5.0, -0.1])

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            BoxRegion([5.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            BoxRegion([0.0], [1.0, 1.0])

    def test_contains_many_matches_scalar(self):
        box = BoxRegion([0.0, 0.0], [1.0, 1.0])
        points = np.array([[0.5, 0.5], [2.0, 0.5], [1.0, 1.0]])
        np.testing.assert_array_equal(
            box.contains_many(points),
            [box.contains(p) for p in points],
        )

    def test_boundary_distance_inside_is_nearest_face(self):
        box = BoxRegion([0.0, 0.0], [10.0, 10.0])
        assert box.boundary_distance([1.0, 5.0]) == 1.0
        assert box.boundary_distance([5.0, 9.5]) == 0.5

    def test_boundary_distance_outside_is_euclidean(self):
        box = BoxRegion([0.0, 0.0], [10.0, 10.0])
        assert box.boundary_distance([13.0, 14.0]) == 5.0  # 3-4-5 corner

    def test_violation_rule(self):
        box = BoxRegion([0.0, 0.0], [10.0, 10.0])
        assert box.violated_by(np.array([5.0, 5.0]), np.array([11.0, 5.0]))
        assert not box.violated_by(np.array([1.0, 1.0]), np.array([9.0, 9.0]))

    def test_dimension(self):
        assert BoxRegion([0, 0, 0], [1, 1, 1]).dimension == 3


class TestBallRegion:
    def test_contains_closed(self):
        ball = BallRegion([0.0, 0.0], 5.0)
        assert ball.contains([3.0, 4.0])  # exactly on the boundary
        assert ball.contains([0.0, 0.0])
        assert not ball.contains([3.1, 4.0])

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            BallRegion([0.0], -1.0)

    def test_boundary_distance(self):
        ball = BallRegion([0.0, 0.0], 5.0)
        assert ball.boundary_distance([0.0, 0.0]) == 5.0
        assert ball.boundary_distance([3.0, 4.0]) == 0.0
        assert ball.boundary_distance([6.0, 8.0]) == 5.0

    @given(points_2d)
    def test_membership_matches_norm(self, point):
        ball = BallRegion([100.0, -50.0], 250.0)
        expected = np.linalg.norm(point - np.array([100.0, -50.0])) <= 250.0
        assert ball.contains(point) == expected

    def test_contains_many(self):
        ball = BallRegion([0.0, 0.0], 1.0)
        points = np.array([[0.0, 0.5], [2.0, 0.0]])
        np.testing.assert_array_equal(
            ball.contains_many(points), [True, False]
        )


class TestSilencers:
    @given(points_2d, points_2d)
    def test_all_space_never_violated(self, a, b):
        assert ALL_SPACE.contains(a)
        assert not ALL_SPACE.violated_by(a, b)

    @given(points_2d, points_2d)
    def test_empty_region_never_violated(self, a, b):
        assert not EMPTY_REGION.contains(a)
        assert not EMPTY_REGION.violated_by(a, b)

    def test_silencing_flags(self):
        assert ALL_SPACE.is_silencing
        assert EMPTY_REGION.is_silencing
        assert not BoxRegion([0.0], [1.0]).is_silencing
        assert not BallRegion([0.0], 1.0).is_silencing

    def test_boundary_distances_infinite(self):
        assert ALL_SPACE.boundary_distance(np.zeros(2)) == math.inf
        assert EMPTY_REGION.boundary_distance(np.zeros(2)) == math.inf
