"""Round-trip properties of the spatial RPC frame codec.

The shard transport ships point and region batches as contiguous
little-endian columns (``repro/spatial/messages.py``, DESIGN.md §10).
The codec's contract is exact round-trip identity: ``pack_points`` /
``pack_regions`` followed by the receiver-side decode must reproduce
the batch bit-for-bit — over random batches, empty batches, and
single-object shards — and rows carrying the same region encoding must
decode to one shared instance, mirroring the sequential coordinator's
shared deployed-region objects.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import (
    ALL_SPACE,
    EMPTY_REGION,
    BallRegion,
    BoxRegion,
    UnionRegion,
)
from repro.spatial.messages import (
    REGION_PICKLED,
    pack_points,
    pack_regions,
    unpack_regions,
)

finite = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# Point batches
# ----------------------------------------------------------------------
@st.composite
def point_batches(draw):
    d = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=0, max_value=32))
    rows = draw(
        st.lists(
            st.integers(min_value=0, max_value=10**6),
            min_size=m,
            max_size=m,
        )
    )
    points = draw(
        st.lists(
            st.lists(finite, min_size=d, max_size=d),
            min_size=m,
            max_size=m,
        )
    )
    times = draw(st.lists(finite, min_size=m, max_size=m))
    return d, rows, points, times


@given(point_batches())
@settings(max_examples=60, deadline=None)
def test_point_frame_round_trips_exactly(batch):
    d, rows, points, times = batch
    m = len(rows)
    frame = pack_points(
        rows, np.asarray(points, dtype=float).reshape(m, d), times, d
    )
    assert len(frame) == m
    assert frame.dimension == d
    # Wire layout: contiguous little-endian columns.
    for column in (frame.rows, frame.points, frame.times):
        assert column.flags.c_contiguous
        assert column.dtype.byteorder in ("<", "=")
    assert frame.rows.tolist() == rows
    assert frame.points.tolist() == [list(map(float, p)) for p in points]
    assert frame.times.tolist() == list(map(float, times))


def test_point_frame_empty_batch_keeps_dimension():
    frame = pack_points(
        np.empty(0, dtype=np.int64), np.empty((0, 3)), np.empty(0), 3
    )
    assert len(frame) == 0
    assert frame.dimension == 3
    assert frame.points.shape == (0, 3)


def test_point_frame_rejects_shape_mismatch():
    with pytest.raises(ValueError, match="shape"):
        pack_points([1, 2], np.zeros((2, 2)), [0.0, 0.0], 3)
    with pytest.raises(ValueError, match="shape"):
        pack_points([1], np.zeros((1, 2)), [0.0, 1.0], 2)


# ----------------------------------------------------------------------
# Region batches
# ----------------------------------------------------------------------
def _region_strategy(d):
    def box(lows_highs):
        lows = np.minimum(lows_highs[0], lows_highs[1])
        highs = np.maximum(lows_highs[0], lows_highs[1])
        return BoxRegion(lows, highs)

    coords = st.lists(finite, min_size=d, max_size=d).map(
        lambda xs: np.asarray(xs, dtype=float)
    )
    boxes = st.tuples(coords, coords).map(box)
    balls = st.tuples(
        coords, st.floats(min_value=0.0, max_value=1e6)
    ).map(lambda cr: BallRegion(cr[0], cr[1]))
    silencers = st.sampled_from([ALL_SPACE, EMPTY_REGION])
    unions = st.tuples(boxes, balls).map(
        lambda pair: UnionRegion(list(pair))
    )
    return st.one_of(boxes, balls, silencers, unions)


@st.composite
def region_batches(draw):
    d = draw(st.integers(min_value=1, max_value=3))
    distinct = draw(
        st.lists(_region_strategy(d), min_size=1, max_size=6)
    )
    # Batches repeat shared objects, as protocols deploy one region to
    # many streams; sample rows from the distinct pool with repetition.
    rows = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(distinct) - 1),
            min_size=0,
            max_size=24,
        )
    )
    return d, [distinct[i] for i in rows]


def _regions_equal(a, b) -> bool:
    if type(a) is not type(b):
        return False
    if a is ALL_SPACE or a is EMPTY_REGION:
        return a is b
    if type(a) is BoxRegion:
        return np.array_equal(a.lows, b.lows) and np.array_equal(
            a.highs, b.highs
        )
    if type(a) is BallRegion:
        return (
            np.array_equal(a.center, b.center) and a.radius == b.radius
        )
    if type(a) is UnionRegion:
        return len(a.members) == len(b.members) and all(
            _regions_equal(x, y) for x, y in zip(a.members, b.members)
        )
    return a == b


@given(region_batches())
@settings(max_examples=60, deadline=None)
def test_region_frame_round_trips_exactly(batch):
    d, regions = batch
    frame = pack_regions(regions, d)
    assert len(frame) == len(regions)
    decoded = unpack_regions(frame)
    assert len(decoded) == len(regions)
    for original, restored in zip(regions, decoded):
        assert _regions_equal(original, restored), (original, restored)


@given(region_batches())
@settings(max_examples=30, deadline=None)
def test_region_decode_shares_instances(batch):
    # Rows with the same wire encoding decode to ONE object, mirroring
    # the sequential coordinator where streams share deployed regions.
    d, regions = batch
    frame = pack_regions(regions, d)
    decoded = unpack_regions(frame)
    by_key = {}
    for i, region in enumerate(decoded):
        kind = int(frame.kinds[i])
        blob = (
            frame.blobs[int(frame.params[i, 0])]
            if kind == REGION_PICKLED
            else None
        )
        key = (kind, frame.params[i].tobytes(), blob)
        assert by_key.setdefault(key, region) is region


def test_region_frame_empty_batch():
    frame = pack_regions([], 2)
    assert len(frame) == 0
    assert unpack_regions(frame) == []


def test_region_frame_single_object_shard():
    box = BoxRegion([0.0, 0.0], [1.0, 1.0])
    frame = pack_regions([box], 2)
    (decoded,) = unpack_regions(frame)
    assert _regions_equal(box, decoded)


def test_union_regions_ride_the_pickled_escape():
    union = UnionRegion(
        [BoxRegion([0.0], [1.0]), BallRegion([5.0], 2.0)]
    )
    frame = pack_regions([union, union], 1)
    assert set(frame.kinds.tolist()) == {REGION_PICKLED}
    # The shared object pickles once, not per row.
    assert len(frame.blobs) == 1
    a, b = unpack_regions(frame)
    assert a is b
    assert _regions_equal(a, union)


def test_unknown_kind_code_raises():
    frame = pack_regions([ALL_SPACE], 2)
    frame.kinds[0] = 250
    with pytest.raises(ValueError, match="unknown region kind"):
        unpack_regions(frame)
