"""Randomized correctness + shape tests for the spatial protocols."""

import numpy as np
import pytest

from repro.harness.config import RunConfig
from repro.spatial.geometry import BoxRegion
from repro.spatial.protocols import (
    SpatialFractionKnnProtocol,
    SpatialFractionRangeProtocol,
    SpatialNoFilterProtocol,
    SpatialRankToleranceProtocol,
    SpatialZeroKnnProtocol,
    SpatialZeroRangeProtocol,
)
from repro.spatial.queries import SpatialKnnQuery, SpatialRangeQuery
from repro.spatial.runner import run_spatial_protocol
from repro.spatial.trace import SpatialTrace
from repro.spatial.workloads import (
    MovingObjectsConfig,
    generate_moving_objects_trace,
)
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.knn_fraction import RhoPolicy
from repro.tolerance.rank_tolerance import RankTolerance

CHECKED = RunConfig(check_every=1, strict=True)
BOX = BoxRegion([350.0, 350.0], [650.0, 650.0])
CENTER = [500.0, 500.0]


@pytest.fixture(scope="module")
def trace():
    return generate_moving_objects_trace(
        MovingObjectsConfig(n_objects=80, horizon=250.0, seed=0)
    )


class TestExactProtocols:
    def test_no_filter_exact(self, trace):
        result = run_spatial_protocol(
            trace, SpatialNoFilterProtocol(SpatialRangeQuery(BOX)), config=CHECKED
        )
        assert result.tolerance_ok
        assert result.maintenance_messages == trace.n_records

    def test_zt_range_exact_and_cheaper(self, trace):
        result = run_spatial_protocol(
            trace, SpatialZeroRangeProtocol(SpatialRangeQuery(BOX)), config=CHECKED
        )
        assert result.tolerance_ok
        assert result.maintenance_messages < trace.n_records

    def test_zt_knn_exact(self, trace):
        result = run_spatial_protocol(
            trace, SpatialZeroKnnProtocol(SpatialKnnQuery(CENTER, 5)), config=CHECKED
        )
        assert result.tolerance_ok


class TestSpatialFtNrp:
    @pytest.mark.parametrize("eps", [0.0, 0.2, 0.45])
    def test_tolerance_held(self, trace, eps):
        tolerance = FractionTolerance(eps, eps)
        result = run_spatial_protocol(
            trace,
            SpatialFractionRangeProtocol(SpatialRangeQuery(BOX), tolerance),
            tolerance=tolerance,
            config=CHECKED,
        )
        assert result.tolerance_ok

    def test_silencers_allocated(self, trace):
        tolerance = FractionTolerance(0.4, 0.4)
        protocol = SpatialFractionRangeProtocol(
            SpatialRangeQuery(BOX), tolerance
        )
        run_spatial_protocol(
            trace.truncate(0.0), protocol, tolerance=tolerance
        )
        box_members = int(BOX.contains_many(trace.initial_points).sum())
        assert protocol.n_plus == min(
            tolerance.emax_plus(box_members), box_members
        )


class TestSpatialRtp:
    @pytest.mark.parametrize("k,r", [(3, 0), (5, 2), (8, 5)])
    def test_tolerance_held(self, trace, k, r):
        tolerance = RankTolerance(k=k, r=r)
        result = run_spatial_protocol(
            trace,
            SpatialRankToleranceProtocol(SpatialKnnQuery(CENTER, k), tolerance),
            tolerance=tolerance,
            config=CHECKED,
        )
        assert result.tolerance_ok
        assert len(result.final_answer) == k

    def test_k_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SpatialRankToleranceProtocol(
                SpatialKnnQuery(CENTER, 3), RankTolerance(k=5, r=0)
            )

    def test_rank_slack_reduces_cost(self, trace):
        costs = {}
        for r in (0, 6):
            tolerance = RankTolerance(k=5, r=r)
            result = run_spatial_protocol(
                trace,
                SpatialRankToleranceProtocol(
                    SpatialKnnQuery(CENTER, 5), tolerance
                ),
                tolerance=tolerance,
            )
            costs[r] = result.maintenance_messages
        assert costs[6] < costs[0]


class TestSpatialFtRp:
    @pytest.mark.parametrize("eps", [0.0, 0.2, 0.4])
    @pytest.mark.parametrize("policy", list(RhoPolicy))
    def test_tolerance_held(self, trace, eps, policy):
        tolerance = FractionTolerance(eps, eps)
        result = run_spatial_protocol(
            trace,
            SpatialFractionKnnProtocol(
                SpatialKnnQuery(CENTER, 8), tolerance, policy=policy
            ),
            tolerance=tolerance,
            config=CHECKED,
        )
        assert result.tolerance_ok

    def test_tolerance_slashes_cost_vs_zt(self, trace):
        zt = run_spatial_protocol(
            trace, SpatialZeroKnnProtocol(SpatialKnnQuery(CENTER, 10))
        )
        tolerance = FractionTolerance(0.3, 0.3)
        ft = run_spatial_protocol(
            trace,
            SpatialFractionKnnProtocol(SpatialKnnQuery(CENTER, 10), tolerance),
            tolerance=tolerance,
        )
        assert ft.maintenance_messages < zt.maintenance_messages / 5


class TestManySeeds:
    @pytest.mark.parametrize("seed", range(3))
    def test_full_matrix_on_fresh_traces(self, seed):
        trace = generate_moving_objects_trace(
            MovingObjectsConfig(n_objects=50, horizon=200.0, seed=seed + 10)
        )
        rank_tol = RankTolerance(k=4, r=3)
        frac_tol = FractionTolerance(0.25, 0.25)
        runs = [
            (SpatialRankToleranceProtocol(SpatialKnnQuery(CENTER, 4), rank_tol), rank_tol),
            (SpatialFractionKnnProtocol(SpatialKnnQuery(CENTER, 6), frac_tol), frac_tol),
            (SpatialFractionRangeProtocol(SpatialRangeQuery(BOX), frac_tol), frac_tol),
        ]
        for protocol, tolerance in runs:
            result = run_spatial_protocol(
                trace, protocol, tolerance=tolerance, config=CHECKED
            )
            assert result.tolerance_ok, protocol.name


class TestDegenerateTraces:
    def test_static_objects_cost_nothing_after_init(self):
        trace = SpatialTrace(
            initial_points=np.random.default_rng(0).uniform(
                0, 1000, size=(30, 2)
            ),
            times=np.array([]),
            stream_ids=np.array([]),
            points=np.empty((0, 2)),
            horizon=10.0,
        )
        tolerance = FractionTolerance(0.2, 0.2)
        result = run_spatial_protocol(
            trace,
            SpatialFractionRangeProtocol(SpatialRangeQuery(BOX), tolerance),
            tolerance=tolerance,
            config=CHECKED,
        )
        assert result.maintenance_messages == 0
