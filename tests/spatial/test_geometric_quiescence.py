"""Property tests for the conservative-bbox quiescence contract.

The geometric plane's soundness rests on one-sided containment: a point
the inner (inscribed) bbox claims is *inside* must be inside by exact
geometry, and a point the outer (circumscribed) bbox claims is *outside*
must be outside.  Consequently
:meth:`~repro.state.table.StreamStateTable.geometric_quiescence_mask`
may only say "quiescent" when exact geometry agrees the membership did
not flip — never the other way around.  These tests hammer that claim
with random rectangular, circular, and composite regions over random
points, including points deliberately concentrated near the boundaries
where floating-point round-off lives.
"""

import numpy as np
import pytest

from repro.runtime.membership import RegionMembership
from repro.spatial.geometry import (
    ALL_SPACE,
    EMPTY_REGION,
    BallRegion,
    BoxRegion,
    UnionRegion,
)
from repro.state.table import StreamStateTable


def _random_box(rng, dimension):
    lows = rng.uniform(-50.0, 50.0, size=dimension)
    return BoxRegion(lows, lows + rng.uniform(0.1, 60.0, size=dimension))


def _random_ball(rng, dimension):
    center = rng.uniform(-50.0, 50.0, size=dimension)
    return BallRegion(center, float(rng.uniform(0.1, 40.0)))


def _random_union(rng, dimension):
    members = [
        (_random_box if rng.random() < 0.5 else _random_ball)(rng, dimension)
        for _ in range(int(rng.integers(2, 4)))
    ]
    return UnionRegion(members)


def _random_points(rng, region, dimension, count):
    """Uniform points plus a cluster hugging the region's boundary."""
    points = rng.uniform(-120.0, 120.0, size=(count, dimension))
    if isinstance(region, BallRegion):
        directions = rng.normal(size=(count, dimension))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        radii = region.radius * (1.0 + rng.normal(0.0, 1e-7, size=(count, 1)))
        near = region.center + directions * radii
    elif isinstance(region, BoxRegion):
        near = rng.uniform(region.lows, region.highs, size=(count, dimension))
        edge = rng.integers(0, dimension, size=count)
        side = rng.random(count) < 0.5
        jitter = rng.normal(0.0, 1e-7, size=count)
        near[np.arange(count), edge] = np.where(
            side, region.lows[edge], region.highs[edge]
        ) * (1.0 + jitter)
    else:
        near = rng.uniform(-120.0, 120.0, size=(count, dimension))
    return np.concatenate([points, near])


REGION_MAKERS = {
    "box": _random_box,
    "ball": _random_ball,
    "union": _random_union,
}


@pytest.mark.parametrize("kind", sorted(REGION_MAKERS))
@pytest.mark.parametrize("dimension", [1, 2, 3])
def test_bboxes_are_one_sided_bounds(kind, dimension):
    rng = np.random.default_rng(hash((kind, dimension)) % 2**32)
    for _ in range(20):
        region = REGION_MAKERS[kind](rng, dimension)
        boxes = region.quiescence_bboxes(dimension)
        assert boxes is not None
        inner_lo, inner_hi, outer_lo, outer_hi = boxes
        points = _random_points(rng, region, dimension, 200)
        in_inner = np.all(points >= inner_lo, axis=1) & np.all(
            points <= inner_hi, axis=1
        )
        out_outer = np.any(points < outer_lo, axis=1) | np.any(
            points > outer_hi, axis=1
        )
        for point, inner, outer in zip(points, in_inner, out_outer):
            if inner:
                assert region.contains(point), (
                    f"{region!r}: inner bbox claimed {point} inside"
                )
            if outer:
                assert not region.contains(point), (
                    f"{region!r}: outer bbox claimed {point} outside"
                )


@pytest.mark.parametrize("kind", sorted(REGION_MAKERS))
def test_quiescence_mask_never_contradicts_exact_geometry(kind):
    """The acceptance property: the mask may only claim quiescence the
    exact per-event geometry would also reach (membership unchanged)."""
    dimension = 2
    rng = np.random.default_rng(hash(kind) % 2**32 + 1)
    for round_index in range(10):
        n = 40
        table = StreamStateTable(n)
        regions = [REGION_MAKERS[kind](rng, dimension) for _ in range(n)]
        starts = rng.uniform(-120.0, 120.0, size=(n, dimension))
        for i, region in enumerate(regions):
            believed = region.contains(starts[i])
            table.record_region_deploy(
                i, *region.quiescence_bboxes(dimension)
            )
            table.set_inside(i, believed)
        moves = np.concatenate(
            [
                _random_points(rng, regions[0], dimension, 20),
                rng.uniform(-120.0, 120.0, size=(n, dimension)),
            ]
        )
        ids = rng.integers(0, n, size=len(moves))
        mask = table.geometric_quiescence_mask(moves, ids)
        for point, stream_id, quiescent in zip(moves, ids, mask):
            if quiescent:
                region = regions[stream_id]
                assert region.contains(point) == bool(
                    table.inside[stream_id]
                ), (
                    f"{region!r}: mask claimed quiescence for {point} but "
                    "exact geometry flips the membership"
                )


def test_silencer_regions_are_always_quiescent():
    table = StreamStateTable(2)
    table.record_region_deploy(0, *ALL_SPACE.quiescence_bboxes(2))
    table.set_inside(0, True)  # deployment belief: contains everything
    table.record_region_deploy(1, *EMPTY_REGION.quiescence_bboxes(2))
    table.set_inside(1, False)  # deployment belief: contains nothing
    points = np.array([[1e6, -1e6], [0.0, 0.0]])
    assert table.geometric_quiescence_mask(
        points, np.array([0, 0])
    ).all()
    assert table.geometric_quiescence_mask(
        points, np.array([1, 1])
    ).all()


def test_unscannable_rows_are_never_claimed():
    table = StreamStateTable(3)
    table.record_region_deploy(1, [0.0, 0.0], [1.0, 1.0])
    table.set_inside(1, True)
    mask = table.geometric_quiescence_mask(
        np.full((3, 2), 0.5), np.arange(3)
    )
    assert mask.tolist() == [False, True, False]


def test_conservative_shell_falls_back_to_per_event():
    """Points between the ball's inner and outer boxes are undecided."""
    ball = BallRegion([0.0, 0.0], 10.0)
    table = StreamStateTable(1)
    table.record_region_deploy(0, *ball.quiescence_bboxes(2))
    table.set_inside(0, True)
    # Inside the ball but outside the inscribed cube (corner shell).
    shell_point = np.array([[8.0, 5.0]])
    assert ball.contains(shell_point[0])
    assert not table.geometric_quiescence_mask(shell_point, [0])[0]
    # Deep inside the inscribed cube: decided columnar-side.
    assert table.geometric_quiescence_mask(np.array([[1.0, 1.0]]), [0])[0]


def test_region_membership_writes_through_to_the_table():
    table = StreamStateTable(1)
    membership = RegionMembership()
    membership.bind_state(table, 0)
    assert not table.geo_scannable[0]

    box = BoxRegion([0.0, 0.0], [10.0, 10.0])
    point = np.array([5.0, 5.0])
    membership.install(box, None, point)
    assert table.geo_scannable[0]
    assert table.inside[0]
    assert np.array_equal(table.geo_lower[0], [0.0, 0.0])
    assert np.array_equal(table.geo_outer_upper[0], [10.0, 10.0])

    # A membership flip updates the believed side.
    assert membership.evaluate(np.array([20.0, 5.0])) is not None
    assert not table.inside[0]
    # Resync after a probe realigns the belief.
    membership.resync(np.array([5.0, 5.0]))
    assert table.inside[0]


def test_quiescent_records_batch_identically_to_per_event():
    """End to end: the AABB pre-scan's ledger equals per-event replay."""
    from repro.spatial.protocols import SpatialZeroRangeProtocol
    from repro.spatial.queries import SpatialRangeQuery
    from repro.runtime.session import ExecutionSession
    from repro.spatial.workloads import (
        MovingObjectsConfig,
        generate_moving_objects_trace,
    )

    trace = generate_moving_objects_trace(
        MovingObjectsConfig(n_objects=60, horizon=150.0, sigma=6.0, seed=9)
    )
    query = SpatialRangeQuery(BoxRegion([300.0, 300.0], [700.0, 700.0]))
    snapshots = {}
    for mode in ("event", "batch"):
        session = ExecutionSession.for_spatial(
            trace, SpatialZeroRangeProtocol(query)
        )
        session.initialize(time=0.0)
        session.replay_trace(trace, mode=mode)
        snapshots[mode] = session.snapshot()
    assert snapshots["batch"] == snapshots["event"]
