"""Tests for spatial traces and the moving-objects workload."""

import numpy as np
import pytest

from repro.spatial.trace import SpatialTrace
from repro.spatial.workloads import (
    MovingObjectsConfig,
    generate_moving_objects_trace,
)


class TestSpatialTrace:
    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SpatialTrace(
                initial_points=np.zeros(3),  # not a matrix
                times=np.array([]),
                stream_ids=np.array([]),
                points=np.empty((0, 2)),
                horizon=1.0,
            )
        with pytest.raises(ValueError):
            SpatialTrace(
                initial_points=np.zeros((2, 2)),
                times=np.array([2.0, 1.0]),  # unsorted
                stream_ids=np.array([0, 1]),
                points=np.zeros((2, 2)),
                horizon=3.0,
            )
        with pytest.raises(ValueError):
            SpatialTrace(
                initial_points=np.zeros((2, 2)),
                times=np.array([1.0]),
                stream_ids=np.array([5]),  # unknown stream
                points=np.zeros((1, 2)),
                horizon=2.0,
            )
        with pytest.raises(ValueError):
            SpatialTrace(
                initial_points=np.zeros((2, 2)),
                times=np.array([1.0]),
                stream_ids=np.array([0]),
                points=np.zeros((1, 3)),  # wrong dimension
                horizon=2.0,
            )

    def test_iteration_and_truncate(self):
        trace = SpatialTrace(
            initial_points=np.zeros((2, 2)),
            times=np.array([1.0, 2.0]),
            stream_ids=np.array([0, 1]),
            points=np.array([[1.0, 1.0], [2.0, 2.0]]),
            horizon=3.0,
        )
        records = list(trace)
        assert records[0][0] == 1.0
        assert records[0][1] == 0
        truncated = trace.truncate(1.5)
        assert truncated.n_records == 1


class TestMovingObjects:
    def test_deterministic(self):
        config = MovingObjectsConfig(n_objects=20, horizon=100.0, seed=4)
        a = generate_moving_objects_trace(config)
        b = generate_moving_objects_trace(config)
        np.testing.assert_array_equal(a.points, b.points)

    def test_positions_stay_in_extent(self):
        trace = generate_moving_objects_trace(
            MovingObjectsConfig(
                n_objects=30, horizon=300.0, sigma=150.0, extent=1000.0, seed=1
            )
        )
        assert np.all(trace.points >= 0.0)
        assert np.all(trace.points <= 1000.0)
        assert np.all(trace.initial_points >= 0.0)
        assert np.all(trace.initial_points <= 1000.0)

    def test_dimension_parameter(self):
        trace = generate_moving_objects_trace(
            MovingObjectsConfig(n_objects=5, dimension=3, horizon=50.0)
        )
        assert trace.dimension == 3
        assert trace.points.shape[1] == 3

    def test_record_rate(self):
        config = MovingObjectsConfig(
            n_objects=50, horizon=400.0, mean_interarrival=20.0, seed=2
        )
        trace = generate_moving_objects_trace(config)
        expected = 50 * 400.0 / 20.0
        assert expected * 0.85 < trace.n_records < expected * 1.15

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MovingObjectsConfig(n_objects=0)
        with pytest.raises(ValueError):
            MovingObjectsConfig(dimension=0)
        with pytest.raises(ValueError):
            MovingObjectsConfig(sigma=-1.0)

    def test_override_kwargs(self):
        trace = generate_moving_objects_trace(
            MovingObjectsConfig(n_objects=5, horizon=50.0), n_objects=7
        )
        assert trace.n_streams == 7
