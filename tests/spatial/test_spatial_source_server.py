"""Unit tests for the spatial source and server plumbing."""

import numpy as np
import pytest

from repro.network.accounting import MessageLedger
from repro.network.channel import Channel
from repro.network.messages import MessageKind
from repro.spatial.geometry import ALL_SPACE, EMPTY_REGION, BoxRegion
from repro.spatial.messages import (
    PointProbeRequestMessage,
    RegionConstraintMessage,
)
from repro.spatial.protocols import SpatialProtocol
from repro.spatial.server import SpatialServer
from repro.spatial.source import SpatialStreamSource

BOX = BoxRegion([0.0, 0.0], [10.0, 10.0])


@pytest.fixture
def wired():
    ledger = MessageLedger()
    channel = Channel(ledger)
    received = []
    channel.bind_server(received.append)
    sources = [
        SpatialStreamSource(i, [float(i), float(i)], channel)
        for i in range(3)
    ]
    return channel, ledger, sources, received


class TestSpatialSource:
    def test_no_filter_reports_every_move(self, wired):
        channel, ledger, sources, received = wired
        sources[0].apply_point([1.0, 1.0], 1.0)
        sources[0].apply_point([2.0, 2.0], 2.0)
        assert len(received) == 2

    def test_region_filter_suppresses_interior_moves(self, wired):
        channel, ledger, sources, received = wired
        channel.send_to_source(
            RegionConstraintMessage(0, 0.0, region=BOX, assumed_inside=True)
        )
        received.clear()
        sources[0].apply_point([3.0, 3.0], 1.0)
        sources[0].apply_point([9.0, 9.0], 2.0)
        assert received == []
        sources[0].apply_point([11.0, 9.0], 3.0)  # crosses a face
        assert len(received) == 1
        np.testing.assert_array_equal(received[0].point, [11.0, 9.0])

    def test_silencing_regions(self, wired):
        channel, ledger, sources, received = wired
        channel.send_to_source(
            RegionConstraintMessage(0, 0.0, region=ALL_SPACE)
        )
        channel.send_to_source(
            RegionConstraintMessage(1, 0.0, region=EMPTY_REGION)
        )
        received.clear()
        for source in sources[:2]:
            source.apply_point([1e6, -1e6], 1.0)
        assert received == []

    def test_stale_belief_self_corrects(self, wired):
        channel, ledger, sources, received = wired
        sources[2].point = np.array([50.0, 50.0])  # actually outside BOX
        channel.send_to_source(
            RegionConstraintMessage(2, 0.0, region=BOX, assumed_inside=True)
        )
        assert len(received) == 1
        assert received[0].kind is MessageKind.UPDATE

    def test_probe_refreshes_state(self, wired):
        channel, ledger, sources, received = wired
        channel.send_to_source(
            RegionConstraintMessage(0, 0.0, region=BOX, assumed_inside=True)
        )
        received.clear()
        channel.send_to_source(PointProbeRequestMessage(0, 1.0))
        assert received[0].kind is MessageKind.PROBE_REPLY
        np.testing.assert_array_equal(received[0].point, [0.0, 0.0])


class RecordingSpatialProtocol(SpatialProtocol):
    name = "recording-2d"

    def __init__(self):
        self.updates = []

    def initialize(self, server):
        pass

    def on_update(self, server, stream_id, point, time):
        self.updates.append((stream_id, tuple(point), time))

    @property
    def answer(self):
        return frozenset()


class TestSpatialServer:
    def make(self, n=3):
        ledger = MessageLedger()
        channel = Channel(ledger)
        sources = [
            SpatialStreamSource(i, [float(10 * i), 0.0], channel)
            for i in range(n)
        ]
        protocol = RecordingSpatialProtocol()
        server = SpatialServer(channel, protocol)
        return server, protocol, sources, ledger

    def test_probe_round_trip(self):
        server, _, sources, ledger = self.make()
        point = server.probe(2)
        np.testing.assert_array_equal(point, [20.0, 0.0])
        assert ledger.count(MessageKind.PROBE_REQUEST) == 1
        assert ledger.count(MessageKind.PROBE_REPLY) == 1

    def test_probe_all(self):
        server, _, _, _ = self.make()
        values = server.probe_all()
        assert set(values) == {0, 1, 2}

    def test_deploy_costs_one_message(self):
        server, _, sources, ledger = self.make()
        server.deploy(1, BOX)
        assert ledger.count(MessageKind.CONSTRAINT) == 1
        assert sources[1].region is BOX

    def test_updates_dispatch_to_protocol(self):
        server, protocol, sources, _ = self.make()
        sources[0].apply_point([5.0, 5.0], 3.0)
        assert protocol.updates == [(0, (5.0, 5.0), 3.0)]
        assert server.now == 3.0

    def test_self_correction_deferred(self):
        fired = []

        class DeployingProtocol(RecordingSpatialProtocol):
            def on_update(self, server, stream_id, point, time):
                fired.append(stream_id)
                if stream_id == 0:
                    # Wrong belief about source 1 -> immediate correction,
                    # which must be queued, not re-entrant.
                    server.deploy(1, BOX, assumed_inside=False)

        ledger = MessageLedger()
        channel = Channel(ledger)
        sources = [
            SpatialStreamSource(i, [1.0, 1.0], channel) for i in range(2)
        ]
        SpatialServer(channel, DeployingProtocol())
        sources[0].apply_point([2.0, 2.0], 1.0)
        assert fired == [0, 1]
