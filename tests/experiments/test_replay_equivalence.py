"""Acceptance: batched replay reproduces every figure byte-for-byte.

Each seed figure experiment (01, 09-15) is run twice at the smoke
profile — once forcing faithful per-event replay, once forcing the
batched fast path — and must produce identical series.  The series are
projections of the per-run ``MessageLedger`` snapshots, whose direct
equality is additionally covered by ``tests/runtime/test_session.py``.
"""

import pytest

from repro.experiments.registry import REGISTRY


@pytest.mark.parametrize("name", list(REGISTRY))
def test_figure_series_identical_across_replay_modes(name):
    runner, _ = REGISTRY[name]
    event = runner(profile="smoke", seed=0, replay_mode="event")
    batch = runner(profile="smoke", seed=0, replay_mode="batch")
    assert event.x_values == batch.x_values
    assert event.series == batch.series
