"""Acceptance: batched replay reproduces every figure byte-for-byte.

Each seed figure experiment (01, 09-15) is run twice at the smoke
profile — once forcing faithful per-event replay, once forcing the
batched fast path — and must produce identical series.  The series are
projections of the per-run ``MessageLedger`` snapshots, whose direct
equality is additionally covered by ``tests/runtime/test_session.py``.

The state-engine coverage below closes the loop on the columnar
refactor: after a replay in either mode, the shared
:class:`~repro.state.table.StreamStateTable` must agree row-for-row with
the ground truth it claims to be the single source of — the deployed
filter constraints and believed memberships actually installed at the
sources, and the answer the protocol reports.
"""

import pytest

from repro.experiments.registry import REGISTRY
from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.protocols.ft_nrp import FractionToleranceRangeProtocol
from repro.protocols.ft_rp import FractionToleranceKnnProtocol
from repro.protocols.rtp import RankToleranceProtocol
from repro.protocols.zt_nrp import ZeroToleranceRangeProtocol
from repro.protocols.zt_rp import ZeroToleranceKnnProtocol
from repro.queries.knn import KnnQuery, TopKQuery
from repro.queries.range_query import RangeQuery
from repro.runtime.session import ExecutionSession
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance


@pytest.mark.parametrize("name", list(REGISTRY))
def test_figure_series_identical_across_replay_modes(name):
    runner, _ = REGISTRY[name]
    event = runner(profile="smoke", seed=0, replay_mode="event")
    batch = runner(profile="smoke", seed=0, replay_mode="batch")
    assert event.x_values == batch.x_values
    assert event.series == batch.series


def _state_zoo():
    return [
        ("zt-nrp", lambda: ZeroToleranceRangeProtocol(RangeQuery(400.0, 600.0))),
        (
            "ft-nrp",
            lambda: FractionToleranceRangeProtocol(
                RangeQuery(400.0, 600.0), FractionTolerance(0.3, 0.3)
            ),
        ),
        ("zt-rp", lambda: ZeroToleranceKnnProtocol(KnnQuery(q=500.0, k=6))),
        (
            "ft-rp",
            lambda: FractionToleranceKnnProtocol(
                KnnQuery(q=500.0, k=6), FractionTolerance(0.25, 0.25)
            ),
        ),
        (
            "rtp",
            lambda: RankToleranceProtocol(
                TopKQuery(k=6), RankTolerance(k=6, r=3)
            ),
        ),
    ]


@pytest.fixture(scope="module")
def state_trace():
    return generate_synthetic_trace(
        SyntheticConfig(n_streams=90, horizon=200.0, seed=23)
    )


@pytest.mark.parametrize(
    "name,factory", _state_zoo(), ids=[n for n, _ in _state_zoo()]
)
@pytest.mark.parametrize("mode", ["event", "batch"])
def test_state_table_is_single_source_of_truth(state_trace, name, factory, mode):
    """After replay, table rows == the filters actually at the sources."""
    protocol = factory()
    session = ExecutionSession.for_streams(state_trace, protocol)
    session.initialize(time=0.0)
    session.replay_trace(state_trace, mode=mode)
    table = session.host.state
    for source in session.sources:
        sid = source.stream_id
        constraint = source.membership.container
        assert constraint is not None, "every protocol deploys everywhere"
        assert table.scannable[sid]
        assert table.lower[sid] == constraint.lower
        assert table.upper[sid] == constraint.upper
        assert bool(table.inside[sid]) == source.membership.reported_inside
    assert protocol.answer == table.answer_snapshot()


@pytest.mark.parametrize(
    "name,factory", _state_zoo(), ids=[n for n, _ in _state_zoo()]
)
def test_state_engine_final_state_identical_across_modes(
    state_trace, name, factory
):
    """Answer masks and deployed-bound columns agree event vs batch."""
    tables = {}
    for mode in ("event", "batch"):
        protocol = factory()
        result = run_protocol(
            state_trace, protocol, config=RunConfig(replay_mode=mode)
        )
        tables[mode] = (result, protocol._state)
    event_result, event_table = tables["event"]
    batch_result, batch_table = tables["batch"]
    assert event_result.ledger == batch_result.ledger
    assert (
        event_table.answer_snapshot() == batch_table.answer_snapshot()
    )
    assert (event_table.lower == batch_table.lower).all()
    assert (event_table.upper == batch_table.upper).all()
    assert (event_table.inside == batch_table.inside).all()
    assert (event_table.silencer == batch_table.silencer).all()
