"""Smoke test of the Figure-1 motivation experiment."""

from repro.experiments import figure01
from repro.experiments.base import Profile


def test_figure01_smoke_shape():
    result = figure01.run(profile=Profile.SMOKE, seed=0)
    messages = result.curve("value-eps messages")
    worst_ranks = result.curve("value-eps worst rank")
    # More value tolerance: fewer messages, worse (or equal) ranks.
    assert messages[-1] <= messages[0]
    assert worst_ranks[-1] >= worst_ranks[0]
    # RTP reference lines are constant across the eps axis.
    rtp_lines = [s for s in result.series if s.startswith("RTP")]
    assert len(rtp_lines) == 2
    for name in rtp_lines:
        curve = result.curve(name)
        assert len(set(curve)) == 1


def test_figure01_registered():
    from repro.experiments.registry import REGISTRY

    assert "figure01" in REGISTRY
