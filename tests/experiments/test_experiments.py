"""Smoke-profile runs of every figure, asserting the paper's shapes."""

import pytest

from repro.experiments import REGISTRY, get_experiment, list_experiments
from repro.experiments.base import FigureResult, Profile
from repro.experiments import (
    figure09,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
)


class TestRegistry:
    def test_all_evaluation_figures_registered(self):
        expected = ["figure01"] + [f"figure{n:02d}" for n in range(9, 16)]
        assert list_experiments() == expected

    def test_get_experiment_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("figure99")

    def test_get_experiment_returns_runner(self):
        assert get_experiment("figure09") is REGISTRY["figure09"][0]


@pytest.fixture(scope="module")
def fig09():
    return figure09.run(profile=Profile.SMOKE, seed=0)


@pytest.fixture(scope="module")
def fig15():
    return figure15.run(profile=Profile.SMOKE, seed=0)


class TestFigure09:
    def test_result_structure(self, fig09):
        assert isinstance(fig09, FigureResult)
        assert fig09.x_name == "r"
        assert "no filter" in fig09.series

    def test_rtp_cost_decreases_with_r(self, fig09):
        for name, curve in fig09.series.items():
            if name.startswith("k="):
                assert curve[-1] < curve[0], name

    def test_r0_is_worse_than_no_filter(self, fig09):
        """Zero slack forces constant R recomputation (Fig. 9's k=30)."""
        baseline = fig09.series["no filter"][0]
        worst_k = max(
            curve[0]
            for name, curve in fig09.series.items()
            if name.startswith("k=")
        )
        assert worst_k > baseline

    def test_format_renders(self, fig09):
        text = fig09.format()
        assert "figure09" in text
        assert "no filter" in text


class TestFigure10:
    def test_corner_matches_zero_tolerance(self):
        result = figure10.run(profile=Profile.SMOKE, seed=0)
        # Highest-tolerance corner at most the zero-tolerance corner plus
        # small Fix_Error noise.
        zero = result.series["eps-=0.0"][0]
        best = result.series[f"eps-={result.x_values[-1]}"][-1]
        assert best <= zero * 1.1


class TestFigure11:
    def test_cost_grows_with_streams(self):
        result = figure11.run(profile=Profile.SMOKE, seed=0)
        for curve in result.series.values():
            assert curve[-1] > curve[0]


class TestFigure12:
    def test_tolerance_reduces_cost(self):
        result = figure12.run(profile=Profile.SMOKE, seed=0)
        first = result.series["eps-=0.0"][0]
        last = result.series[f"eps-={result.x_values[-1]}"][-1]
        assert last < first


class TestFigure13:
    def test_curves_ordered_by_sigma(self):
        result = figure13.run(profile=Profile.SMOKE, seed=0)
        low = result.series["sigma=20"]
        high = result.series["sigma=80"]
        assert sum(high) > sum(low)


class TestFigure14:
    def test_boundary_nearest_at_most_random_overall(self):
        result = figure14.run(profile=Profile.SMOKE, seed=0)
        assert sum(result.series["boundary-nearest"]) <= sum(
            result.series["random"]
        )


class TestFigure15:
    def test_steep_drop_from_zero_tolerance(self, fig15):
        for name, curve in fig15.series.items():
            assert curve[1] < curve[0] / 2, name

    def test_eps0_uses_zt_rp(self, fig15):
        # eps=0 cost must dwarf everything else (log-scale plot).
        for curve in fig15.series.values():
            assert curve[0] == max(curve)


class TestProfiles:
    def test_profile_coercion(self):
        assert Profile.coerce("smoke") is Profile.SMOKE
        assert Profile.coerce(Profile.FULL) is Profile.FULL
        with pytest.raises(ValueError):
            Profile.coerce("huge")

    def test_curve_accessor(self, fig09):
        assert fig09.curve("no filter") == fig09.series["no filter"]
        with pytest.raises(KeyError):
            fig09.curve("nonexistent")
