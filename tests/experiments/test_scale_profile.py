"""Profile.SCALE: every figure defines a larger-n sweep variant.

The ROADMAP's "larger-n sweeps" item: figure variants at n in {10k,
100k} reachable through the registry (``run_all(profile="scale")``) and
the CLI (``--profile scale``).  These runs are too big for CI, so the
tests verify the wiring and the parameter floors, not the runs.
"""

from repro.experiments import registry
from repro.experiments.base import Profile


def _scale_population(params: dict) -> int:
    for key in ("n_streams", "n_subnets", "n_objects"):
        if key in params:
            return params[key]
    return max(params["stream_counts"])


def test_scale_profile_exists_and_coerces():
    assert Profile.coerce("scale") is Profile.SCALE
    assert Profile.SCALE.value == "scale"


def test_every_figure_defines_a_scale_profile_at_10k_or_more():
    import importlib

    for name in registry.list_experiments():
        module = importlib.import_module(f"repro.experiments.{name}")
        profiles = module._PROFILES
        assert Profile.SCALE in profiles, f"{name} lacks a SCALE profile"
        assert _scale_population(profiles[Profile.SCALE]) >= 10_000, name


def test_figure11_scale_sweeps_10k_and_100k():
    from repro.experiments import figure11

    counts = figure11._PROFILES[Profile.SCALE]["stream_counts"]
    assert 10_000 in counts and 100_000 in counts


def test_registry_threads_scale_profile_to_runners():
    # The runners accept the profile; verify via signature binding
    # rather than running (SCALE workloads are benchmark-sized).
    import inspect

    for name in registry.list_experiments():
        runner = registry.get_experiment(name)
        signature = inspect.signature(runner)
        bound = signature.bind(profile=Profile.SCALE)
        assert bound.arguments["profile"] is Profile.SCALE
        assert "deployment" in signature.parameters, name
