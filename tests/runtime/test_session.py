"""ExecutionSession: assembly, replay modes, and batched equivalence."""

import numpy as np
import pytest

from repro.harness.config import RunConfig
from repro.harness.runner import run_protocol
from repro.multiquery.runner import run_multi_query
from repro.protocols.ft_nrp import FractionToleranceRangeProtocol
from repro.protocols.ft_rp import FractionToleranceKnnProtocol
from repro.protocols.no_filter import NoFilterProtocol
from repro.protocols.rtp import RankToleranceProtocol
from repro.protocols.zt_nrp import ZeroToleranceRangeProtocol
from repro.protocols.zt_rp import ZeroToleranceKnnProtocol
from repro.queries.knn import KnnQuery, TopKQuery
from repro.queries.range_query import RangeQuery
from repro.runtime.session import ExecutionSession
from repro.streams.synthetic import SyntheticConfig, generate_synthetic_trace
from repro.streams.trace import StreamTrace
from repro.tolerance.fraction_tolerance import FractionTolerance
from repro.tolerance.rank_tolerance import RankTolerance
from repro.valuebased.protocol import run_value_tolerance


@pytest.fixture(scope="module")
def trace():
    return generate_synthetic_trace(
        SyntheticConfig(n_streams=120, horizon=250.0, seed=11)
    )


def _protocol_zoo():
    return [
        ("no-filter", lambda: NoFilterProtocol(RangeQuery(400.0, 600.0))),
        ("zt-nrp", lambda: ZeroToleranceRangeProtocol(RangeQuery(400.0, 600.0))),
        (
            "ft-nrp",
            lambda: FractionToleranceRangeProtocol(
                RangeQuery(400.0, 600.0), FractionTolerance(0.3, 0.3)
            ),
        ),
        ("zt-rp", lambda: ZeroToleranceKnnProtocol(KnnQuery(q=500.0, k=8))),
        (
            "ft-rp",
            lambda: FractionToleranceKnnProtocol(
                KnnQuery(q=500.0, k=8), FractionTolerance(0.25, 0.25)
            ),
        ),
        (
            "rtp",
            lambda: RankToleranceProtocol(
                TopKQuery(k=8), RankTolerance(k=8, r=4)
            ),
        ),
    ]


@pytest.mark.parametrize(
    "name,factory", _protocol_zoo(), ids=[n for n, _ in _protocol_zoo()]
)
def test_batched_replay_ledger_identical(trace, name, factory):
    """Acceptance: batch mode == event mode, snapshot for snapshot."""
    event = run_protocol(
        trace, factory(), config=RunConfig(replay_mode="event")
    )
    batch = run_protocol(
        trace, factory(), config=RunConfig(replay_mode="batch")
    )
    assert event.ledger == batch.ledger
    assert event.final_answer == batch.final_answer


@pytest.mark.parametrize("batch_size", [1, 7, 64, 4096])
def test_batch_size_does_not_change_results(trace, batch_size):
    reference = run_protocol(
        trace,
        ZeroToleranceRangeProtocol(RangeQuery(400.0, 600.0)),
        config=RunConfig(replay_mode="event"),
    )
    batched = run_protocol(
        trace,
        ZeroToleranceRangeProtocol(RangeQuery(400.0, 600.0)),
        config=RunConfig(replay_mode="batch", batch_size=batch_size),
    )
    assert reference.ledger == batched.ledger


@pytest.mark.parametrize("eps", [5.0, 60.0, 500.0])
def test_value_window_batched_identical(trace, eps):
    event = run_value_tolerance(
        trace, TopKQuery(k=5), eps, check_every=0, replay_mode="event"
    )
    batch = run_value_tolerance(
        trace, TopKQuery(k=5), eps, check_every=0, replay_mode="batch"
    )
    assert event.maintenance_messages == batch.maintenance_messages


def test_multiquery_batched_identical(trace):
    def queries():
        return {
            "range": (
                ZeroToleranceRangeProtocol(RangeQuery(400.0, 600.0)),
                RangeQuery(400.0, 600.0),
                None,
            ),
            "knn": (
                ZeroToleranceKnnProtocol(KnnQuery(q=500.0, k=5)),
                KnnQuery(q=500.0, k=5),
                None,
            ),
        }

    event = run_multi_query(
        trace, queries(), config=RunConfig(replay_mode="event")
    )
    batch = run_multi_query(
        trace, queries(), config=RunConfig(replay_mode="batch")
    )
    assert event.ledger == batch.ledger
    assert event.shared_updates == batch.shared_updates
    assert event.logical_deliveries == batch.logical_deliveries
    assert event.answers == batch.answers


def test_checked_runs_identical_across_requested_modes(trace):
    """Checking forces the event path, so modes must agree trivially."""
    results = [
        run_protocol(
            trace,
            ZeroToleranceRangeProtocol(RangeQuery(400.0, 600.0)),
            config=RunConfig(check_every=1, strict=True, replay_mode=mode),
        )
        for mode in ("auto", "event", "batch")
    ]
    assert results[0].ledger == results[1].ledger == results[2].ledger


def test_invalid_mode_rejected(trace):
    with pytest.raises(ValueError):
        RunConfig(replay_mode="vectorized")
    session = ExecutionSession.for_streams(
        trace, NoFilterProtocol(RangeQuery(0.0, 1.0))
    )
    with pytest.raises(ValueError):
        session.replay(
            trace.times, trace.stream_ids, trace.values, mode="warp"
        )


def test_probe_mid_batch_sees_staged_value():
    """Deferred quiescent writes must be flushed before any read.

    Stream 1 drifts quiescently (inside its filter) while stream 0's
    crossing makes the protocol probe stream 1: the probe must observe
    stream 1's *latest* value even though its records were batched.
    """
    from repro.protocols.base import FilterProtocol

    class ProbeOnUpdate(FilterProtocol):
        name = "probe-on-update"

        def __init__(self):
            self.seen = []

        def initialize(self, server):
            server.deploy(0, 0.0, 10.0, assumed_inside=None)
            server.deploy(1, -1000.0, 1000.0, assumed_inside=None)

        def on_update(self, server, stream_id, value, time):
            self.seen.append(server.probe(1))

        @property
        def answer(self):
            return frozenset()

    trace = StreamTrace(
        initial_values=np.array([5.0, 0.0]),
        times=np.array([1.0, 2.0, 3.0]),
        stream_ids=np.array([1, 1, 0]),
        values=np.array([7.0, 9.0, 50.0]),  # stream 0 crosses at t=3
        horizon=4.0,
    )
    protocol = ProbeOnUpdate()
    session = ExecutionSession.for_streams(trace, protocol)
    session.initialize()
    session.replay_trace(trace, mode="batch")
    assert protocol.seen == [9.0]


def test_session_initialize_phases(trace):
    session = ExecutionSession.for_streams(
        trace, ZeroToleranceRangeProtocol(RangeQuery(400.0, 600.0))
    )
    session.initialize()
    snapshot = session.snapshot()
    assert snapshot.initialization_total > 0
    assert snapshot.maintenance_total == 0


def test_empty_trace_batched(trace):
    empty = trace.truncate(0.0)
    result = run_protocol(
        empty,
        ZeroToleranceRangeProtocol(RangeQuery(400.0, 600.0)),
        config=RunConfig(replay_mode="batch"),
    )
    assert result.maintenance_messages == 0


def test_taps_removed_after_replay(trace):
    session = ExecutionSession.for_streams(
        trace, ZeroToleranceRangeProtocol(RangeQuery(400.0, 600.0))
    )
    session.initialize()
    session.replay_trace(trace, mode="batch")
    assert session.channel._taps == []
